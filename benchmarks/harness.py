"""Shared helpers for the benchmark suite, plus the perf-gate CLI.

Environment knobs
-----------------
REPRO_RUNS
    Independent seeded runs per (model, fault-count) cell.  Default 15;
    the paper uses 100 — set ``REPRO_RUNS=100`` (and expect roughly an
    hour on one core) for the full-fidelity sweep.
REPRO_SEED_BASE
    First seed of the canonical seed list (default 1000).

Perf gate
---------
``python -m benchmarks.harness --micro`` runs the microbenchmarks
(``bench_micro.py`` via pytest-benchmark) plus a short table sweep, writes
the medians to ``BENCH_micro.json`` at the repo root, and exits non-zero
when ``test_small_platform_run`` has regressed more than 25 % against the
checked-in baseline.  ``--update-baseline`` refreshes the checked-in
numbers after an intentional change; ``make bench`` is the shorthand.

Campaign smoke gate
-------------------
``python -m benchmarks.harness --campaign-smoke`` (``make
campaign-smoke``) runs two store gates and exits non-zero unless both
hold:

* *resume leg* — a 2-model × 2-seed campaign runs twice into one
  temporary store, cold then resumed; the resumed pass must execute
  **zero** simulations and reproduce the cold rows bit-identically;
* *dedup leg* (store v2) — a table1-subset campaign runs cold, then a
  table2-subset sharing the same store root; every shared zero-fault
  cell must resolve through the cross-campaign dedup index (**zero**
  executed shared cells) with rows bit-identical to the first
  campaign's.

Workload / examples smoke gates
-------------------------------
``--workload-smoke`` (``make workload-smoke``) gates the declarative
workload subsystem: a burst-driven workload runs and repeats
bit-identically, the builtin ``fork_join`` spec reproduces the legacy
application's row and series exactly, workload-free cell keys replicate
the pre-workload hash recipe, and the capacity lint flags an arrival
rate the platform cannot sustain.  ``--examples-smoke``
(``make examples-smoke``) executes every ``examples/*.py`` script and
fails on a non-zero exit.

Timer smoke gate
----------------
``--timer-smoke`` (``make timer-smoke``) gates the event-driven AIM
timer mode: a faulted FFW cell (with a deadline margin wide enough that
the timeout machinery demonstrably arms and fires) must produce
bit-identical rows, metrics series, NoC counters and application
statistics under ``timer_mode="ticked"`` and ``"event"``; an idle-heavy
FFW run must dispatch at least 3× fewer kernel events in event mode
(``Simulator.dispatched_events`` — a deterministic counter, so the bound
is noise-free); and the default config must keep ``timer_mode`` out of
its canonical payload so every pre-existing campaign cell key is
conserved.

Report smoke gate
-----------------
``--report-smoke`` (``make report-smoke``) gates the sweep-scale
analysis layer: a small campaign runs cold then resumed (zero
re-executions), ``campaign report`` must emit a self-contained HTML page
(no scripts, links or external fetches) that re-renders byte-identically
and names every model, a self-``compare`` must come back clean, and a
candidate root with a deliberately degraded ``settled_performance`` must
be flagged — with ``campaign compare`` exiting non-zero, the CI
contract.

Combined with ``--micro``, the numbers join the printed report and the
baseline record.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

#: Repo root (this file lives in benchmarks/); set up before the repro
#: import so ``python -m benchmarks.harness`` works without PYTHONPATH.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.campaign.paper import MODELS, TABLE2_FAULTS
from repro.experiments.runner import default_seeds, run_batch

#: Repo root (this file lives in benchmarks/).
REPO_ROOT = _REPO_ROOT

#: The checked-in perf baseline written/read by the --micro gate.
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_micro.json")

#: Benchmark watched by the regression gate, and the allowed slowdown.
GATED_BENCHMARK = "test_small_platform_run"
REGRESSION_TOLERANCE = 1.25


def runs_per_cell(default=15):
    return int(os.environ.get("REPRO_RUNS", str(default)))


def seed_base():
    return int(os.environ.get("REPRO_SEED_BASE", "1000"))


def gather_zero_fault(config, runs=None):
    """Zero-fault result lists per model (Table I input)."""
    seeds = default_seeds(runs or runs_per_cell(), base=seed_base())
    return {
        model: run_batch(model, seeds, faults=0, config=config)
        for model in MODELS
    }


def gather_faulted(config, fault_counts=TABLE2_FAULTS, runs=None):
    """Result lists per (model, fault count) (Table II input)."""
    seeds = default_seeds(runs or runs_per_cell(), base=seed_base())
    results = {}
    for model in MODELS:
        for faults in fault_counts:
            results[(model, faults)] = run_batch(
                model, seeds, faults=faults, config=config
            )
    return results


def run_campaign_smoke(models=("none", "foraging_for_work"), seeds=2,
                       processes=0):
    """Cold-then-resumed smoke campaign; returns the gate's evidence.

    Runs a ``len(models)`` × ``seeds`` zero-fault campaign twice against
    one temporary store and reports both passes: the resumed pass must
    hit the store for every cell (``warm_executed == 0``) and yield
    bit-identical rows.
    """
    import shutil

    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import CampaignSpec
    from repro.platform.config import PlatformConfig

    spec = CampaignSpec(
        name="campaign-smoke",
        models=tuple(models),
        seeds=tuple(default_seeds(seeds, base=seed_base())),
        fault_counts=(0,),
        config=PlatformConfig.small(),
    )
    store = tempfile.mkdtemp(prefix="campaign-smoke-")
    try:
        cold = run_campaign(spec, store=store, processes=processes)
        warm = run_campaign(spec, store=store, processes=processes)
    finally:
        shutil.rmtree(store, ignore_errors=True)
    return {
        "cells": spec.size(),
        "cold_s": cold.elapsed_s,
        "cold_executed": cold.executed,
        "warm_s": warm.elapsed_s,
        "warm_executed": warm.executed,
        "warm_cached": warm.cached,
        "identical": [r.as_row() for r in warm.results]
        == [r.as_row() for r in cold.results],
    }


def check_campaign_smoke(smoke):
    """Failure message for a smoke report, or ``None`` when it passed."""
    if smoke["warm_executed"] != 0:
        return (
            "campaign-smoke: resumed pass re-executed {} of {} cells "
            "(expected 0)".format(smoke["warm_executed"], smoke["cells"])
        )
    if not smoke["identical"]:
        return "campaign-smoke: resumed rows differ from the cold pass"
    return None


def run_dedup_smoke(models=("none", "foraging_for_work"), seeds=2,
                    processes=0):
    """Cross-campaign dedup gate evidence (store v2).

    A table1-subset campaign (zero faults) runs cold, then a
    table2-subset (fault counts 0 and 2) against a *different* campaign
    directory under the same store root.  The second campaign must
    resolve every shared zero-fault cell through the root's dedup index
    — zero simulations for shared cells — and execute only its faulted
    cells, with the reused rows bit-identical to the first campaign's.
    """
    import shutil

    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import CampaignSpec
    from repro.platform.config import PlatformConfig

    config = PlatformConfig.small()
    seed_list = tuple(default_seeds(seeds, base=seed_base()))
    first_spec = CampaignSpec(
        name="table1-subset", models=tuple(models), seeds=seed_list,
        fault_counts=(0,), config=config,
    )
    second_spec = CampaignSpec(
        name="table2-subset", models=tuple(models), seeds=seed_list,
        fault_counts=(0, 2), config=config,
    )
    root = tempfile.mkdtemp(prefix="campaign-dedup-")
    try:
        first = run_campaign(
            first_spec, store=os.path.join(root, first_spec.name),
            processes=processes, dedup_root=root,
        )
        second = run_campaign(
            second_spec, store=os.path.join(root, second_spec.name),
            processes=processes, dedup_root=root,
        )
        shared = {
            (d.model, d.seed): r.as_row() for d, r in first.pairs()
        }
        reused = {
            (d.model, d.seed): r.as_row()
            for d, r in second.pairs() if d.faults == 0
        }
        identical = shared == reused
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "shared_cells": len(shared),
        "faulted_cells": len(models) * len(seed_list),
        "first_executed": first.executed,
        "deduped": second.deduped,
        "executed": second.executed,
        "identical": identical,
    }


def check_dedup_smoke(smoke):
    """Failure message for a dedup report, or ``None`` when it passed."""
    if smoke["deduped"] != smoke["shared_cells"]:
        return (
            "dedup-smoke: second campaign deduped {} of {} shared cells "
            "(expected all)".format(smoke["deduped"], smoke["shared_cells"])
        )
    if smoke["executed"] != smoke["faulted_cells"]:
        return (
            "dedup-smoke: second campaign executed {} cells (expected "
            "only its {} faulted cells)".format(
                smoke["executed"], smoke["faulted_cells"])
        )
    if not smoke["identical"]:
        return (
            "dedup-smoke: reused zero-fault rows differ from the first "
            "campaign's rows"
        )
    return None


def run_dynamics_smoke(seed=7):
    """Closed-loop self-healing gate evidence (platform dynamics).

    One tiny hysteresis-governed run with watchdog recovery enabled: a
    thermal storm at 50 ms must actuate throttles, every throttle must
    restore by the horizon, the killed node must come back through the
    watchdog path (racing — and beating — its scripted recovery), and a
    repeat of the identical run must be bit-identical on the series,
    the NoC statistics and the dynamics counters.
    """
    from repro.platform.centurion import CenturionPlatform
    from repro.platform.config import PlatformConfig

    config = PlatformConfig.small(
        dvfs_governor="hysteresis",
        watchdog_recovery=True,
        watchdog_timeout_us=20_000,
    )
    scenario = {
        "name": "dynamics-smoke",
        "events": [
            {"kind": "thermal_storm", "at_us": 50_000, "count": 4,
             "heat_c": 40.0},
            {"kind": "node", "at_us": 60_000, "count": 1,
             "duration_us": 100_000},
        ],
    }

    def run():
        platform = CenturionPlatform(config, model_name="ffw", seed=seed)
        platform.inject_scenario(dict(scenario))
        series = platform.run()
        return platform, series

    first, first_series = run()
    second, second_series = run()
    restored = all(
        pe.frequency.current_mhz == pe.frequency.nominal_mhz
        for pe in first.pes.values()
    )
    return {
        "throttle_events": first.dynamics.throttle_events,
        "restored": restored,
        "autonomous_recoveries": first.dynamics.autonomous_recoveries,
        "recoveries_total": len(first.controller.faults_recovered),
        "identical": (
            first_series.as_dict() == second_series.as_dict()
            and first.network.stats == second.network.stats
            and first.dynamics.throttle_events
            == second.dynamics.throttle_events
            and first.dynamics.autonomous_recoveries
            == second.dynamics.autonomous_recoveries
        ),
    }


def check_dynamics_smoke(smoke):
    """Failure message for a dynamics report, or ``None`` when it passed."""
    if smoke["throttle_events"] == 0:
        return "dynamics-smoke: the thermal storm actuated no throttles"
    if not smoke["restored"]:
        return (
            "dynamics-smoke: a node was still throttled at the horizon"
        )
    if smoke["autonomous_recoveries"] != 1:
        return (
            "dynamics-smoke: expected exactly 1 watchdog recovery, got "
            "{}".format(smoke["autonomous_recoveries"])
        )
    if smoke["recoveries_total"] != 1:
        return (
            "dynamics-smoke: node recovered {} times (the watchdog and "
            "scripted paths must race to exactly one recovery)".format(
                smoke["recoveries_total"])
        )
    if not smoke["identical"]:
        return "dynamics-smoke: repeated run was not bit-identical"
    return None


def run_timer_smoke(seed=12):
    """Event-timer gate evidence (PR 10).

    Three legs: a faulted FFW cell whose timeout machinery demonstrably
    fires must be bit-identical between ``timer_mode`` settings; an
    idle-heavy FFW run must dispatch >= 3x fewer kernel events in event
    mode; and ``timer_mode`` must stay out of the default canonical
    config payload (campaign cell keys conserved).
    """
    from repro.experiments.runner import run_single
    from repro.platform.centurion import CenturionPlatform
    from repro.platform.config import PlatformConfig

    def faulted(mode):
        config = PlatformConfig.small(
            horizon_us=200_000,
            fault_time_us=100_000,
            timer_mode=mode,
            ffw_deadline_margin_us=16_000,
        )
        return run_single(
            "ffw", seed=seed, faults=3, config=config, keep_series=True
        )

    ticked, event = faulted("ticked"), faulted("event")
    identical = (
        ticked.as_row() == event.as_row()
        and ticked.series.as_dict() == event.series.as_dict()
        and ticked.noc_stats == event.noc_stats
        and ticked.app_stats == event.app_stats
    )

    def idle_dispatched(mode):
        config = PlatformConfig.small(
            horizon_us=1_000_000,
            fault_time_us=500_000,
            generation_period_us=200_000,
            metrics_window_us=50_000,
            timer_mode=mode,
        )
        platform = CenturionPlatform(config, model_name="ffw", seed=7)
        platform.run()
        return platform.sim.dispatched_events

    idle_ticked = idle_dispatched("ticked")
    idle_event = idle_dispatched("event")

    return {
        "switches": ticked.as_row()["total_switches"],
        "identical": identical,
        "idle_ticked_dispatched": idle_ticked,
        "idle_event_dispatched": idle_event,
        "keys_conserved": "timer_mode" not in PlatformConfig().canonical(),
    }


def check_timer_smoke(smoke):
    """Failure message for a timer report, or ``None`` when it passed."""
    if smoke["switches"] == 0:
        return (
            "timer-smoke: the FFW timeout never fired — the identity leg "
            "is vacuous"
        )
    if not smoke["identical"]:
        return (
            "timer-smoke: ticked and event timer modes diverged on the "
            "faulted FFW cell"
        )
    if smoke["idle_ticked_dispatched"] < 3 * smoke["idle_event_dispatched"]:
        return (
            "timer-smoke: event mode dispatched {} events vs {} ticked "
            "(expected a >= 3x drop)".format(
                smoke["idle_event_dispatched"],
                smoke["idle_ticked_dispatched"],
            )
        )
    if not smoke["keys_conserved"]:
        return (
            "timer-smoke: timer_mode leaked into the default canonical "
            "config (campaign keys would re-mint)"
        )
    return None


#: The burst workload driven by the workload smoke gate.
WORKLOAD_SMOKE_SPEC = {
    "name": "smoke-burst",
    "tasks": [
        {"id": 1, "service_us": 500,
         "arrival": {"period_us": 4_000, "shape": "burst",
                     "burst_ticks": 4, "idle_ticks": 4},
         "downstream": [{"task": 2, "fanout": 3}]},
        {"id": 2, "service_us": 9_000, "weight": 3, "downstream": [3]},
        {"id": 3, "service_us": 2_000, "join": True},
    ],
}


def run_workload_smoke(seed=7):
    """Declarative-workload gate evidence (PR 7).

    Four legs: a burst-driven workload must run and repeat
    bit-identically; the builtin ``fork_join`` spec must reproduce the
    legacy application's row and series bit-identically; a cell without
    a workload must keep its pre-workload content key (the ``workload``
    entry joins the payload only when present); and the capacity lint
    must flag an arrival rate the platform cannot sustain.
    """
    import hashlib

    from repro.app.workloads import (
        capacity_report, compile_workload, fork_join_spec,
    )
    from repro.campaign.spec import HASH_SCHEMA_VERSION, RunDescriptor
    from repro.experiments.runner import run_single
    from repro.platform.config import PlatformConfig

    config = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)

    def run(workload=None):
        return run_single(
            "ffw", seed=seed, faults=2, config=config, keep_series=True,
            workload=workload,
        )

    first, second = run(WORKLOAD_SMOKE_SPEC), run(WORKLOAD_SMOKE_SPEC)
    burst_identical = (
        first.as_row() == second.as_row()
        and first.series.as_dict() == second.series.as_dict()
        and first.app_stats == second.app_stats
    )

    legacy, via_spec = run(), run(fork_join_spec())
    legacy_row, spec_row = legacy.as_row(), via_spec.as_row()
    spec_row.pop("workload", None)
    fork_join_identical = (
        legacy_row == spec_row
        and legacy.series.as_dict() == via_spec.series.as_dict()
    )

    base = RunDescriptor("ffw", seed, 2, config)
    payload = {
        "schema": HASH_SCHEMA_VERSION,
        "model": "foraging_for_work",
        "seed": seed,
        "faults": 2,
        "metric": "joins",
        "config": config.canonical(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    keys_conserved = (
        base.key() == hashlib.sha256(blob.encode("utf-8")).hexdigest()
        and RunDescriptor(
            "ffw", seed, 2, config, workload=fork_join_spec()
        ).key() != base.key()
    )

    hot = compile_workload({
        "name": "over-capacity",
        "tasks": [
            {"id": 1, "service_us": 100, "arrival": 500,
             "downstream": [2]},
            {"id": 2, "service_us": 40_000},
        ],
    })
    _rows, warnings = capacity_report(
        hot, num_nodes=config.width * config.height
    )
    lint_flags = any("over capacity" in w for w in warnings)

    return {
        "burst_joins": first.app_stats["joins"],
        "burst_identical": burst_identical,
        "fork_join_identical": fork_join_identical,
        "keys_conserved": keys_conserved,
        "lint_flags_over_capacity": lint_flags,
    }


def check_workload_smoke(smoke):
    """Failure message for a workload report, or ``None`` when it passed."""
    if smoke["burst_joins"] <= 0:
        return "workload-smoke: the burst workload completed no joins"
    if not smoke["burst_identical"]:
        return "workload-smoke: repeated burst run was not bit-identical"
    if not smoke["fork_join_identical"]:
        return (
            "workload-smoke: the fork_join spec diverged from the legacy "
            "application"
        )
    if not smoke["keys_conserved"]:
        return (
            "workload-smoke: workload-free cell keys are not conserved "
            "(or a workload failed to mint a fresh key)"
        )
    if not smoke["lint_flags_over_capacity"]:
        return (
            "workload-smoke: the capacity lint missed an over-capacity "
            "arrival rate"
        )
    return None


def run_report_smoke(models=("none", "foraging_for_work"), seeds=2,
                     processes=0):
    """Report/compare smoke over a real store root; returns evidence.

    Runs a ``len(models)`` × ``seeds`` zero-fault campaign into a
    temporary root (cold, then resumed — the resumed pass must execute
    nothing), renders the static report twice, self-compares the root,
    then injects a regression (every ``settled_performance`` halved in a
    copied candidate root) and checks both :func:`repro.analysis.compare`
    and the ``campaign compare`` CLI flag it.
    """
    import contextlib
    import io
    import shutil

    from repro.analysis.report import compare, write_report
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import CampaignSpec
    from repro.campaign.store import RESULTS_FILE, encode_line
    from repro.experiments.cli import main as cli_main
    from repro.platform.config import PlatformConfig

    spec = CampaignSpec(
        name="report-smoke",
        models=tuple(models),
        seeds=tuple(default_seeds(seeds, base=seed_base())),
        fault_counts=(0,),
        config=PlatformConfig.small(),
    )
    root = tempfile.mkdtemp(prefix="report-smoke-")
    candidate = tempfile.mkdtemp(prefix="report-smoke-cand-")
    try:
        store = os.path.join(root, spec.name)
        run_campaign(spec, store=store, processes=processes)
        resumed = run_campaign(spec, store=store, processes=processes)
        html_path = write_report(root)
        with open(html_path) as handle:
            page = handle.read()
        write_report(root)
        with open(html_path) as handle:
            repeat = handle.read()
        self_ok = compare(root, root).ok()
        # Candidate root: same cells, settled_performance halved — a
        # regression the gate must flag and the CLI must exit 1 on.
        cand_store = os.path.join(candidate, spec.name)
        shutil.copytree(store, cand_store)
        results_path = os.path.join(cand_store, RESULTS_FILE)
        records = []
        with open(results_path) as handle:
            for line in handle:
                record = json.loads(line)
                record["row"]["settled_performance"] *= 0.5
                records.append(record)
        with open(results_path, "w") as handle:
            for record in records:
                handle.write(encode_line(record))
                handle.write("\n")
        comparison = compare(root, candidate)
        with contextlib.redirect_stdout(io.StringIO()):
            cli_exit = cli_main(["campaign", "compare", root, candidate])
        return {
            "cells": spec.size(),
            "resumed_executed": resumed.executed,
            "html_bytes": len(page),
            "identical": page == repeat,
            "self_contained": all(
                marker not in page
                for marker in ("<script", "<link", "src=")
            ),
            "models_present": all(model in page for model in models),
            "self_compare_ok": self_ok,
            "regressions_flagged": len(comparison.regressions()),
            "compare_exit": cli_exit,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)
        shutil.rmtree(candidate, ignore_errors=True)


def check_report_smoke(smoke):
    """Failure message for a report-smoke run, or ``None`` when passed."""
    if smoke["resumed_executed"] != 0:
        return (
            "report-smoke: resumed pass re-executed {} of {} cells "
            "(expected 0)".format(smoke["resumed_executed"], smoke["cells"])
        )
    if not smoke["identical"]:
        return "report-smoke: repeated render was not byte-identical"
    if not smoke["self_contained"]:
        return (
            "report-smoke: the page references external assets "
            "(script/link/src) — it must be self-contained"
        )
    if not smoke["models_present"]:
        return "report-smoke: a campaign model is missing from the page"
    if not smoke["self_compare_ok"]:
        return "report-smoke: a root compared against itself was flagged"
    if smoke["regressions_flagged"] == 0:
        return (
            "report-smoke: the injected settled_performance drop was "
            "not flagged"
        )
    if smoke["compare_exit"] == 0:
        return (
            "report-smoke: campaign compare exited zero despite the "
            "injected regression"
        )
    return None


def run_serve_smoke(models=("none", "foraging_for_work"), seeds=2):
    """Sweep-daemon smoke over a real root; returns evidence.

    Boots a :class:`~repro.campaign.serve.CampaignServer` on an
    ephemeral port, submits a ``len(models)`` × ``seeds`` zero-fault
    spec over HTTP (real simulations, small platform), resubmits the
    same spec (must dedup to **zero** executed sims), submits an
    overlapping second tenant (must dedup live through the shared
    root), checks ``/healthz``, and shuts down cleanly (queues drained,
    dedup index persisted).
    """
    import shutil

    from repro.campaign.client import CampaignClient
    from repro.campaign.index import INDEX_FILE
    from repro.campaign.serve import CampaignServer

    payload = {
        "name": "serve-smoke",
        "models": list(models),
        "seeds": default_seeds(seeds, base=seed_base()),
        "fault_counts": [0],
        "base": "small",
    }
    tenant_payload = dict(payload, name="serve-smoke-tenant")
    root = tempfile.mkdtemp(prefix="serve-smoke-")

    def store_lines(name):
        path = os.path.join(root, name, "results.jsonl")
        with open(path, "rb") as handle:
            return {
                json.loads(line)["key"]: line for line in handle
            }

    try:
        with CampaignServer(root, workers=2, port=0) as daemon:
            client = CampaignClient(daemon.url)
            health = client.healthz()
            client.submit(payload)
            first = client.wait(payload["name"], timeout=600.0)
            client.submit(payload)
            second = client.wait(payload["name"], timeout=600.0)
            client.submit(tenant_payload)
            tenant = client.wait(tenant_payload["name"], timeout=600.0)
            identical = (
                store_lines(payload["name"])
                == store_lines(tenant_payload["name"])
            )
        return {
            "cells": first.total,
            "health_ok": health.get("status") == "ok",
            "first_state": first.state,
            "first_executed": first.executed,
            "second_state": second.state,
            "second_executed": second.executed,
            "second_cached": second.cached,
            "tenant_executed": tenant.executed,
            "tenant_deduped": tenant.deduped,
            "stores_identical": identical,
            "index_persisted": os.path.exists(
                os.path.join(root, INDEX_FILE)
            ),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def check_serve_smoke(smoke):
    """Failure message for a serve-smoke run, or ``None`` when passed."""
    if not smoke["health_ok"]:
        return "serve-smoke: /healthz did not report ok"
    if smoke["first_state"] != "completed":
        return "serve-smoke: first submission ended {!r}".format(
            smoke["first_state"]
        )
    if smoke["first_executed"] != smoke["cells"]:
        return (
            "serve-smoke: first submission executed {} of {} "
            "cells".format(smoke["first_executed"], smoke["cells"])
        )
    if smoke["second_executed"] != 0:
        return (
            "serve-smoke: resubmission re-executed {} cells "
            "(expected 0)".format(smoke["second_executed"])
        )
    if smoke["second_cached"] != smoke["cells"]:
        return (
            "serve-smoke: resubmission cached {} of {} cells".format(
                smoke["second_cached"], smoke["cells"]
            )
        )
    if smoke["tenant_executed"] != 0:
        return (
            "serve-smoke: overlapping tenant executed {} cells "
            "(expected 0 — live dedup)".format(smoke["tenant_executed"])
        )
    if smoke["tenant_deduped"] != smoke["cells"]:
        return (
            "serve-smoke: overlapping tenant deduped {} of {} "
            "cells".format(smoke["tenant_deduped"], smoke["cells"])
        )
    if not smoke["stores_identical"]:
        return (
            "serve-smoke: tenant store lines are not byte-identical to "
            "the first submission's"
        )
    if not smoke["index_persisted"]:
        return "serve-smoke: shutdown did not persist the dedup index"
    return None


def run_examples_smoke():
    """Execute every ``examples/*.py`` script; returns name -> exit code.

    The examples are living documentation that CI never imported before;
    a renamed API breaking one shows up here instead of in a user's
    terminal.
    """
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    examples_dir = os.path.join(REPO_ROOT, "examples")
    codes = {}
    for name in sorted(os.listdir(examples_dir)):
        if not name.endswith(".py"):
            continue
        proc = subprocess.run(
            [sys.executable, os.path.join(examples_dir, name)],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        codes[name] = proc.returncode
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr.decode("utf-8", "replace"))
    return codes


def check_examples_smoke(codes):
    """Failure message for an examples report, or ``None`` when passed."""
    if not codes:
        return "examples-smoke: no example scripts found"
    failed = sorted(name for name, code in codes.items() if code != 0)
    if failed:
        return "examples-smoke: {} exited non-zero".format(
            ", ".join(failed)
        )
    return None


# -- perf-gate CLI -----------------------------------------------------------


def run_micro_benchmarks():
    """Run bench_micro.py under pytest-benchmark; return name -> median s."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    try:
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                os.path.join(REPO_ROOT, "benchmarks", "bench_micro.py"),
                "-q",
                "--benchmark-warmup=off",
                "--benchmark-json={}".format(json_path),
            ],
            cwd=REPO_ROOT,
            env=env,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                "bench_micro.py failed (exit {})".format(proc.returncode)
            )
        with open(json_path) as handle:
            report = json.load(handle)
    finally:
        os.unlink(json_path)
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in report["benchmarks"]
    }


def run_short_sweep(models=("none", "foraging_for_work"), seeds=2):
    """Time a miniature table sweep; returns wall seconds.

    A couple of small-platform batch runs exercise the full stack the way
    Tables I/II do (construction + run + analysis per seed), so sweep-level
    regressions that the microbenchmarks miss still show up here.
    """
    from repro.platform.config import PlatformConfig

    config = PlatformConfig.small()
    seed_list = default_seeds(seeds, base=seed_base())
    start = time.perf_counter()
    for model in models:
        run_batch(model, seed_list, faults=0, config=config,
                  keep_series=False)
    return time.perf_counter() - start


def load_baseline(path=BASELINE_PATH):
    """The checked-in baseline dict, or ``None`` when absent."""
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def write_baseline(result, path=BASELINE_PATH):
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_regression(medians, baseline):
    """Regression message for the gated benchmark, or ``None`` if fine."""
    if not baseline:
        return None
    reference = baseline.get("benchmarks", {}).get(GATED_BENCHMARK)
    current = medians.get(GATED_BENCHMARK)
    if reference is None or current is None:
        return None
    limit = reference * REGRESSION_TOLERANCE
    if current > limit:
        return (
            "{}: median {:.4f}s exceeds {:.0f}% of baseline {:.4f}s".format(
                GATED_BENCHMARK,
                current,
                REGRESSION_TOLERANCE * 100,
                reference,
            )
        )
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.harness",
        description="Benchmark runner and perf regression gate.",
    )
    parser.add_argument(
        "--micro", action="store_true",
        help="run the microbenchmarks + short sweep and gate on baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite BENCH_micro.json with this run's numbers",
    )
    parser.add_argument(
        "--campaign-smoke", action="store_true",
        help="run the cold/resumed campaign store gate "
             "(resumed pass must execute zero simulations)",
    )
    parser.add_argument(
        "--dynamics-smoke", action="store_true",
        help="run the closed-loop self-healing gate (thermal storm must "
             "throttle and restore, watchdog must win the recovery race, "
             "repeats must be bit-identical)",
    )
    parser.add_argument(
        "--timer-smoke", action="store_true",
        help="run the event-timer gate (ticked and event timer modes "
             "bit-identical on a faulted FFW cell, >= 3x fewer dispatched "
             "events when idle-heavy, campaign keys conserved)",
    )
    parser.add_argument(
        "--workload-smoke", action="store_true",
        help="run the declarative-workload gate (burst runs repeat "
             "bit-identically, fork_join spec matches the legacy app, "
             "workload-free keys conserved, capacity lint flags "
             "over-capacity arrivals)",
    )
    parser.add_argument(
        "--examples-smoke", action="store_true",
        help="execute every examples/*.py script and fail on non-zero "
             "exits",
    )
    parser.add_argument(
        "--report-smoke", action="store_true",
        help="run the sweep-scale analysis gate (campaign report must "
             "re-render byte-identically and be self-contained, campaign "
             "compare must flag an injected regression with a non-zero "
             "exit)",
    )
    parser.add_argument(
        "--serve-smoke", action="store_true",
        help="run the sweep-daemon gate (ephemeral-port daemon, HTTP "
             "submission executes the grid, resubmission and an "
             "overlapping tenant dedup to zero executed sims, clean "
             "shutdown persists the index)",
    )
    args = parser.parse_args(argv)
    requested = (
        args.micro, args.campaign_smoke, args.dynamics_smoke,
        args.timer_smoke, args.workload_smoke, args.examples_smoke,
        args.report_smoke, args.serve_smoke,
    )
    if not any(requested):
        parser.error(
            "nothing to do (pass --micro, --campaign-smoke, "
            "--dynamics-smoke, --timer-smoke, --workload-smoke, "
            "--examples-smoke, --report-smoke and/or --serve-smoke)"
        )

    smoke = None
    dedup = None
    dynamics = None
    timer = None
    workload = None
    examples = None
    report = None
    serve = None
    if args.timer_smoke:
        timer = run_timer_smoke()
        print("timer smoke (event-driven AIM wakeups vs the tick poll):")
        print("  {:<36} {}".format(
            "FFW switches on the faulted cell", timer["switches"]))
        print("  {:<36} {}".format(
            "ticked == event (all observables)", timer["identical"]))
        print("  {:<36} {} ticked / {} event".format(
            "idle-heavy dispatched events",
            timer["idle_ticked_dispatched"],
            timer["idle_event_dispatched"]))
        print("  {:<36} {}".format(
            "campaign keys conserved", timer["keys_conserved"]))
        failure = check_timer_smoke(timer)
        if failure is not None:
            print("\nTIMER SMOKE FAILED: {}".format(failure))
            return 2
        print("  event mode bit-identical and >= 3x fewer events — ok")
        if not any((args.micro, args.campaign_smoke, args.dynamics_smoke,
                    args.workload_smoke, args.examples_smoke,
                    args.report_smoke, args.serve_smoke)):
            return 0
    if args.dynamics_smoke:
        dynamics = run_dynamics_smoke()
        print("dynamics smoke (hysteresis governor + watchdog recovery):")
        print("  {:<36} {}".format(
            "throttle events", dynamics["throttle_events"]))
        print("  {:<36} {}".format(
            "all throttles restored", dynamics["restored"]))
        print("  {:<36} {} (of {} total)".format(
            "watchdog recoveries", dynamics["autonomous_recoveries"],
            dynamics["recoveries_total"]))
        failure = check_dynamics_smoke(dynamics)
        if failure is not None:
            print("\nDYNAMICS SMOKE FAILED: {}".format(failure))
            return 2
        print("  storm throttled, recovered and repeated identically — ok")
        if not any((args.micro, args.campaign_smoke, args.workload_smoke,
                    args.examples_smoke, args.report_smoke,
                    args.serve_smoke)):
            return 0
    if args.workload_smoke:
        workload = run_workload_smoke()
        print("workload smoke (burst workload + fork_join spec parity):")
        print("  {:<36} {}".format("burst joins", workload["burst_joins"]))
        print("  {:<36} {}".format(
            "burst repeats identical", workload["burst_identical"]))
        print("  {:<36} {}".format(
            "fork_join spec == legacy", workload["fork_join_identical"]))
        print("  {:<36} {}".format(
            "workload-free keys conserved", workload["keys_conserved"]))
        print("  {:<36} {}".format(
            "lint flags over-capacity", workload["lint_flags_over_capacity"]))
        failure = check_workload_smoke(workload)
        if failure is not None:
            print("\nWORKLOAD SMOKE FAILED: {}".format(failure))
            return 2
        print("  declarative workloads deterministic and conserved — ok")
        if not any((args.micro, args.campaign_smoke, args.examples_smoke,
                    args.report_smoke, args.serve_smoke)):
            return 0
    if args.examples_smoke:
        examples = run_examples_smoke()
        print("examples smoke ({} scripts):".format(len(examples)))
        for name in sorted(examples):
            print("  {:<36} exit {}".format(name, examples[name]))
        failure = check_examples_smoke(examples)
        if failure is not None:
            print("\nEXAMPLES SMOKE FAILED: {}".format(failure))
            return 2
        print("  every example ran clean — ok")
        if not any((args.micro, args.campaign_smoke, args.report_smoke,
                    args.serve_smoke)):
            return 0
    if args.report_smoke:
        report = run_report_smoke()
        print("report smoke ({} cells, small platform):".format(
            report["cells"]))
        print("  {:<36} {}".format(
            "resumed pass executed", report["resumed_executed"]))
        print("  {:<36} {} ({} bytes)".format(
            "re-render byte-identical", report["identical"],
            report["html_bytes"]))
        print("  {:<36} {}".format(
            "page self-contained", report["self_contained"]))
        print("  {:<36} {}".format(
            "self-compare clean", report["self_compare_ok"]))
        print("  {:<36} {} flagged, exit {}".format(
            "injected regression", report["regressions_flagged"],
            report["compare_exit"]))
        failure = check_report_smoke(report)
        if failure is not None:
            print("\nREPORT SMOKE FAILED: {}".format(failure))
            return 2
        print("  report deterministic, compare gated the regression — ok")
        if not any((args.micro, args.campaign_smoke, args.serve_smoke)):
            return 0
    if args.serve_smoke:
        serve = run_serve_smoke()
        print("serve smoke ({} cells, small platform):".format(
            serve["cells"]))
        print("  {:<36} {}".format("healthz ok", serve["health_ok"]))
        print("  {:<36} {} executed ({})".format(
            "first submission", serve["first_executed"],
            serve["first_state"]))
        print("  {:<36} {} executed, {} cached".format(
            "resubmission", serve["second_executed"],
            serve["second_cached"]))
        print("  {:<36} {} executed, {} deduped".format(
            "overlapping tenant", serve["tenant_executed"],
            serve["tenant_deduped"]))
        print("  {:<36} {}".format(
            "stores byte-identical", serve["stores_identical"]))
        print("  {:<36} {}".format(
            "index persisted on shutdown", serve["index_persisted"]))
        failure = check_serve_smoke(serve)
        if failure is not None:
            print("\nSERVE SMOKE FAILED: {}".format(failure))
            return 2
        print("  daemon executed once, deduped the rest, shut down "
              "clean — ok")
        if not args.micro and not args.campaign_smoke:
            return 0
    if args.campaign_smoke:
        smoke = run_campaign_smoke()
        print("campaign smoke ({} cells, small platform):".format(
            smoke["cells"]))
        print("  {:<36} {:>10.6f} s ({} executed)".format(
            "cold pass", smoke["cold_s"], smoke["cold_executed"]))
        print("  {:<36} {:>10.6f} s ({} executed, {} cached)".format(
            "resumed pass", smoke["warm_s"], smoke["warm_executed"],
            smoke["warm_cached"]))
        failure = check_campaign_smoke(smoke)
        if failure is not None:
            print("\nCAMPAIGN SMOKE FAILED: {}".format(failure))
            return 2
        print("  resumed pass hit the store for every cell — ok")
        dedup = run_dedup_smoke()
        print("dedup smoke ({} shared + {} faulted cells):".format(
            dedup["shared_cells"], dedup["faulted_cells"]))
        print("  {:<36} {} deduped, {} executed".format(
            "second campaign", dedup["deduped"], dedup["executed"]))
        failure = check_dedup_smoke(dedup)
        if failure is not None:
            print("\nCAMPAIGN SMOKE FAILED: {}".format(failure))
            return 2
        print("  shared cells reused bit-identically, 0 executed — ok")
        if not args.micro:
            return 0

    medians = run_micro_benchmarks()
    sweep_seconds = run_short_sweep()
    print()
    print("median wall-time per benchmark:")
    for name in sorted(medians):
        print("  {:<36} {:>10.6f} s".format(name, medians[name]))
    print("  {:<36} {:>10.6f} s".format("short_sweep (2 models x 2 seeds)",
                                        sweep_seconds))

    baseline = load_baseline()
    message = check_regression(medians, baseline)
    result = {
        "benchmarks": medians,
        "short_sweep_s": sweep_seconds,
        "gated_benchmark": GATED_BENCHMARK,
        "regression_tolerance": REGRESSION_TOLERANCE,
    }
    if smoke is not None:
        result["campaign_smoke"] = smoke
    if dedup is not None:
        result["dedup_smoke"] = dedup
    if dynamics is not None:
        result["dynamics_smoke"] = dynamics
    if timer is not None:
        result["timer_smoke"] = timer
    if workload is not None:
        result["workload_smoke"] = workload
    if examples is not None:
        result["examples_smoke"] = examples
    if report is not None:
        result["report_smoke"] = report
    if serve is not None:
        result["serve_smoke"] = serve
    if baseline:
        # Carry over auxiliary blocks (history, seed_reference, notes).
        for key, value in baseline.items():
            result.setdefault(key, value)

    if baseline is None:
        write_baseline(result)
        print("\nwrote initial baseline to {}".format(BASELINE_PATH))
        return 0
    if message is not None and not args.update_baseline:
        print("\nPERF REGRESSION: {}".format(message))
        return 2
    if args.update_baseline:
        history = result.setdefault("history", [])
        history.append(
            {
                name: baseline["benchmarks"].get(name)
                for name in sorted(baseline.get("benchmarks", {}))
            }
        )
        write_baseline(result)
        print("\nbaseline updated at {}".format(BASELINE_PATH))
    else:
        print("\nwithin {:.0f}% of baseline — ok".format(
            REGRESSION_TOLERANCE * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
