"""Tests for the five-port router."""

import pytest

from repro.noc.packet import Packet
from repro.noc.router import Router, RouterConfig
from repro.noc.topology import DIRECTIONS, INTERNAL


def test_router_has_five_ports():
    router = Router(0)
    assert set(router.ports) == set(DIRECTIONS) | {INTERNAL}


def test_forwarded_packet_counts_task_and_queue():
    router = Router(0)
    router.notify_routed(Packet(0, dest_task=2), to_internal=False)
    router.notify_routed(Packet(0, dest_task=2), to_internal=False)
    router.notify_routed(Packet(0, dest_task=3), to_internal=False)
    assert router.task_route_counts == {2: 2, 3: 1}
    assert router.packets_forwarded == 3
    assert router.recent_tasks == [2, 2, 3]


def test_internal_routing_counts_sink_not_queue():
    router = Router(0)
    router.notify_routed(Packet(0, dest_task=2), to_internal=True)
    assert router.packets_sunk == 1
    assert router.recent_tasks == []
    assert router.task_route_counts == {2: 1}


def test_recent_queue_bounded_by_config():
    router = Router(0, RouterConfig(recent_queue_depth=3))
    for task in (1, 2, 3, 1, 2):
        router.notify_routed(Packet(0, dest_task=task), to_internal=False)
    assert router.recent_tasks == [3, 1, 2]


def test_observers_receive_routing_events(recording_observer):
    router = Router(7)
    router.add_observer(recording_observer)
    router.notify_routed(Packet(0, dest_task=2), to_internal=False)
    router.notify_routed(Packet(0, dest_task=3), to_internal=True)
    assert recording_observer.routed == [(7, 2, False), (7, 3, True)]


def test_removed_observer_stops_receiving(recording_observer):
    router = Router(7)
    router.add_observer(recording_observer)
    router.remove_observer(recording_observer)
    router.notify_routed(Packet(0, dest_task=2), to_internal=False)
    assert recording_observer.routed == []


def test_failed_router_ignores_events(recording_observer):
    router = Router(0)
    router.add_observer(recording_observer)
    router.fail()
    router.notify_routed(Packet(0, dest_task=2), to_internal=False)
    assert router.packets_forwarded == 0
    assert recording_observer.routed == []
    assert all(not port.enabled for port in router.ports.values())


def test_record_port_statistics():
    router = Router(0)
    router.record_port("N", incoming=True)
    router.record_port("E", incoming=False)
    assert router.ports["N"].packets_in == 1
    assert router.ports["E"].packets_out == 1


class TestRcap:
    def test_write_and_read(self):
        router = Router(0)
        router.rcap_write({"routing_mode": "xy", "router_latency": 5})
        settings = router.rcap_read()
        assert settings["routing_mode"] == "xy"
        assert settings["router_latency"] == 5

    def test_unknown_setting_rejected(self):
        router = Router(0)
        with pytest.raises(KeyError):
            router.rcap_write({"no_such_setting": 1})

    def test_write_to_failed_router_rejected(self):
        router = Router(0)
        router.fail()
        with pytest.raises(RuntimeError):
            router.rcap_write({"router_latency": 5})


class TestRouterConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(routing_mode="magic")

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(router_latency=-1)

    def test_copy_is_independent(self):
        config = RouterConfig(router_latency=4)
        clone = config.copy()
        clone.router_latency = 9
        assert config.router_latency == 4
