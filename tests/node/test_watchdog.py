"""Tests for the node watchdog."""

import pytest

from repro.node.watchdog import Watchdog


def test_fresh_watchdog_not_expired():
    dog = Watchdog(timeout_us=100)
    assert not dog.expired(100)


def test_expiry_after_silence():
    dog = Watchdog(timeout_us=100)
    assert dog.expired(101)


def test_kick_defers_expiry():
    dog = Watchdog(timeout_us=100)
    dog.kick(now=90)
    assert not dog.expired(150)
    assert dog.expired(191)


def test_kick_counting():
    dog = Watchdog()
    dog.kick(1)
    dog.kick(2)
    assert dog.kicks == 2
    assert dog.last_kick == 2


def test_check_and_count_increments_only_when_expired():
    dog = Watchdog(timeout_us=100)
    assert not dog.check_and_count(50)
    assert dog.check_and_count(200)
    assert dog.expirations == 1


def test_invalid_timeout_rejected():
    with pytest.raises(ValueError):
        Watchdog(timeout_us=0)
