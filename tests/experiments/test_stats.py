"""Tests for quartile statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.experiments.stats import (
    iqr,
    mean,
    median,
    percentile,
    quartiles,
    summarize,
)


def test_median_odd():
    assert median([3, 1, 2]) == 2


def test_median_even_interpolates():
    assert median([1, 2, 3, 4]) == 2.5


def test_quartiles_known_values():
    q1, q2, q3 = quartiles(list(range(1, 12)))  # 1..11
    assert (q1, q2, q3) == (3.5, 6.0, 8.5)


def test_quartiles_single_value():
    assert quartiles([7]) == (7.0, 7.0, 7.0)


def test_percentile_endpoints():
    values = [5, 1, 9]
    assert percentile(values, 0.0) == 1
    assert percentile(values, 1.0) == 9


def test_percentile_matches_numpy_linear():
    numpy = pytest.importorskip("numpy")
    values = [2.0, 9.0, 4.0, 7.0, 1.0, 8.0, 3.0]
    for q in (0.1, 0.25, 0.5, 0.75, 0.9):
        assert percentile(values, q) == pytest.approx(
            float(numpy.percentile(values, q * 100))
        )


def test_percentile_invalid_inputs():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1], 1.5)


def test_mean():
    assert mean([1, 2, 3]) == 2.0
    with pytest.raises(ValueError):
        mean([])


def test_summarize():
    summary = summarize([4, 1, 3, 2])
    assert summary["n"] == 4
    assert summary["min"] == 1
    assert summary["max"] == 4
    assert summary["mean"] == 2.5
    assert summary["q2"] == 2.5


def test_iqr():
    assert iqr(list(range(1, 12))) == 5.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=100))
def test_quartiles_ordered_and_bounded(values):
    q1, q2, q3 = quartiles(values)
    assert min(values) <= q1 <= q2 <= q3 <= max(values)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
             max_size=50),
    st.floats(min_value=0, max_value=1),
)
def test_percentile_monotone_in_fraction(values, fraction):
    low = percentile(values, max(0.0, fraction - 0.1))
    high = percentile(values, min(1.0, fraction + 0.1))
    # Tolerance absorbs float interpolation noise on (near-)equal values.
    assert low <= high + 1e-6 * max(1.0, abs(high))
