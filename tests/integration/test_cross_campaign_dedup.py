"""Cross-campaign dedup: table2 reuses table1's cells bit-identically.

The store-v2 contract this pins: when two campaigns under one store root
share cell keys (the key hashes the full simulation payload, so shared
key ⇔ same simulation), the second campaign executes **zero**
simulations for the shared cells — it resolves them through the root's
dedup index — and the reused rows are bit-identical (byte-identical
record lines, value-identical rows) to a fresh sequential run.
"""

import json
import os

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.index import StoreIndex
from repro.campaign.spec import CampaignSpec
from repro.experiments.runner import run_single
from repro.platform.config import PlatformConfig

_CONFIG = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)
_MODELS = ("none", "foraging_for_work")
_SEEDS = (31, 32)


def _table1_spec():
    return CampaignSpec(
        name="table1", models=_MODELS, seeds=_SEEDS,
        fault_counts=(0,), config=_CONFIG,
    )


def _table2_spec():
    return CampaignSpec(
        name="table2", models=_MODELS, seeds=_SEEDS,
        fault_counts=(0, 2), config=_CONFIG,
    )


@pytest.fixture(scope="module")
def shared_root(tmp_path_factory):
    """table1 run cold, then table2 sharing its store root."""
    root = str(tmp_path_factory.mktemp("campaigns"))
    first = run_campaign(
        _table1_spec(), store=os.path.join(root, "table1"),
        processes=0, dedup_root=root,
    )
    second = run_campaign(
        _table2_spec(), store=os.path.join(root, "table2"),
        processes=0, dedup_root=root,
    )
    return root, first, second


def test_shared_cells_execute_zero_simulations(shared_root):
    _root, first, second = shared_root
    shared = len(_MODELS) * len(_SEEDS)          # the zero-fault cells
    assert first.executed == shared
    assert second.deduped == shared              # all resolved via index
    assert second.executed == shared             # only the 2-fault cells
    assert second.cached == 0


def test_reused_record_lines_are_byte_identical(shared_root):
    root, _first, _second = shared_root

    def lines(campaign):
        path = os.path.join(root, campaign, "results.jsonl")
        with open(path) as handle:
            return {
                json.loads(line)["key"]: line.rstrip("\n")
                for line in handle if line.strip()
            }

    table1 = lines("table1")
    table2 = lines("table2")
    shared = set(table1) & set(table2)
    assert len(shared) == len(_MODELS) * len(_SEEDS)
    for key in shared:
        assert table1[key] == table2[key]


def test_deduped_rows_match_fresh_sequential_run(shared_root):
    _root, _first, second = shared_root
    fresh = [run_single(*d.job()) for d in _table2_spec().expand()]
    assert [r.as_row() for r in second.results] == [
        r.as_row() for r in fresh
    ]


def test_dedup_never_crosses_differing_payloads(shared_root, tmp_path):
    """A campaign whose config differs shares no keys — nothing reused."""
    root, _first, _second = shared_root
    other = CampaignSpec(
        name="other", models=_MODELS, seeds=_SEEDS, fault_counts=(0,),
        config=PlatformConfig.small(horizon_us=100_000,
                                    fault_time_us=50_000),
    )
    report = run_campaign(
        other, store=os.path.join(root, "other"),
        processes=0, dedup_root=root,
    )
    assert report.deduped == 0
    assert report.executed == other.size()


def test_index_lookups_verify_keys(shared_root):
    root, _first, _second = shared_root
    index = StoreIndex(root)
    index.refresh()
    for descriptor in _table1_spec().expand():
        record = index.lookup(descriptor.key())
        assert record is not None
        assert record["key"] == descriptor.key()
    assert index.lookup("not-a-real-key") is None
