"""Tests for the Figure 2a monitor and knob surface."""

import pytest

from repro.core.knobs import standard_knob_bank
from repro.core.monitors import standard_monitor_bank
from repro.noc.packet import Packet


@pytest.fixture
def node(small_platform):
    """Node 5 of the small platform with its monitor and knob banks."""
    platform = small_platform
    pe = platform.pes[5]
    router = platform.network.router(5)
    monitors = standard_monitor_bank(platform.sim, pe, router,
                                     platform.network)
    knobs = standard_knob_bank(pe, router, reason="test")
    return platform, pe, router, monitors, knobs


EXPECTED_MONITORS = {
    "queue_length",
    "current_task",
    "frequency_mhz",
    "temperature_c",
    "watchdog_expired",
    "neighbor_tasks",
    "routed_task_counts",
    "recent_task_queue",
}


def test_full_monitor_surface_present(node):
    _platform, _pe, _router, monitors, _knobs = node
    assert set(monitors.names()) == EXPECTED_MONITORS


def test_full_knob_surface_present(node):
    _platform, _pe, _router, _monitors, knobs = node
    assert set(knobs.names()) == {
        "task_select",
        "clock_enable",
        "reset",
        "frequency",
        "router_config",
    }


def test_read_all_returns_snapshot(node):
    _platform, _pe, _router, monitors, _knobs = node
    snapshot = monitors.read_all()
    assert set(snapshot) == EXPECTED_MONITORS


def test_current_task_monitor_tracks_pe(node):
    _platform, pe, _router, monitors, _knobs = node
    pe.set_task(3, reason="test")
    assert monitors.read("current_task") == 3


def test_queue_length_monitor(node):
    platform, pe, _router, monitors, _knobs = node
    pe.set_task(2, reason="test")
    # One executes, one queues.
    pe.receive(Packet(0, dest_task=2))
    pe.receive(Packet(0, dest_task=2))
    assert monitors.read("queue_length") == 1


def test_neighbor_task_monitor_reads_directory(node):
    platform, _pe, _router, monitors, _knobs = node
    # Node 5 of a 4x4 mesh has neighbours 1 (N), 6 (E), 9 (S), 4 (W).
    platform.pes[1].set_task(3, reason="test")
    neighbors = monitors.read("neighbor_tasks")
    assert neighbors["N"] == 3
    assert set(neighbors) == {"N", "E", "S", "W"}


def test_routed_task_counts_monitor(node):
    _platform, _pe, router, monitors, _knobs = node
    router.notify_routed(Packet(0, dest_task=2), to_internal=False)
    assert monitors.read("routed_task_counts") == {2: 1}


def test_frequency_knob_and_monitor_agree(node):
    _platform, _pe, _router, monitors, knobs = node
    knobs["frequency"].set(200)
    assert monitors.read("frequency_mhz") == 200


def test_task_select_knob_uses_reason(node):
    _platform, pe, _router, _monitors, knobs = node
    knobs["task_select"].set(3)
    assert pe.task_id == 3
    assert pe.task_switches == 1  # reason 'test' counts as intelligence


def test_clock_enable_knob(node):
    _platform, pe, _router, _monitors, knobs = node
    knobs["clock_enable"].set(False)
    assert not pe.clock_enabled
    knobs["clock_enable"].set(True)
    assert pe.clock_enabled


def test_reset_knob_clears_queue(node):
    _platform, pe, _router, _monitors, knobs = node
    pe.set_task(2, reason="test")
    for _ in range(3):
        pe.receive(Packet(0, dest_task=2))
    knobs["reset"].set()
    assert len(pe.queue) == 0


def test_router_config_knob_via_rcap(node):
    _platform, _pe, router, _monitors, knobs = node
    knobs["router_config"].set({"router_latency": 7})
    assert router.config.router_latency == 7


def test_actuation_counts(node):
    _platform, _pe, _router, _monitors, knobs = node
    knobs["frequency"].set(120)
    knobs["frequency"].set(150)
    counts = knobs.actuation_counts()
    assert counts["frequency"] == 2
    assert counts["reset"] == 0


def test_watchdog_monitor_expires_without_work(node):
    platform, _pe, _router, monitors, _knobs = node
    platform.sim.run_until(platform.pes[5].watchdog.timeout_us + 1)
    assert monitors.read("watchdog_expired") in (True, False)
