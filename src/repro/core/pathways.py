"""Decision pathways: monitors → thresholders → knobs.

"The intelligence models can then be implemented by tying these functions
together to produce a response-threshold decision pathway from the monitors
through to the knobs" (paper §III-C).  A :class:`DecisionPathway` is a named
container of comparators and threshold units with explicit wiring, giving
models a uniform structure that tests and the taxonomy example can
introspect: which stimuli feed which thresholds, and which knob each
threshold drives.
"""

from repro.core.comparators import VectorMatchComparator
from repro.core.thresholds import ThresholdUnit


class DecisionPathway:
    """A wired set of sense→decide→act elements for one node.

    The pathway is deliberately explicit rather than clever: models build
    their circuits once in ``build()`` and the simulation then only fires
    impulses through them, mirroring how the PicoBlaze program is uploaded
    once and then reacts to monitor events.
    """

    def __init__(self, name):
        self.name = name
        self.comparators = {}
        self.thresholds = {}
        self._knob_bindings = {}

    # -- construction -------------------------------------------------------

    def add_comparator(self, key, pattern, mask=None):
        """Create and register a comparator demultiplexing a vector input."""
        if key in self.comparators:
            raise KeyError("duplicate comparator {!r}".format(key))
        comparator = VectorMatchComparator(
            pattern, mask=mask, name="{}:{}".format(self.name, key)
        )
        self.comparators[key] = comparator
        return comparator

    def add_threshold(self, key, threshold, **kwargs):
        """Create and register a threshold unit."""
        if key in self.thresholds:
            raise KeyError("duplicate threshold {!r}".format(key))
        unit = ThresholdUnit(
            threshold, name="{}:{}".format(self.name, key), **kwargs
        )
        self.thresholds[key] = unit
        return unit

    def wire(self, comparator_key, threshold_key, inhibitory=False):
        """Connect a comparator's output into a threshold unit."""
        comparator = self.comparators[comparator_key]
        unit = self.thresholds[threshold_key]
        if inhibitory:
            comparator.output.connect(unit.inhibit)
        else:
            comparator.output.connect(unit.excite)
        return self

    def bind_knob(self, threshold_key, action):
        """Drive ``action(payload)`` whenever the threshold unit fires."""
        unit = self.thresholds[threshold_key]
        unit.output.connect(action)
        self._knob_bindings[threshold_key] = action
        return self

    # -- runtime --------------------------------------------------------------

    def present(self, value, payload=None):
        """Offer a vector observation to every comparator."""
        for comparator in self.comparators.values():
            comparator.present(value, payload)

    def reset_all(self):
        """Reset every threshold counter (used after a task switch)."""
        for unit in self.thresholds.values():
            unit.reset()

    # -- introspection -----------------------------------------------------------

    def describe(self):
        """Human-readable wiring summary (used by the taxonomy example)."""
        lines = ["pathway {!r}".format(self.name)]
        for key, comparator in sorted(self.comparators.items()):
            lines.append(
                "  comparator {:<16} pattern={!r} matches={}".format(
                    str(key), comparator.pattern, comparator.matches
                )
            )
        for key, unit in sorted(self.thresholds.items()):
            bound = "-> knob" if key in self._knob_bindings else ""
            lines.append(
                "  threshold  {:<16} level={} value={} fires={} {}".format(
                    str(key), unit.threshold, unit.value, unit.fires, bound
                )
            )
        return "\n".join(lines)

    def __repr__(self):
        return "DecisionPathway({!r}, {} comparators, {} thresholds)".format(
            self.name, len(self.comparators), len(self.thresholds)
        )
