"""The paper's baseline: no embedded intelligence.

"An implementation using a heuristic fixed routing approach (minimised
Manhattan distance)" — task assignments stay at the initial mapping and
packets follow nearest-provider XY routes, both of which are substrate
behaviour; the model itself does nothing.  It exists so every experiment
runs through an identical code path regardless of configuration.
"""

from repro.core.models.base import IDLE, IntelligenceModel


class NoIntelligenceModel(IntelligenceModel):
    """Inert model: never touches a knob."""

    name = "none"
    model_number = None
    factors = frozenset()

    def next_wakeup(self, now):
        """Inert: ``on_tick`` is always a no-op, never tick."""
        return IDLE
