"""Runtime metrics sampling (the data behind Figure 4 and Tables I/II).

A :class:`MetricsSampler` ticks every ``window_us`` (default 10 ms) and
records, per window:

* ``active_nodes`` — nodes that completed at least one packet-consuming
  execution in the window: the paper's "Application Throughput / Nodes
  Active" axis;
* ``executions`` / ``sink_executions`` / ``joins`` — work completed;
* ``task_switches`` — intelligence-driven switches in the window (the task
  churn visible in Figure 4's distribution panels);
* ``census`` — nodes per task (the task-distribution lines, whose settled
  levels are the 1:3:1 ≈ 25/75/25 of the paper's panels);
* ``alive_nodes`` — surviving node count (drops at fault injection);
* ``corrupted_deliveries`` — packets delivered corrupted in the window
  (fault taxonomy v2): the payload reached a node but was discarded, so
  the window's QoS loss is visible even though the NoC counted a
  delivery.  The column is held outside :attr:`MetricsSeries.COLUMNS`
  and exported only when non-zero somewhere, keeping series produced by
  corruption-free runs byte-identical to earlier releases;
* ``throttle_events`` / ``autonomous_recoveries`` / ``deadlock_drops`` —
  closed-loop dynamics activity in the window (governor throttles
  actuated, nodes recovered by the watchdog path, packets dropped by the
  deadlock bound).  Same optional-column treatment as
  ``corrupted_deliveries``: exported only when non-zero somewhere, so
  dynamics-free series stay byte-identical;
* ``task_executions`` — per-task execution counts per window, tracked
  only for workloads that opt in (``per_task_series`` on a declarative
  :class:`~repro.app.workloads.WorkloadSpec`) and exported per task only
  when non-zero somewhere — legacy series never grow the entry.
"""

from repro.sim.process import PeriodicProcess


class MetricsSeries:
    """Columnar store of sampled windows."""

    COLUMNS = (
        "time_ms",
        "active_nodes",
        "executions",
        "sink_executions",
        "joins",
        "task_switches",
        "alive_nodes",
    )

    #: Post-v1 columns, exported only when non-zero somewhere (see
    #: :meth:`as_dict`) so series from runs that never exercise the
    #: corresponding fault/dynamics machinery stay byte-identical.
    OPTIONAL_COLUMNS = (
        "corrupted_deliveries",
        "throttle_events",
        "autonomous_recoveries",
        "deadlock_drops",
    )

    def __init__(self, task_ids):
        self.task_ids = tuple(task_ids)
        for column in self.COLUMNS:
            setattr(self, column, [])
        self.census = {tid: [] for tid in self.task_ids}
        self.task_executions = {tid: [] for tid in self.task_ids}
        for column in self.OPTIONAL_COLUMNS:
            setattr(self, column, [])

    def append(self, **values):
        """Append one window's values (census passed as a dict).

        The optional columns — and the optional per-task
        ``task_executions`` dict — default to 0 so callers predating
        them keep working unchanged.
        """
        census = values.pop("census")
        per_task = values.pop("task_executions", None) or {}
        for column in self.OPTIONAL_COLUMNS:
            getattr(self, column).append(values.pop(column, 0))
        for column in self.COLUMNS:
            getattr(self, column).append(values[column])
        for tid in self.task_ids:
            self.census[tid].append(census.get(tid, 0))
            self.task_executions[tid].append(per_task.get(tid, 0))

    def __len__(self):
        return len(self.time_ms)

    def window_slice(self, start_ms, end_ms):
        """Indices of samples with start_ms <= t < end_ms."""
        return [
            i for i, t in enumerate(self.time_ms) if start_ms <= t < end_ms
        ]

    def mean(self, column, start_ms=None, end_ms=None):
        """Mean of a column, optionally over a time range."""
        values = getattr(self, column)
        if start_ms is None and end_ms is None:
            selected = values
        else:
            lo = start_ms if start_ms is not None else float("-inf")
            hi = end_ms if end_ms is not None else float("inf")
            selected = [
                v for v, t in zip(values, self.time_ms) if lo <= t < hi
            ]
        if not selected:
            return 0.0
        return sum(selected) / len(selected)

    def as_dict(self):
        """Plain-dict export (JSON-friendly).

        An optional column joins the export only when its machinery
        actually fired: an all-zero column is omitted so series (and
        the campaign-store records built from them) from runs without
        corruption or dynamics stay byte-identical to earlier releases.
        """
        data = {column: list(getattr(self, column)) for column in self.COLUMNS}
        for column in self.OPTIONAL_COLUMNS:
            values = getattr(self, column)
            if any(values):
                data[column] = list(values)
        tracked = {
            tid: list(v)
            for tid, v in self.task_executions.items()
            if any(v)
        }
        if tracked:
            data["task_executions"] = tracked
        data["census"] = {tid: list(v) for tid, v in self.census.items()}
        return data


class MetricsSampler:
    """Periodic sampler over the platform's PEs and workload.

    ``network`` is optional: when given, the sampler also tracks the
    per-window corrupted-delivery and deadlock-drop counts from the
    network's statistics.  ``dynamics`` is optional too: when given,
    the sampler tracks per-window throttle and autonomous-recovery
    activity from the platform's dynamics controller.
    """

    def __init__(self, sim, pes, directory, workload, window_us=10_000,
                 network=None, dynamics=None):
        self.sim = sim
        self.pes = list(pes)
        self.directory = directory
        self.workload = workload
        self.network = network
        self.dynamics = dynamics
        self.window_us = window_us
        task_ids = workload.graph.task_ids()
        self.series = MetricsSeries(task_ids)
        self._last_sink_execs = 0
        self._last_joins = 0
        self._last_switches = 0
        self._last_task_execs = {}
        self._last_corrupted = 0
        self._last_throttles = 0
        self._last_recoveries = 0
        self._last_deadlock_drops = 0
        self._process = PeriodicProcess(
            sim, window_us, self._sample, priority=sim.PRIORITY_SAMPLE
        )

    def start(self):
        """Begin sampling at the window period; returns self."""
        self._process.start()
        return self

    def stop(self):
        """Stop sampling (existing samples are kept)."""
        self._process.stop()

    #: Every this many windows the workload's join state is pruned, which
    #: bounds memory in open-ended simulations.
    PRUNE_EVERY_WINDOWS = 100

    def _sample(self, _process):
        if (
            len(self.series) % self.PRUNE_EVERY_WINDOWS
            == self.PRUNE_EVERY_WINDOWS - 1
        ):
            self.workload.prune_stale_joins()
        active = 0
        executions = 0
        for pe in self.pes:
            done = pe.drain_window_executions()
            executions += done
            if done > 0:
                active += 1
        sink_total = self.workload.sink_task_executions()
        joins_total = self.workload.joins
        switches_total = sum(pe.task_switches for pe in self.pes)
        alive = sum(1 for pe in self.pes if not pe.halted)
        corrupted_total = (
            self.network.stats.get("delivered_corrupted", 0)
            if self.network is not None else 0
        )
        deadlock_total = (
            self.network.stats.get("dropped_deadlock", 0)
            if self.network is not None else 0
        )
        throttles_total = (
            self.dynamics.throttle_events
            if self.dynamics is not None else 0
        )
        recoveries_total = (
            self.dynamics.autonomous_recoveries
            if self.dynamics is not None else 0
        )
        per_task = None
        if getattr(self.workload, "per_task_series", False):
            totals = self.workload.executions_by_task
            per_task = {
                tid: totals.get(tid, 0) - self._last_task_execs.get(tid, 0)
                for tid in self.series.task_ids
            }
            self._last_task_execs = dict(totals)
        self.series.append(
            time_ms=self.sim.now / 1000.0,
            active_nodes=active,
            executions=executions,
            sink_executions=sink_total - self._last_sink_execs,
            joins=joins_total - self._last_joins,
            task_switches=switches_total - self._last_switches,
            alive_nodes=alive,
            corrupted_deliveries=corrupted_total - self._last_corrupted,
            throttle_events=throttles_total - self._last_throttles,
            autonomous_recoveries=recoveries_total - self._last_recoveries,
            deadlock_drops=deadlock_total - self._last_deadlock_drops,
            task_executions=per_task,
            census=self.directory.task_census(),
        )
        self._last_sink_execs = sink_total
        self._last_joins = joins_total
        self._last_switches = switches_total
        self._last_corrupted = corrupted_total
        self._last_throttles = throttles_total
        self._last_recoveries = recoveries_total
        self._last_deadlock_drops = deadlock_total
