"""Tests for the Table I/II generators."""

import pytest

from repro.experiments.runner import RunResult
from repro.experiments.tables import (
    baseline_reference,
    format_table,
    table1,
    table2,
)


def result(model, settled=10.0, settling=100.0, faults=0, recovered=None,
           recovery=50.0, seed=0):
    return RunResult(
        model=model,
        seed=seed,
        faults=faults,
        settling_time_ms=settling,
        settled_performance=settled,
        recovery_time_ms=recovery,
        recovered_performance=recovered if recovered is not None else settled,
        series=None,
        app_stats={},
        noc_stats={},
        total_switches=0,
    )


@pytest.fixture
def zero_fault_results():
    return {
        "none": [result("none", settled=s) for s in (9.0, 10.0, 11.0)],
        "network_interaction": [
            result("network_interaction", settled=s)
            for s in (10.0, 10.2, 10.9)
        ],
        "foraging_for_work": [
            result("foraging_for_work", settled=s)
            for s in (11.5, 12.9, 14.1)
        ],
    }


def test_baseline_reference_is_median(zero_fault_results):
    assert baseline_reference(zero_fault_results) == 10.0


def test_baseline_reference_requires_baseline():
    with pytest.raises(ValueError):
        baseline_reference({"foraging_for_work": [result("ffw")]})


class TestTable1:
    def test_rows_in_paper_order(self, zero_fault_results):
        rows = table1(zero_fault_results)
        assert [r["model"] for r in rows] == [
            "none", "network_interaction", "foraging_for_work",
        ]

    def test_baseline_median_is_100_percent(self, zero_fault_results):
        rows = table1(zero_fault_results)
        assert rows[0]["perf_q2"] == pytest.approx(100.0)

    def test_ffw_relative_performance(self, zero_fault_results):
        rows = table1(zero_fault_results)
        ffw = rows[2]
        assert ffw["perf_q2"] == pytest.approx(129.0)

    def test_settling_quartiles(self, zero_fault_results):
        zero_fault_results["none"] = [
            result("none", settling=t) for t in (10, 20, 90)
        ]
        rows = table1(zero_fault_results)
        assert rows[0]["settling_q2"] == 20

    def test_missing_model_skipped(self, zero_fault_results):
        del zero_fault_results["network_interaction"]
        rows = table1(zero_fault_results)
        assert len(rows) == 2

    def test_format_renders_all_rows(self, zero_fault_results):
        text = format_table(table1(zero_fault_results), "table1")
        assert "No Intelligence" in text
        assert "Foraging For Work" in text
        assert "100" in text


class TestTable2:
    @pytest.fixture
    def fault_results(self):
        data = {}
        for model, base in (("none", 10.0), ("foraging_for_work", 13.0)):
            for faults, retention in ((0, 1.0), (8, 0.9), (32, 0.6)):
                data[(model, faults)] = [
                    result(
                        model,
                        settled=base,
                        faults=faults,
                        recovered=base * retention + d,
                        recovery=30.0 + faults,
                    )
                    for d in (-0.5, 0.0, 0.5)
                ]
        return data

    def test_rows_grouped_by_model_then_faults(self, fault_results):
        rows = table2(fault_results)
        assert [(r["model"], r["faults"]) for r in rows] == [
            ("none", 0), ("none", 8), ("none", 32),
            ("foraging_for_work", 0),
            ("foraging_for_work", 8),
            ("foraging_for_work", 32),
        ]

    def test_zero_fault_rows_have_no_recovery_time(self, fault_results):
        rows = table2(fault_results)
        assert rows[0]["recovery_q1"] is None

    def test_normalisation_to_baseline_zero_fault(self, fault_results):
        rows = table2(fault_results)
        by_key = {(r["model"], r["faults"]): r for r in rows}
        assert by_key[("none", 0)]["perf_q2"] == pytest.approx(100.0)
        assert by_key[("foraging_for_work", 0)]["perf_q2"] == pytest.approx(
            130.0
        )
        assert by_key[("none", 32)]["perf_q2"] == pytest.approx(60.0)

    def test_recovery_quartiles_present_for_faults(self, fault_results):
        rows = table2(fault_results)
        by_key = {(r["model"], r["faults"]): r for r in rows}
        assert by_key[("none", 8)]["recovery_q2"] == 38.0

    def test_format_renders(self, fault_results):
        text = format_table(table2(fault_results), "table2")
        assert "Faults" in text
        assert text.count("No Intelligence") == 3


def test_format_unknown_kind_rejected():
    with pytest.raises(ValueError):
        format_table([], "table9")
