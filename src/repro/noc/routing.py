"""Routing policies and the task-provider directory.

Two layers:

* :class:`ProviderDirectory` answers "which nodes currently perform task T?"
  and resolves the *nearest* provider by minimised Manhattan distance — the
  paper's heuristic fixed-routing baseline.  In hardware this information is
  distributed through the RCAP; here it is a shared directory updated on
  every task switch and node failure, which is behaviourally equivalent and
  keeps the simulation fast.

* :class:`XYRouting` / :class:`RoutingPolicy` answer "given a packet at
  router R heading for node D, which output port next?".  XY (dimension
  ordered) routing is used on the healthy mesh; when faults make the XY path
  unusable the policy falls back to a breadth-first-search next-hop table
  over the surviving routers, recomputed lazily whenever the set of failed
  routers changes (modelling the paper's "starts to route around the failed
  nodes").
"""

from collections import deque

from repro.noc.topology import (
    DIRECTIONS,
    EAST,
    NORTH,
    SOUTH,
    WEST,
    normalize_edge,
    opposite,
)


class ProviderDirectory:
    """Tracks which nodes currently perform each task.

    The directory is the simulation-level stand-in for the emergent
    task-location knowledge that packets exploit; lookups are deterministic
    (ties broken by node id) so runs are reproducible.
    """

    def __init__(self, topology):
        self.topology = topology
        self._providers = {}
        self._node_task = {}
        self._failed = set()
        self.version = 0
        # Distance ranking cache: provider lookup is the hottest query in
        # the simulation, so coordinates are precomputed and sorted
        # candidate lists are cached per (origin, task) until the directory
        # changes (version bump).
        self._coords = [topology.coords(n) for n in topology.node_ids()]
        self._rank_cache = {}
        self._rank_cache_version = 0
        self._providers_cache = {}
        self._providers_cache_version = 0

    # -- updates -------------------------------------------------------------

    def set_task(self, node_id, task_id):
        """Record that ``node_id`` now performs ``task_id`` (or None)."""
        old = self._node_task.get(node_id)
        if old == task_id:
            return
        if old is not None:
            members = self._providers.get(old)
            if members is not None:
                members.discard(node_id)
                if not members:
                    del self._providers[old]
        self._node_task[node_id] = task_id
        if task_id is not None:
            self._providers.setdefault(task_id, set()).add(node_id)
        self.version += 1

    def mark_failed(self, node_id):
        """Remove a failed node from all provider sets.

        The version bump rides on :meth:`set_task`: provider caches only
        depend on the provider sets, and those change exactly when the
        node had a live task to clear.
        """
        if node_id in self._failed:
            return
        self._failed.add(node_id)
        self.set_task(node_id, None)

    def mark_recovered(self, node_id):
        """Readmit a recovered node (it rejoins task-less).

        No version bump is needed: the node held no task while failed,
        so the provider sets — all the caches depend on — are unchanged
        until something assigns it work again.
        """
        self._failed.discard(node_id)

    # -- queries -------------------------------------------------------------

    def task_of(self, node_id):
        """Current task of a node, or ``None``."""
        return self._node_task.get(node_id)

    def providers(self, task_id):
        """Sorted list of healthy nodes performing ``task_id``.

        The sorted list is cached per task until the directory changes
        (version bump); callers must treat it as read-only.
        """
        if self._providers_cache_version != self.version:
            self._providers_cache.clear()
            self._providers_cache_version = self.version
        cached = self._providers_cache.get(task_id)
        if cached is None:
            cached = sorted(self._providers.get(task_id, ()))
            self._providers_cache[task_id] = cached
        return cached

    def provider_count(self, task_id):
        """Number of healthy providers of ``task_id``."""
        return len(self._providers.get(task_id, ()))

    def task_census(self):
        """Mapping task id -> number of healthy providers."""
        return {task: len(nodes) for task, nodes in self._providers.items()
                if nodes}

    def is_failed(self, node_id):
        """True when the node has been marked failed."""
        return node_id in self._failed

    def nearest_provider(self, from_node, task_id, exclude=()):
        """Nearest healthy provider of ``task_id`` by Manhattan distance.

        Ties break toward the lowest node id (deterministic).  ``exclude``
        removes candidates (e.g. the asking node itself when it wants help
        from elsewhere, or providers that already bounced a packet).
        Returns ``None`` when no provider exists — the caller decides
        whether to drop or hold the packet.
        """
        ranked = self.ranked_providers(from_node, task_id)
        if not exclude:
            return ranked[0] if ranked else None
        excluded = (
            exclude if isinstance(exclude, (set, frozenset)) else set(exclude)
        )
        for node in ranked:
            if node not in excluded:
                return node
        return None

    def ranked_providers(self, from_node, task_id):
        """Healthy providers of ``task_id`` sorted by (distance, id)."""
        if self._rank_cache_version != self.version:
            self._rank_cache.clear()
            self._rank_cache_version = self.version
        key = (from_node, task_id)
        ranked = self._rank_cache.get(key)
        if ranked is None:
            fx, fy = self._coords[from_node]
            coords = self._coords
            ranked = sorted(
                self._providers.get(task_id, ()),
                key=lambda n: (
                    abs(coords[n][0] - fx) + abs(coords[n][1] - fy),
                    n,
                ),
            )
            self._rank_cache[key] = ranked
        return ranked


class XYRouting:
    """Dimension-ordered (X then Y) minimal routing on a healthy mesh."""

    def __init__(self, topology):
        self.topology = topology

    def next_direction(self, current, dest):
        """Mesh direction of the next hop, or ``None`` when arrived."""
        if current == dest:
            return None
        cx, cy = self.topology.coords(current)
        dx, dy = self.topology.coords(dest)
        if cx < dx:
            return EAST
        if cx > dx:
            return WEST
        if cy < dy:
            return SOUTH
        return NORTH


class RoutingPolicy:
    """Fault-aware next-hop selection.

    Healthy mesh: XY routing (the Centurion default).  With failed routers
    or failed links, a BFS next-hop table over the surviving topology is
    computed per destination on demand and cached; the cache is
    invalidated whenever either failure set changes (including shrinking —
    recovery restores XY routes the moment the mesh is whole again).
    """

    def __init__(self, topology):
        self.topology = topology
        self.xy = XYRouting(topology)
        self._failed = frozenset()
        #: Failed mesh edges as normalised ``(lo, hi)`` node pairs (an
        #: edge failure takes out both directions of the channel).
        self._failed_links = frozenset()
        self._table_cache = {}
        # Next-hop direction cache: given a fixed failure set the chosen
        # direction is a pure function of (current, dest), and
        # next_direction is called once per hop on the hottest path.  On
        # the healthy mesh this memoises the XY arithmetic; around faults
        # it also absorbs the per-hop XY-path-clear walk and BFS table
        # lookups (the dominant cost of post-fault Table II sweeps).
        # Dropped whenever the failure set changes.
        self._direction_cache = {}

    # -- fault management ------------------------------------------------------

    def set_failed(self, failed_nodes):
        """Replace the set of failed routers; invalidates cached tables."""
        failed = frozenset(failed_nodes)
        if failed != self._failed:
            self._failed = failed
            self._table_cache.clear()
            self._direction_cache.clear()

    def set_failed_links(self, failed_edges):
        """Replace the set of failed mesh edges; invalidates cached tables.

        Edges are undirected ``(a, b)`` node pairs (normalised to
        ``(min, max)`` internally).  Only *failed* edges leave the
        routing graph: degraded edges (``Network.degrade_link``) stay
        fully routable — their slower timing is a wormhole-occupancy
        matter that the adaptive port choice feels as congestion, not a
        topology change — and corrupting edges likewise keep carrying
        (and damaging) traffic.
        """
        edges = frozenset(
            normalize_edge(a, b) for a, b in failed_edges
        )
        if edges != self._failed_links:
            self._failed_links = edges
            self._table_cache.clear()
            self._direction_cache.clear()

    def _edge_ok(self, a, b):
        """True when the mesh edge ``a — b`` is usable."""
        return normalize_edge(a, b) not in self._failed_links

    @property
    def failed(self):
        return self._failed

    @property
    def failed_links(self):
        return self._failed_links

    # -- next-hop query -----------------------------------------------------------

    def next_direction(self, current, dest):
        """Direction of the next hop from ``current`` toward ``dest``.

        Returns ``None`` if ``current == dest`` and raises
        :class:`UnroutableError` when ``dest`` is unreachable (failed or
        disconnected).
        """
        if current == dest:
            return None
        key = (current, dest)
        direction = self._direction_cache.get(key)
        if direction is not None:
            return direction
        if dest in self._failed:
            raise UnroutableError(current, dest, "destination failed")
        if not self._failed and not self._failed_links:
            direction = self.xy.next_direction(current, dest)
        else:
            direction = self._detour_direction(current, dest)
        self._direction_cache[key] = direction
        return direction

    def _detour_direction(self, current, dest):
        """Next hop with failed routers/links present (cache-miss path).

        Try XY first: it is still correct if every hop on the XY path is
        alive, otherwise fall back to the BFS next-hop table over the
        surviving topology.
        """
        direction = self.xy.next_direction(current, dest)
        neighbor = self.topology.neighbor(current, direction)
        if (
            neighbor is not None
            and neighbor not in self._failed
            and self._edge_ok(current, neighbor)
        ):
            # The XY path may still hit a dead router or link later; to
            # guarantee delivery we only trust XY when no failures block
            # the full XY path, otherwise use the table.
            if self._xy_path_clear(current, dest):
                return direction
        return self._table_direction(current, dest)

    def minimal_directions(self, current, dest):
        """All mesh directions that shrink the distance to ``dest``.

        Used by adaptive output-port selection (paper §V: letting the
        embedded intelligence "make decisions on the destination output
        port of incoming packets").  On a healthy mesh this is the X
        and/or Y productive move; directions into failed routers are
        filtered out.  Order is deterministic: X move first, then Y.
        """
        if current == dest:
            return []
        cx, cy = self.topology.coords(current)
        dx, dy = self.topology.coords(dest)
        candidates = []
        if cx < dx:
            candidates.append(EAST)
        elif cx > dx:
            candidates.append(WEST)
        if cy < dy:
            candidates.append(SOUTH)
        elif cy > dy:
            candidates.append(NORTH)
        healthy = []
        for direction in candidates:
            neighbor = self.topology.neighbor(current, direction)
            if (
                neighbor is not None
                and neighbor not in self._failed
                and self._edge_ok(current, neighbor)
            ):
                healthy.append(direction)
        return healthy

    def path(self, src, dest):
        """Full hop-by-hop node path ``src .. dest`` (for tests/analysis)."""
        path = [src]
        current = src
        limit = self.topology.num_nodes + 1
        while current != dest:
            direction = self.next_direction(current, dest)
            current = self.topology.neighbor(current, direction)
            if current is None:
                raise UnroutableError(src, dest, "walked off the mesh")
            path.append(current)
            if len(path) > limit:
                raise UnroutableError(src, dest, "routing loop")
        return path

    # -- internals -----------------------------------------------------------------

    def _xy_path_clear(self, current, dest):
        node = current
        while node != dest:
            direction = self.xy.next_direction(node, dest)
            step = self.topology.neighbor(node, direction)
            if (
                step is None
                or step in self._failed
                or not self._edge_ok(node, step)
            ):
                return False
            node = step
        return True

    def _table_direction(self, current, dest):
        table = self._table_cache.get(dest)
        if table is None:
            table = self._build_table(dest)
            self._table_cache[dest] = table
        direction = table.get(current)
        if direction is None:
            raise UnroutableError(current, dest, "no surviving path")
        return direction

    def _build_table(self, dest):
        """BFS from ``dest`` outward over healthy routers and links.

        Produces, for every reachable router, the direction of its first hop
        toward ``dest``.  Neighbour expansion order is the fixed DIRECTIONS
        tuple, so equal-length routes are chosen deterministically.
        """
        table = {}
        visited = {dest}
        frontier = deque([dest])
        while frontier:
            node = frontier.popleft()
            for direction in DIRECTIONS:
                neighbor = self.topology.neighbor(node, direction)
                if (
                    neighbor is None
                    or neighbor in visited
                    or neighbor in self._failed
                    or not self._edge_ok(node, neighbor)
                ):
                    continue
                # The neighbour reaches dest by stepping back toward node.
                table[neighbor] = opposite(direction)
                visited.add(neighbor)
                frontier.append(neighbor)
        return table


class UnroutableError(RuntimeError):
    """No surviving route between two nodes."""

    def __init__(self, src, dest, reason):
        super().__init__(
            "cannot route {} -> {}: {}".format(src, dest, reason)
        )
        self.src = src
        self.dest = dest
        self.reason = reason
