"""Point-to-point links with wormhole channel occupancy.

A link is one direction of a full-duplex channel between two adjacent
routers (the Centurion router's input and output interfaces are independent,
so each mesh edge is two ``Link`` objects).  Wormhole switching is modelled
at packet granularity: a packet of ``n`` flits seizes the link for
``n * flit_time`` µs and later packets queue behind it, which captures the
head-of-line blocking that the intelligence models feel as congestion
without simulating individual flits.

Hot-path contract: ``busy_until`` is a public slot read directly by the
express hop engine (:mod:`repro.noc.network`) and claims are made through
:meth:`Link.transfer` parameterised by the *departure* time, never by the
caller's wall position — this is what lets an inlined hop claim the channel
with exactly the timing a scheduled hop event would have produced.
"""


class Link:
    """One direction of a mesh channel.

    Parameters
    ----------
    src, dst:
        Router/node ids of the endpoints.
    flit_time:
        µs to transfer a single flit.
    wire_latency:
        Fixed propagation µs added after the last flit leaves.
    """

    __slots__ = (
        "src",
        "dst",
        "flit_time",
        "nominal_flit_time",
        "wire_latency",
        "busy_until",
        "packets_carried",
        "flits_carried",
        "total_wait",
        "enabled",
        "corrupting",
    )

    def __init__(self, src, dst, flit_time=1, wire_latency=1):
        if flit_time < 0 or wire_latency < 0:
            raise ValueError("link timings must be non-negative")
        self.src = src
        self.dst = dst
        self.flit_time = flit_time
        #: Healthy timing, restored when a degradation recovers.
        self.nominal_flit_time = flit_time
        self.wire_latency = wire_latency
        self.busy_until = 0
        self.packets_carried = 0
        self.flits_carried = 0
        self.total_wait = 0
        self.enabled = True
        #: While set, packets claiming the channel are flagged corrupted.
        self.corrupting = False

    def queue_delay(self, now):
        """How long a packet arriving now would wait for the channel."""
        return max(0, self.busy_until - now)

    def transfer(self, packet, now):
        """Claim the channel for ``packet`` starting at ``now``.

        Returns the absolute time at which the packet is available at the
        downstream router.  Updates occupancy and statistics.
        """
        if not self.enabled:
            raise RuntimeError(
                "transfer on disabled link {}->{}".format(self.src, self.dst)
            )
        start = max(now, self.busy_until)
        occupancy = packet.size_flits * self.flit_time
        self.busy_until = start + occupancy
        self.packets_carried += 1
        self.flits_carried += packet.size_flits
        self.total_wait += start - now
        return start + occupancy + self.wire_latency

    def fail(self):
        """Disable the channel (fault injection); transfers now raise."""
        self.enabled = False

    def recover(self):
        """Re-enable a failed channel.

        Occupancy is kept: ``busy_until`` timestamps in the past are
        harmless (``transfer`` clamps to ``now``) and a future claim from
        before the outage still models a packet owning the wire.
        """
        self.enabled = True

    def degrade(self, factor):
        """Stretch the channel's flit time by ``factor`` (partial fault).

        The degraded timing is quantised to the integer microsecond
        clock (floored at 1 µs) so hop arrival times stay integers and
        the express hop engine's inline clock advance remains
        bit-identical to event scheduling.  Claims already holding the
        wire are unaffected; the slower timing applies from the next
        :meth:`transfer` on.  The factor is always applied to the
        *nominal* timing — calls do not stack; the link is a dumb
        actuator and the
        :class:`~repro.platform.faults.FaultInjector` arbitrates
        overlapping degrade claims (worst active factor governs).
        """
        if not factor > 1:
            raise ValueError("degrade factor must be > 1")
        self.flit_time = max(1, int(round(self.nominal_flit_time * factor)))

    def restore_timing(self):
        """Undo a degradation: flit time returns to the nominal value."""
        self.flit_time = self.nominal_flit_time

    @property
    def degraded(self):
        """True while the channel runs slower than its nominal timing."""
        return self.flit_time != self.nominal_flit_time

    def utilisation(self, now):
        """Fraction of time spent transferring, measured up to ``now``."""
        if now <= 0:
            return 0.0
        busy = min(self.busy_until, now) if self.flits_carried else 0
        # Approximation: flits_carried * flit_time is the exact busy time.
        return min(1.0, self.flits_carried * self.flit_time / now)

    def __repr__(self):
        return "Link({}->{}, busy_until={}, carried={})".format(
            self.src, self.dst, self.busy_until, self.packets_carried
        )
