"""CSV/JSON export of metric series and batch results.

Everything the experiments produce is plain Python data; these helpers
flatten it into the two formats external plotting pipelines consume.  CSV
writing uses the standard library ``csv`` module; JSON export is plain
``json`` with deterministic key ordering, so exported artefacts diff
cleanly across runs.
"""

import csv
import json


def series_to_csv(series, path):
    """Write a :class:`~repro.app.metrics.MetricsSeries` to CSV.

    One row per sampling window; census columns are expanded to
    ``census_task_<id>``.  Returns the number of data rows written.
    """
    census_columns = [
        "census_task_{}".format(task) for task in series.task_ids
    ]
    header = list(series.COLUMNS) + census_columns
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for i in range(len(series)):
            row = [getattr(series, column)[i] for column in series.COLUMNS]
            row += [series.census[task][i] for task in series.task_ids]
            writer.writerow(row)
    return len(series)


def results_to_csv(results, path):
    """Write a list of :class:`RunResult` summaries to CSV."""
    if not results:
        raise ValueError("no results to export")
    rows = [result.as_row() for result in results]
    header = list(rows[0])
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=header)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def results_to_json(results, path, include_series=False):
    """Write results (optionally with full series) to a JSON file."""
    payload = []
    for result in results:
        entry = result.as_row()
        entry["app_stats"] = result.app_stats
        entry["noc_stats"] = result.noc_stats
        if include_series and result.series is not None:
            entry["series"] = result.series.as_dict()
        payload.append(entry)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
    return len(payload)


def load_results_json(path):
    """Load a ``results_to_json`` file back as a list of dicts."""
    with open(path) as handle:
        return json.load(handle)
