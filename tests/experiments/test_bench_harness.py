"""Tests for the benchmark harness helpers."""

from benchmarks.harness import (
    MODELS,
    TABLE2_FAULTS,
    check_campaign_smoke,
    check_dedup_smoke,
    gather_zero_fault,
    run_campaign_smoke,
    run_dedup_smoke,
    runs_per_cell,
    seed_base,
)
from repro.platform.config import PlatformConfig


def test_models_match_paper_order():
    assert MODELS == ("none", "network_interaction", "foraging_for_work")


def test_table2_fault_counts_match_paper():
    assert TABLE2_FAULTS == (0, 2, 4, 8, 16, 32)


def test_runs_per_cell_env(monkeypatch):
    monkeypatch.delenv("REPRO_RUNS", raising=False)
    assert runs_per_cell() == 15
    monkeypatch.setenv("REPRO_RUNS", "100")
    assert runs_per_cell() == 100


def test_seed_base_env(monkeypatch):
    monkeypatch.delenv("REPRO_SEED_BASE", raising=False)
    assert seed_base() == 1000
    monkeypatch.setenv("REPRO_SEED_BASE", "7")
    assert seed_base() == 7


def test_gather_zero_fault_small(monkeypatch):
    monkeypatch.setenv("REPRO_RUNS", "2")
    results = gather_zero_fault(PlatformConfig.small())
    assert set(results) == set(MODELS)
    for model, runs in results.items():
        assert len(runs) == 2
        assert all(r.faults == 0 for r in runs)


def test_campaign_smoke_resumed_pass_hits_store():
    smoke = run_campaign_smoke()
    assert smoke["cells"] == 4
    assert smoke["cold_executed"] == 4
    assert smoke["warm_executed"] == 0
    assert smoke["warm_cached"] == 4
    assert smoke["identical"]
    assert check_campaign_smoke(smoke) is None


def test_check_campaign_smoke_flags_reexecution():
    bad = {"cells": 4, "warm_executed": 2, "identical": True}
    assert "re-executed" in check_campaign_smoke(bad)
    drifted = {"cells": 4, "warm_executed": 0, "identical": False}
    assert "differ" in check_campaign_smoke(drifted)


def test_dedup_smoke_shared_cells_execute_nothing():
    smoke = run_dedup_smoke()
    assert smoke["shared_cells"] == 4
    assert smoke["deduped"] == 4      # all resolved via the root index
    assert smoke["executed"] == 4     # only the second campaign's faulted cells
    assert smoke["identical"]
    assert check_dedup_smoke(smoke) is None


def test_check_dedup_smoke_flags_failures():
    partial = {"shared_cells": 4, "faulted_cells": 4, "deduped": 2,
               "executed": 4, "identical": True}
    assert "deduped 2 of 4" in check_dedup_smoke(partial)
    reran = {"shared_cells": 4, "faulted_cells": 4, "deduped": 4,
             "executed": 6, "identical": True}
    assert "executed 6" in check_dedup_smoke(reran)
    drifted = {"shared_cells": 4, "faulted_cells": 4, "deduped": 4,
               "executed": 4, "identical": False}
    assert "differ" in check_dedup_smoke(drifted)
