"""Tests for the assembled Centurion platform."""

from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


def test_default_build_is_128_nodes():
    platform = CenturionPlatform(model_name="none", seed=1)
    assert len(platform.pes) == 128
    assert len(platform.aims) == 128
    assert platform.network.topology.num_nodes == 128


def test_every_node_has_initial_task():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="none", seed=1
    )
    assert all(pe.task_id in (1, 2, 3) for pe in platform.pes.values())
    census = platform.task_census()
    assert sum(census.values()) == 16


def test_initial_mapping_matches_directory():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="none", seed=1
    )
    for node, task in platform.initial_mapping.items():
        assert platform.network.directory.task_of(node) == task


def test_model_aliases_accepted():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="ffw", seed=1
    )
    assert platform.model_name == "foraging_for_work"


def test_each_node_gets_its_own_model_instance():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="ni", seed=1
    )
    models = {id(aim.model) for aim in platform.aims.values()}
    assert len(models) == 16


def test_model_params_override():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="ni", seed=1,
        model_params={"threshold": 77},
    )
    assert platform.aims[0].model.threshold == 77


def test_run_produces_series():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="none", seed=1
    )
    series = platform.run(50_000)
    assert len(series) == 5
    assert platform.sim.now == 50_000


def test_same_seed_reproduces_exactly():
    def run(seed):
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name="ffw", seed=seed
        )
        series = platform.run(100_000)
        return (
            list(series.active_nodes),
            list(series.joins),
            platform.workload.stats()["generated"],
        )

    assert run(17) == run(17)


def test_different_seeds_differ():
    def run(seed):
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name="none", seed=seed
        )
        platform.run(100_000)
        return platform.initial_mapping

    assert run(1) != run(2)


def test_inject_faults_uses_config_time():
    config = PlatformConfig.small(fault_time_us=60_000)
    platform = CenturionPlatform(config, model_name="none", seed=1)
    platform.inject_faults(2)
    platform.sim.run_until(59_999)
    assert not platform.faults.victims
    platform.sim.run_until(60_000)
    assert len(platform.faults.victims) == 2


def test_balanced_mapping_option():
    config = PlatformConfig.small(initial_mapping="balanced")
    platform = CenturionPlatform(config, model_name="none", seed=1)
    census = platform.task_census()
    assert census[2] == 9 or census[2] == 10  # 3/5 of 16 = 9.6


def test_clustered_mapping_option():
    config = PlatformConfig.small(initial_mapping="clustered")
    a = CenturionPlatform(config, model_name="none", seed=1)
    b = CenturionPlatform(config, model_name="none", seed=2)
    # Clustered placement ignores the seed: deterministic floorplan.
    assert a.initial_mapping == b.initial_mapping


def test_workload_progresses_on_small_grid():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="none", seed=1
    )
    platform.run(200_000)
    stats = platform.workload.stats()
    assert stats["generated"] > 0
    assert stats["joins"] > 0


def test_trace_records_switches_for_ffw_full_grid():
    # Full grid short run: FFW should at least arm; switches are traced
    # when they happen.  This asserts the trace category wiring, not the
    # switch count.
    platform = CenturionPlatform(model_name="ffw", seed=2)
    platform.run(150_000)
    switch_records = platform.trace.by_category("task_switch")
    assert len(switch_records) == platform.total_task_switches()
