"""Tests for the Foraging for Work model."""

from repro.core.models.foraging_for_work import ForagingForWorkModel
from repro.noc.packet import Packet


def make_model(stub_aim, timeout_us=20_000, **kwargs):
    model = ForagingForWorkModel(
        task_ids=(1, 2, 3), timeout_us=timeout_us, **kwargs
    )
    model.bind(stub_aim)
    return model


def late_packet(task, created_at=0, deadline=0):
    packet = Packet(0, dest_task=task, created_at=created_at,
                    deadline=deadline)
    packet.hops = 1
    return packet


def test_late_packet_arms_timer(stub_aim):
    model = make_model(stub_aim)
    model.on_packet_routed(stub_aim, late_packet(2), to_internal=False,
                           injected=False)
    assert model.armed
    assert model.candidate_task == 2


def test_timely_packet_does_not_arm(sim, stub_aim):
    model = make_model(stub_aim, arm_without_deadline=False)
    packet = Packet(0, dest_task=2, created_at=0, deadline=10**9)
    packet.hops = 1
    model.on_packet_routed(stub_aim, packet, to_internal=False,
                           injected=False)
    assert not model.armed


def test_deadline_margin_arms_early(sim, stub_aim):
    model = make_model(stub_aim, deadline_margin_us=500,
                       arm_without_deadline=False)
    packet = Packet(0, dest_task=2, created_at=0, deadline=400)
    packet.hops = 1
    # now=0, deadline-margin = -100 <= 0: "comes too close".
    model.on_packet_routed(stub_aim, packet, to_internal=False,
                           injected=False)
    assert model.armed


def test_internal_sink_disarms(stub_aim):
    model = make_model(stub_aim)
    model.on_packet_routed(stub_aim, late_packet(2), to_internal=False,
                           injected=False)
    model.on_internal_sink(stub_aim, Packet(0, dest_task=1))
    assert not model.armed


def test_timeout_expiry_switches_to_candidate(sim, stub_aim):
    model = make_model(stub_aim, timeout_us=20_000)
    model.on_packet_routed(stub_aim, late_packet(2), to_internal=False,
                           injected=False)
    model.on_tick(stub_aim, now=19_999)
    assert stub_aim.switches == []
    model.on_tick(stub_aim, now=20_000)
    assert stub_aim.switches == [(0, 2)]
    assert not model.armed  # disarmed after the switch


def test_sink_just_before_expiry_prevents_switch(stub_aim):
    model = make_model(stub_aim)
    model.on_packet_routed(stub_aim, late_packet(2), to_internal=False,
                           injected=False)
    model.on_internal_sink(stub_aim, Packet(0, dest_task=1))
    model.on_tick(stub_aim, now=50_000)
    assert stub_aim.switches == []


def test_falls_back_to_router_recent_queue(stub_aim):
    model = make_model(stub_aim)
    model.armed_at = 0
    model.candidate_task = None
    stub_aim.router.recent_tasks = [1, 3]
    model.on_tick(stub_aim, now=30_000)
    assert stub_aim.switches == [(0, 3)]  # newest queue entry


def test_no_target_no_switch(stub_aim):
    model = make_model(stub_aim)
    model.armed_at = 0
    stub_aim.router.recent_tasks = []
    model.on_tick(stub_aim, now=30_000)
    assert stub_aim.switches == []
    assert not model.armed  # still disarms; fresh evidence must re-arm


def test_unknown_candidate_task_ignored(stub_aim):
    model = make_model(stub_aim)
    model.armed_at = 0
    model.candidate_task = 99  # not in task_ids
    stub_aim.router.recent_tasks = [2]
    model.on_tick(stub_aim, now=30_000)
    assert stub_aim.switches == [(0, 2)]


def test_no_switch_when_already_on_target(stub_aim):
    stub_aim._task = 2
    model = make_model(stub_aim)
    model.on_packet_routed(stub_aim, late_packet(2), to_internal=False,
                           injected=False)
    model.on_tick(stub_aim, now=30_000)
    assert stub_aim.switches == []
    assert model.switches_fired == 1


def test_injected_and_internal_events_do_not_arm(stub_aim):
    model = make_model(stub_aim)
    model.on_packet_routed(stub_aim, late_packet(2), to_internal=True,
                           injected=False)
    model.on_packet_routed(stub_aim, late_packet(2), to_internal=False,
                           injected=True)
    assert not model.armed


def test_candidate_tracks_most_recent_late_task(stub_aim):
    model = make_model(stub_aim)
    model.on_packet_routed(stub_aim, late_packet(2), to_internal=False,
                           injected=False)
    model.on_packet_routed(stub_aim, late_packet(3), to_internal=False,
                           injected=False)
    assert model.candidate_task == 3
    # Arm time is the FIRST evidence, not refreshed by later packets.
    assert model.armed_at == 0


def test_paper_default_timeout():
    model = ForagingForWorkModel(task_ids=(1,))
    assert model.timeout_us == 20_000


def test_model_metadata():
    model = ForagingForWorkModel(task_ids=(1,))
    assert model.name == "foraging_for_work"
    assert model.model_number == 5
