"""Task graphs.

A :class:`TaskGraph` is a directed graph of :class:`Task` nodes with
per-task timing attributes.  :func:`fork_join_graph` builds the paper's
Figure 3 graph: a source task forking into ``fork_width`` parallel branches
of a middle task that join at a sink task, with the sink's join result fed
back to the source (closing the loop keeps every task id visible in NoC
traffic, which is what lets the intelligence models sense demand for all
three tasks).

Default timing calibration (at the nominal 100 MHz node frequency):

* task 1 generates one packet every 4 ms (the paper's stated rate) and
  sinks join results cheaply;
* task 2's service time is chosen so that the 1:3:1 provider ratio is the
  balance point: one source's 0.25 packets/ms require
  ``0.25 × service₂ ≈ 3`` task-2 providers;
* task 3 similarly needs ≈ 1 provider per source.

With the 128-node Centurion census (≈ 25.6 : 76.8 : 25.6) this puts the
task-2 stage right at the edge of saturation, which is the regime in which
the paper's adaptive models have something to optimise.
"""


class Task:
    """One vertex of a task graph.

    Parameters
    ----------
    task_id:
        Integer id carried in packet headers.
    name:
        Human-readable label.
    service_us:
        Nominal per-packet execution time at 100 MHz.
    generation_period_us:
        If set, nodes assigned this task spontaneously generate one packet
        per period (source task).
    downstream:
        Task id the task's per-packet output is sent to, or ``None``.
    emits_on_join:
        When True the task is a join point: its downstream packet is
        emitted once per *joined instance*, not once per execution.
    deadline_us:
        Relative deadline stamped on packets this task emits (used by the
        Foraging-for-Work "time since sent" monitor).
    weight:
        Relative share of nodes in ratio-based mappings (the 1:3:1).
    """

    def __init__(self, task_id, name, service_us, generation_period_us=None,
                 downstream=None, emits_on_join=False, deadline_us=16_000,
                 weight=1):
        if service_us < 1:
            raise ValueError("service_us must be >= 1")
        if generation_period_us is not None and generation_period_us < 1:
            raise ValueError("generation period must be >= 1")
        if weight < 0:
            raise ValueError("weight must be >= 0")
        self.task_id = task_id
        self.name = name
        self.service_us = service_us
        self.generation_period_us = generation_period_us
        self.downstream = downstream
        self.emits_on_join = emits_on_join
        self.deadline_us = deadline_us
        self.weight = weight

    @property
    def is_source(self):
        return self.generation_period_us is not None

    def __repr__(self):
        return "Task(id={}, {!r}, service={}us{})".format(
            self.task_id,
            self.name,
            self.service_us,
            ", source" if self.is_source else "",
        )


class TaskGraph:
    """A set of tasks with downstream wiring.

    The graph validates its wiring on construction: every downstream
    reference must name a task in the graph.
    """

    def __init__(self, tasks, fork_width=1):
        if not tasks:
            raise ValueError("task graph needs at least one task")
        if fork_width < 1:
            raise ValueError("fork_width must be >= 1")
        self.tasks = {}
        for task in tasks:
            if task.task_id in self.tasks:
                raise ValueError(
                    "duplicate task id {}".format(task.task_id)
                )
            self.tasks[task.task_id] = task
        for task in tasks:
            if task.downstream is not None and task.downstream not in self.tasks:
                raise ValueError(
                    "task {} points at unknown downstream {}".format(
                        task.task_id, task.downstream
                    )
                )
        self.fork_width = fork_width

    def task(self, task_id):
        """The :class:`Task` with the given id (KeyError if absent)."""
        return self.tasks[task_id]

    def task_ids(self):
        """Sorted list of task ids."""
        return sorted(self.tasks)

    def sources(self):
        """Tasks that spontaneously generate packets."""
        return [t for t in self.tasks.values() if t.is_source]

    def weights(self):
        """Mapping task id -> ratio weight (the 1:3:1)."""
        return {tid: t.weight for tid, t in self.tasks.items()}

    def total_weight(self):
        """Sum of all ratio weights (5 for the 1:3:1 graph)."""
        return sum(t.weight for t in self.tasks.values())

    def __repr__(self):
        return "TaskGraph({} tasks, fork_width={})".format(
            len(self.tasks), self.fork_width
        )


#: Canonical task ids of the Figure 3 graph.
TASK_SOURCE = 1
TASK_BRANCH = 2
TASK_SINK = 3


def fork_join_graph(fork_width=3, generation_period_us=4_000,
                    source_service_us=500, branch_service_us=12_500,
                    sink_service_us=3_000, deadline_us=16_000):
    """Build the Figure 3 fork-join graph with the paper's 1:3:1 ratio.

    Task 1 (weight 1) sources packets every 4 ms and sinks the fed-back
    join results; task 2 (weight ``fork_width``) processes fork branches;
    task 3 (weight 1) joins the branches and feeds the result back.
    """
    return TaskGraph(
        [
            Task(
                TASK_SOURCE,
                "task1-source",
                service_us=source_service_us,
                generation_period_us=generation_period_us,
                downstream=TASK_BRANCH,
                deadline_us=deadline_us,
                weight=1,
            ),
            Task(
                TASK_BRANCH,
                "task2-branch",
                service_us=branch_service_us,
                downstream=TASK_SINK,
                deadline_us=deadline_us,
                weight=fork_width,
            ),
            Task(
                TASK_SINK,
                "task3-join",
                service_us=sink_service_us,
                downstream=TASK_SOURCE,
                emits_on_join=True,
                deadline_us=deadline_us,
                weight=1,
            ),
        ],
        fork_width=fork_width,
    )
