"""Tests for ASCII spatial maps."""

import pytest

from repro.analysis.heatmap import (
    activity_map,
    queue_map,
    render_grid,
    switch_map,
    task_map,
    temperature_map,
)
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


@pytest.fixture
def platform():
    return CenturionPlatform(PlatformConfig.small(), model_name="none",
                             seed=31)


class TestRenderGrid:
    def test_layout_rows_and_columns(self):
        topology = MeshTopology(3, 2)
        values = {n: n for n in topology.node_ids()}
        text = render_grid(topology, values)
        lines = text.split("\n")
        assert lines[0].split() == ["0", "1", "2"]
        assert lines[1].split() == ["3", "4", "5"]

    def test_missing_nodes_render_dot(self):
        topology = MeshTopology(2, 1)
        text = render_grid(topology, {0: 7})
        assert text.split("\n")[0].split() == ["7", "."]

    def test_title_and_legend(self):
        topology = MeshTopology(2, 1)
        text = render_grid(topology, {}, title="TOP", legend="BOTTOM")
        lines = text.split("\n")
        assert lines[0] == "TOP"
        assert lines[-1] == "BOTTOM"

    def test_custom_formatter(self):
        topology = MeshTopology(2, 1)
        text = render_grid(topology, {0: 3, 1: 4},
                           formatter=lambda v: "x" * v)
        assert "xxx" in text and "xxxx" in text

    def test_cells_aligned_to_widest(self):
        topology = MeshTopology(2, 1)
        text = render_grid(topology, {0: 5, 1: 123})
        row = text.split("\n")[0]
        assert row == "  5 123"


class TestPlatformMaps:
    def test_task_map_shows_tasks_and_failures(self, platform):
        platform.controller.inject_fault(5)
        text = task_map(platform)
        assert "X" in text
        assert "task topology" in text
        # 15 surviving nodes each show a task digit.
        digits = sum(text.count(d) for d in "123")
        assert digits >= 15  # legend also contains task ids

    def test_activity_map_runs(self, platform):
        platform.run(50_000)
        text = activity_map(platform)
        assert "execution activity" in text
        assert any(ch.isdigit() for ch in text)

    def test_temperature_map_near_ambient(self, platform):
        text = temperature_map(platform)
        assert "35" in text

    def test_switch_map_zero_for_baseline(self, platform):
        platform.run(50_000)
        text = switch_map(platform)
        grid_rows = text.split("\n")[1:]
        assert all(
            cell == "0" for row in grid_rows for cell in row.split()
        )

    def test_queue_map_reflects_queued_packets(self, platform):
        pe = platform.pes[5]
        pe.set_task(2, reason="init")
        for _ in range(3):
            pe.receive(Packet(0, dest_task=2))
        text = queue_map(platform)
        assert "2" in text  # 3 received, 1 executing, 2 queued
