"""Declarative, content-hashed workload specifications.

A :class:`WorkloadSpec` is the application analogue of
:class:`repro.platform.scenario.FaultScenario`: a JSON-loadable,
validated description of an arbitrary task graph — pipelines, trees,
all-to-all shuffles, DAGs with fan-in > 2 — with per-task service-time
distributions and time-varying arrival shapes. It follows the same
serialisation idiom:

* ``to_dict()`` is compact (defaults omitted — what you would write in
  a JSON file);
* ``canonical()`` is the hash form: v1 fields explicit, while fields in
  ``_CANONICAL_OPTIONAL`` join the payload only when changed from their
  defaults, so the content key of every previously minted spec is
  conserved when new fields land;
* ``key()`` is the SHA-256 of the canonical JSON — campaign cells embed
  it in their own payload only when a workload is present, which keeps
  every pre-workload cell key byte-identical.

Worked examples (each is a complete ``workload FILE`` / ``--workload``
payload; see also ``examples/workloads/*.json``):

A three-stage pipeline, constant arrivals::

    {"name": "pipeline3",
     "tasks": [
       {"id": 1, "service_us": 500, "arrival": {"period_us": 4000},
        "downstream": [{"task": 2}]},
       {"id": 2, "service_us": 2000, "downstream": [{"task": 3}]},
       {"id": 3, "service_us": 800}]}

A 2x2 all-to-all shuffle joined by a reducer (fan-in 4)::

    {"name": "shuffle2x2",
     "tasks": [
       {"id": 1, "service_us": 400, "arrival": {"period_us": 6000},
        "downstream": [{"task": 2}, {"task": 3}]},
       {"id": 2, "service_us": 1500,
        "downstream": [{"task": 4}, {"task": 5}]},
       {"id": 3, "service_us": 1500,
        "downstream": [{"task": 4}, {"task": 5}]},
       {"id": 4, "service_us": 900, "downstream": [{"task": 6}]},
       {"id": 5, "service_us": 900, "downstream": [{"task": 6}]},
       {"id": 6, "service_us": 600, "join": true}]}

Bursty arrivals (8 emitting ticks, 24 silent) into a fan-out of 4::

    {"name": "burst_fan4",
     "tasks": [
       {"id": 1, "service_us": 500,
        "arrival": {"period_us": 3000, "shape": "burst",
                    "burst_ticks": 8, "idle_ticks": 24},
        "downstream": [{"task": 2, "fanout": 4}]},
       {"id": 2, "service_us": 6000, "weight": 4,
        "downstream": [{"task": 3}]},
       {"id": 3, "service_us": 1200, "join": true}]}
"""

import dataclasses
import hashlib
import json
import os

from repro.app.workloads.arrivals import ArrivalSpec

SPEC_SCHEMA_VERSION = 1

SERVICE_DISTS = (None, "uniform", "exponential")


@dataclasses.dataclass(frozen=True)
class EdgeSpec:
    """One downstream edge: route ``fanout`` copies to ``task``."""

    task: int
    fanout: int = 1

    def __post_init__(self):
        if not isinstance(self.task, int):
            raise ValueError(f"edge task id must be an int, got {self.task!r}")
        if not isinstance(self.fanout, int) or self.fanout < 1:
            raise ValueError(
                f"edge fanout must be a positive integer, got {self.fanout!r}"
            )

    def to_dict(self):
        """Compact dict (``fanout`` only when > 1)."""
        data = {"task": self.task}
        if self.fanout != 1:
            data["fanout"] = self.fanout
        return data

    def canonical(self):
        """Hash form: both fields, always explicit."""
        return {"task": self.task, "fanout": self.fanout}

    @classmethod
    def from_dict(cls, data):
        """Build from a dict or a bare task-id integer."""
        if isinstance(data, int):
            return cls(task=data)
        if not isinstance(data, dict):
            raise ValueError(
                f"downstream edge must be a task id or a dict, got {data!r}"
            )
        data = dict(data)
        task = data.pop("task", None)
        if task is None:
            raise ValueError("downstream edge dict needs a task id")
        fanout = data.pop("fanout", 1)
        if data:
            raise ValueError(
                f"unknown edge field(s): {', '.join(sorted(data))}"
            )
        return cls(task=task, fanout=fanout)


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One task of a declarative workload graph.

    ``arrival`` marks the task as a source; ``join`` makes it wait for
    every branch of an instance before emitting downstream.
    ``service_dist``/``service_spread`` draw per-execution service times
    from the dedicated ``workload-service`` stream — leaving them unset
    keeps the task draw-free (fixed ``service_us``).
    """

    task_id: int
    service_us: int
    name: str = None
    weight: int = 1
    deadline_us: int = 16_000
    downstream: tuple = ()
    join: bool = False
    arrival: ArrivalSpec = None
    service_dist: str = None
    service_spread: float = None

    def __post_init__(self):
        if not isinstance(self.task_id, int):
            raise ValueError(f"task id must be an int, got {self.task_id!r}")
        if not isinstance(self.service_us, int) or self.service_us < 1:
            raise ValueError(
                f"task {self.task_id}: service_us must be a positive "
                f"integer, got {self.service_us!r}"
            )
        if not isinstance(self.weight, int) or self.weight < 1:
            raise ValueError(
                f"task {self.task_id}: weight must be a positive integer, "
                f"got {self.weight!r}"
            )
        if self.deadline_us is not None and (
            not isinstance(self.deadline_us, int) or self.deadline_us < 1
        ):
            raise ValueError(
                f"task {self.task_id}: deadline_us must be a positive "
                f"integer or null, got {self.deadline_us!r}"
            )
        edges = tuple(
            e if isinstance(e, EdgeSpec) else EdgeSpec.from_dict(e)
            for e in (self.downstream or ())
        )
        object.__setattr__(self, "downstream", edges)
        if self.arrival is not None and not isinstance(
            self.arrival, ArrivalSpec
        ):
            object.__setattr__(
                self, "arrival", ArrivalSpec.from_dict(self.arrival)
            )
        if not isinstance(self.join, bool):
            raise ValueError(
                f"task {self.task_id}: join must be a bool, got {self.join!r}"
            )
        if self.join and self.arrival is not None:
            raise ValueError(
                f"task {self.task_id}: a task cannot be both a join and "
                f"a source"
            )
        if self.service_dist not in SERVICE_DISTS:
            known = ", ".join(d for d in SERVICE_DISTS if d)
            raise ValueError(
                f"task {self.task_id}: unknown service_dist "
                f"{self.service_dist!r} (known: {known})"
            )
        if self.service_dist == "uniform":
            spread = self.service_spread
            if not isinstance(spread, (int, float)) or isinstance(
                spread, bool
            ) or not 0.0 < spread <= 1.0:
                raise ValueError(
                    f"task {self.task_id}: uniform service_dist needs "
                    f"service_spread in (0, 1], got {spread!r}"
                )
        elif self.service_spread is not None:
            raise ValueError(
                f"task {self.task_id}: service_spread only applies to the "
                f"uniform service_dist"
            )

    def to_dict(self):
        """Compact dict (defaults omitted; id spelled ``id``)."""
        data = {"id": self.task_id, "service_us": self.service_us}
        for field in dataclasses.fields(self):
            if field.name in ("task_id", "service_us"):
                continue
            value = getattr(self, field.name)
            if value == _TASK_DEFAULTS[field.name]:
                continue
            if field.name == "downstream":
                data["downstream"] = [e.to_dict() for e in value]
            elif field.name == "arrival":
                data["arrival"] = value.to_dict()
            else:
                data[field.name] = value
        return data

    def canonical(self):
        """Hash form. v1 task fields are explicit; fields listed in
        ``_CANONICAL_OPTIONAL`` (the service-distribution pair) join only
        when set, conserving keys minted before they existed."""
        data = {
            "id": self.task_id,
            "service_us": self.service_us,
            "name": self.name,
            "weight": self.weight,
            "deadline_us": self.deadline_us,
            "downstream": [e.canonical() for e in self.downstream],
            "join": self.join,
            "arrival": None if self.arrival is None
            else self.arrival.canonical(),
        }
        for field in _TASK_CANONICAL_OPTIONAL:
            value = getattr(self, field)
            if value != _TASK_DEFAULTS[field]:
                data[field] = value
        return data

    @classmethod
    def from_dict(cls, data):
        """Build from a plain dict, rejecting unknown fields."""
        if not isinstance(data, dict):
            raise ValueError(f"task spec must be a dict, got {data!r}")
        data = dict(data)
        task_id = data.pop("id", None)
        if task_id is None:
            raise ValueError("task spec needs an id")
        service_us = data.pop("service_us", None)
        if service_us is None:
            raise ValueError(f"task {task_id}: spec needs a service_us")
        kwargs = {}
        for field in _TASK_DEFAULTS:
            if field in data:
                kwargs[field] = data.pop(field)
        if data:
            raise ValueError(
                f"task {task_id}: unknown field(s): "
                f"{', '.join(sorted(data))}"
            )
        return cls(task_id=task_id, service_us=service_us, **kwargs)


_TASK_DEFAULTS = {
    field.name: field.default
    for field in dataclasses.fields(TaskSpec)
    if field.name not in ("task_id", "service_us")
}

# Post-v1 task fields: join the canonical payload only when changed.
_TASK_CANONICAL_OPTIONAL = frozenset({"service_dist", "service_spread"})


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A complete declarative workload: named task graph + platform
    packet parameters.

    ``multicast`` switches sources from sequential branch emission to
    emitting every branch of an instance in one (stretched) generation
    tick, delivered via NoC multicast — the paper's SS V future-work
    mode. ``per_task_series`` opts the metrics sampler into per-task
    execution columns (exported only when non-zero).
    """

    name: str
    tasks: tuple
    packet_flits: int = 4
    multicast: bool = False
    per_task_series: bool = False

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(
                f"workload name must be a non-empty string, got {self.name!r}"
            )
        tasks = tuple(
            t if isinstance(t, TaskSpec) else TaskSpec.from_dict(t)
            for t in (self.tasks or ())
        )
        object.__setattr__(self, "tasks", tasks)
        if not tasks:
            raise ValueError(f"workload {self.name!r} has no tasks")
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            seen, dupes = set(), set()
            for task_id in ids:
                (dupes if task_id in seen else seen).add(task_id)
            raise ValueError(
                f"workload {self.name!r}: duplicate task id(s) "
                f"{sorted(dupes)}"
            )
        known = set(ids)
        for task in tasks:
            for edge in task.downstream:
                if edge.task not in known:
                    raise ValueError(
                        f"workload {self.name!r}: task {task.task_id} "
                        f"routes to unknown task {edge.task}"
                    )
        if not any(t.arrival is not None for t in tasks):
            raise ValueError(
                f"workload {self.name!r} has no source task "
                f"(no task carries an arrival)"
            )
        if not isinstance(self.packet_flits, int) or self.packet_flits < 1:
            raise ValueError(
                f"packet_flits must be a positive integer, "
                f"got {self.packet_flits!r}"
            )
        for flag in ("multicast", "per_task_series"):
            if not isinstance(getattr(self, flag), bool):
                raise ValueError(
                    f"{flag} must be a bool, got {getattr(self, flag)!r}"
                )

    # -- accessors ---------------------------------------------------------

    def task(self, task_id):
        """The :class:`TaskSpec` with the given id (KeyError if absent)."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(task_id)

    def source_ids(self):
        """Task ids that carry an arrival (the graph's sources)."""
        return [t.task_id for t in self.tasks if t.arrival is not None]

    def join_ids(self):
        """Task ids marked as joins."""
        return [t.task_id for t in self.tasks if t.join]

    # -- serialisation -----------------------------------------------------

    def to_dict(self):
        """Compact dict (defaults omitted) — what a JSON file holds."""
        data = {
            "name": self.name,
            "tasks": [t.to_dict() for t in self.tasks],
        }
        for field in ("packet_flits", "multicast", "per_task_series"):
            value = getattr(self, field)
            if value != _SPEC_DEFAULTS[field]:
                data[field] = value
        return data

    def canonical(self):
        """Hash form. v1 spec fields are explicit; fields listed in
        ``_CANONICAL_OPTIONAL`` join only when changed from their
        defaults, so keys minted before a field existed are conserved."""
        data = {
            "schema": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "tasks": [t.canonical() for t in self.tasks],
            "packet_flits": self.packet_flits,
            "multicast": self.multicast,
        }
        for field in _CANONICAL_OPTIONAL:
            value = getattr(self, field)
            if value != _SPEC_DEFAULTS[field]:
                data[field] = value
        return data

    def key(self):
        """Content hash of the canonical form — the workload's identity
        in campaign cell keys and stores."""
        blob = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data):
        """Build from a plain dict, rejecting unknown fields."""
        if not isinstance(data, dict):
            raise ValueError(f"workload spec must be a dict, got {data!r}")
        data = dict(data)
        data.pop("schema", None)
        name = data.pop("name", None)
        if name is None:
            raise ValueError("workload spec needs a name")
        tasks = data.pop("tasks", None)
        if not tasks:
            raise ValueError(f"workload {name!r} needs a non-empty tasks list")
        kwargs = {}
        for field in ("packet_flits", "multicast", "per_task_series"):
            if field in data:
                kwargs[field] = data.pop(field)
        if data:
            raise ValueError(
                f"workload {name!r}: unknown field(s): "
                f"{', '.join(sorted(data))}"
            )
        return cls(name=name, tasks=tuple(tasks), **kwargs)

    @classmethod
    def from_json_file(cls, path):
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self):
        return (
            f"WorkloadSpec({self.name!r}, tasks={len(self.tasks)}, "
            f"key={self.key()[:12]})"
        )


_SPEC_DEFAULTS = {
    field.name: field.default
    for field in dataclasses.fields(WorkloadSpec)
    if field.name not in ("name", "tasks")
}

# Post-v1 spec fields: join the canonical payload only when changed.
_CANONICAL_OPTIONAL = frozenset({"per_task_series"})


# -- built-in specs ----------------------------------------------------------


def fork_join_spec(fork_width=3, generation_period_us=4_000,
                   source_service_us=500, branch_service_us=12_500,
                   sink_service_us=3_000, deadline_us=16_000,
                   packet_flits=4, multicast=False):
    """The paper's Figure 3 fork-join graph as a WorkloadSpec.

    Defaults mirror :func:`repro.app.taskgraph.fork_join_graph` exactly;
    the interpreter running this spec is pinned bit-identical to the
    legacy :class:`~repro.app.workload.ForkJoinWorkload` by
    ``tests/integration/test_workload_determinism.py``.
    """
    return WorkloadSpec(
        name="fork_join",
        tasks=(
            TaskSpec(
                task_id=1, service_us=source_service_us, name="task1-source",
                weight=1, deadline_us=deadline_us,
                downstream=(EdgeSpec(task=2, fanout=fork_width),),
                arrival=ArrivalSpec(period_us=generation_period_us),
            ),
            TaskSpec(
                task_id=2, service_us=branch_service_us, name="task2-branch",
                weight=fork_width, deadline_us=deadline_us,
                downstream=(EdgeSpec(task=3),),
            ),
            TaskSpec(
                task_id=3, service_us=sink_service_us, name="task3-join",
                weight=1, deadline_us=deadline_us,
                downstream=(EdgeSpec(task=1),), join=True,
            ),
        ),
        packet_flits=packet_flits,
        multicast=multicast,
    )


def pipeline_spec(stages=3, generation_period_us=4_000, service_us=2_000,
                  deadline_us=16_000):
    """A linear ``stages``-deep pipeline with constant arrivals."""
    if stages < 2:
        raise ValueError("a pipeline needs at least 2 stages")
    tasks = [
        TaskSpec(
            task_id=1, service_us=max(1, service_us // 4),
            name="stage1-source", deadline_us=deadline_us,
            downstream=(EdgeSpec(task=2),),
            arrival=ArrivalSpec(period_us=generation_period_us),
        ),
    ]
    for stage in range(2, stages + 1):
        downstream = (EdgeSpec(task=stage + 1),) if stage < stages else ()
        tasks.append(TaskSpec(
            task_id=stage, service_us=service_us, name=f"stage{stage}",
            deadline_us=deadline_us, downstream=downstream,
        ))
    return WorkloadSpec(name=f"pipeline{stages}", tasks=tuple(tasks))


def shuffle_spec(width=2, generation_period_us=6_000, map_service_us=1_500,
                 reduce_service_us=900, deadline_us=16_000):
    """An all-to-all shuffle: ``width`` mappers each feed ``width``
    reducers, joined by a single fan-in ``width**2`` reducer."""
    if width < 2:
        raise ValueError("a shuffle needs width >= 2")
    source_id = 1
    mapper_ids = list(range(2, 2 + width))
    reducer_ids = list(range(2 + width, 2 + 2 * width))
    sink_id = 2 + 2 * width
    tasks = [TaskSpec(
        task_id=source_id, service_us=400, name="shuffle-source",
        deadline_us=deadline_us,
        downstream=tuple(EdgeSpec(task=m) for m in mapper_ids),
        arrival=ArrivalSpec(period_us=generation_period_us),
    )]
    for m in mapper_ids:
        tasks.append(TaskSpec(
            task_id=m, service_us=map_service_us, name=f"map{m}",
            deadline_us=deadline_us,
            downstream=tuple(EdgeSpec(task=r) for r in reducer_ids),
        ))
    for r in reducer_ids:
        tasks.append(TaskSpec(
            task_id=r, service_us=reduce_service_us, name=f"reduce{r}",
            deadline_us=deadline_us, downstream=(EdgeSpec(task=sink_id),),
        ))
    tasks.append(TaskSpec(
        task_id=sink_id, service_us=600, name="shuffle-sink",
        deadline_us=deadline_us, join=True,
    ))
    return WorkloadSpec(name=f"shuffle{width}x{width}", tasks=tuple(tasks))


BUILTIN_WORKLOADS = {
    "fork_join": fork_join_spec,
    "pipeline3": pipeline_spec,
    "shuffle2x2": shuffle_spec,
}


def load_workload(ref):
    """Resolve ``ref`` to a :class:`WorkloadSpec`.

    Accepts a spec instance (returned as-is), a dict payload, a built-in
    name (``fork_join``, ``pipeline3``, ``shuffle2x2``), or a path to a
    JSON file.
    """
    if isinstance(ref, WorkloadSpec):
        return ref
    if isinstance(ref, dict):
        return WorkloadSpec.from_dict(ref)
    if isinstance(ref, str):
        if ref in BUILTIN_WORKLOADS:
            return BUILTIN_WORKLOADS[ref]()
        if ref.endswith(".json") or os.path.exists(ref):
            return WorkloadSpec.from_json_file(ref)
        raise ValueError(
            f"unknown workload {ref!r} — not a built-in "
            f"({', '.join(sorted(BUILTIN_WORKLOADS))}) and no such file"
        )
    raise ValueError(f"cannot load a workload from {ref!r}")
