"""Fault-injection engine.

"In this work our fault model considers multiple node failures" (paper
§IV-B): at a configured time a set of victim nodes fail permanently — the
processor stops, the router stops forwarding, and the surviving system must
re-route and (with intelligence enabled) re-allocate tasks.  Victims are
drawn from the currently-alive candidates using a dedicated RNG stream so
fault patterns are reproducible per seed and independent of the mapping
stream.

Beyond the paper's single burst, the injector is an *interpreter* for
declarative :class:`~repro.platform.scenario.FaultScenario` compositions:
link failures, transient/intermittent outages (fail, then recover, then
optionally fail again), timed waves, spatial victim patterns
(row/column/region/neighbourhood), degraded links (slower ``flit_time``
instead of an outage), packet-corrupting links (payload delivered but
useless), controller attach-point failures (monitors/knobs go dark) and
hazard-rate storms (occurrence times drawn from a Poisson process on a
dedicated RNG stream).  The legacy :meth:`schedule` surface maps onto a
one-event uniform burst and draws the exact RNG sequence the historic
implementation drew, so existing sweeps stay bit-identical; scenarios
that avoid the v2 kinds never touch the storm stream, so their draws are
untouched too.
"""

from repro.noc.topology import normalize_edge
from repro.platform.scenario import (
    CONTROLLER,
    CORRUPT,
    DEADLOCK_PRESSURE,
    LINK,
    LINK_DEGRADE,
    NODE,
    NODE_KINDS,
    THERMAL_STORM,
    UNIFORM,
    FaultEvent,
)

#: RNG stream name shared by every victim draw (legacy-compatible).
FAULT_STREAM = "fault-injection"

#: RNG stream for hazard-rate storm occurrence times.  Separate from the
#: victim stream so storms cannot perturb the draws of fixed-schedule
#: events (and legacy scenarios never create it at all).
HAZARD_STREAM = "fault-hazard"


class FaultInjector:
    """Schedules and executes fault campaigns against a platform.

    Parameters
    ----------
    platform:
        The Centurion platform under test.
    """

    def __init__(self, platform):
        self.platform = platform
        #: Legacy bookkeeping: ``(at_us, count, pinned_victims)`` per
        #: :meth:`schedule` call (pinned victims recorded for
        #: introspection; ``None`` for runtime draws).
        self.scheduled = []
        #: Node ids actually killed, in injection order (repeats included).
        self.victims = []
        #: ``(src, dst)`` link endpoints actually failed, in order.
        self.link_victims = []
        #: ``(src, dst)`` link endpoints actually degraded, in order.
        self.degraded_victims = []
        #: ``(src, dst)`` link endpoints actually set corrupting, in order.
        self.corrupted_victims = []
        #: Controller attach-point indices actually severed, in order.
        self.controller_victims = []
        #: Node ids actually hit by thermal storms, in order.
        self.thermal_victims = []
        #: Node ids actually put under deadlock pressure, in order.
        self.pressure_victims = []
        #: ``(time_us, kind, victim)`` recovery log.
        self.recovered = []
        #: Scenarios applied through :meth:`apply`.
        self.scenarios = []
        #: Victims a *permanent* event has claimed: a pending transient
        #: recovery must not revive them (permanent declarations win).
        self._permanent = set()
        #: Latest declared outage end per ``(kind, victim)``: overlapping
        #: transients extend each other instead of the earliest recovery
        #: cutting every later outage short.
        self._outage_until = {}
        #: Active degrade claims per edge: ``[(until, seq, factor), ...]``
        #: (``until=None`` is permanent).  Unlike the binary kinds a
        #: degrade claim carries a magnitude, so presence-only
        #: bookkeeping is not enough — the edge must run at the worst
        #: *active* factor, and a claim's expiry re-evaluates what
        #: remains instead of blindly restoring.
        self._degrade_claims = {}
        self._degrade_seq = 0
        #: Active deadlock-pressure claims per node:
        #: ``[(until, seq, wait_limit_us), ...]`` (``until=None`` is
        #: permanent).  Same arbitration shape as the degrade claims —
        #: a pressure claim carries a magnitude, and the node must run
        #: at the *tightest* active limit.
        self._pressure_claims = {}
        self._pressure_seq = 0

    # -- legacy surface ----------------------------------------------------

    def schedule(self, count, at_us, victims=None):
        """Arrange for ``count`` random nodes to fail at ``at_us``.

        ``victims`` may pin an explicit node list (tests); when both are
        given they must agree — a pinned list silently overriding the
        count hid real setup mistakes.  Otherwise victims are drawn at
        injection time from nodes still alive, which mirrors the paper's
        procedure (faults hit the *running* system).  Control-priority
        scheduling makes all failures land before any same-tick
        application event.
        """
        if count < 0:
            raise ValueError("fault count must be >= 0")
        if victims is not None:
            victims = tuple(victims)
            if count != len(victims):
                raise ValueError(
                    "count={} disagrees with {} pinned victims".format(
                        count, len(victims)
                    )
                )
        if count == 0:
            return
        self.scheduled.append((at_us, count, victims))
        self._schedule_event(
            FaultEvent(at_us=at_us, count=count, victims=victims)
        )

    # -- scenario surface --------------------------------------------------

    def apply(self, scenario):
        """Schedule every event of a declarative scenario.

        Pinned victims are validated against this platform's topology
        up front, so a malformed scenario fails here — at apply time —
        instead of deep inside the event loop at simulated fault time.
        """
        for event in scenario.events:
            self._check_victims(scenario, event)
        self.scenarios.append(scenario)
        for event in scenario.events:
            self._schedule_event(event)

    def _check_victims(self, scenario, event):
        if event.victims is None:
            return
        network = self.platform.network
        num_nodes = network.topology.num_nodes
        if event.kind in NODE_KINDS:
            for victim in event.victims:
                if not 0 <= victim < num_nodes:
                    raise ValueError(
                        "scenario {!r}: node victim {} outside the "
                        "{}-node mesh".format(
                            scenario.name, victim, num_nodes
                        )
                    )
        elif event.kind == CONTROLLER:
            attaches = len(self.platform.controller.attach_points)
            for victim in event.victims:
                if not 0 <= victim < attaches:
                    raise ValueError(
                        "scenario {!r}: controller victim {} outside the "
                        "{} attach points".format(
                            scenario.name, victim, attaches
                        )
                    )
        else:
            for src, dst in event.victims:
                if (src, dst) not in network.links:
                    raise ValueError(
                        "scenario {!r}: {} victim ({}, {}) is not a "
                        "mesh edge".format(scenario.name, event.kind,
                                           src, dst)
                    )

    def _schedule_event(self, event):
        sim = self.platform.sim
        if event.is_storm():
            # Storm occurrence times are drawn up front, at apply time,
            # from the dedicated hazard stream: per-seed deterministic,
            # and invisible to the victim draws of other events.
            times = event.occurrence_times(sim.rng.stream(HAZARD_STREAM))
        else:
            times = event.occurrence_times()
        for at in times:
            sim.schedule_at(
                at,
                lambda e=event: self._execute(e),
                priority=sim.PRIORITY_CONTROL,
            )

    # -- interpretation ----------------------------------------------------

    def _execute(self, event):
        """Inject one occurrence of ``event`` at the current time."""
        kind = event.kind
        if kind == NODE:
            victims = self._node_victims(event)
            self._inject_nodes(victims)
        elif kind == THERMAL_STORM:
            # Heat impulses decay on their own (no duration, nothing to
            # recover), so they bypass the outage bookkeeping below.
            self._inject_heat(event, self._node_victims(event))
            return
        elif kind == DEADLOCK_PRESSURE:
            # Pressure claims carry a magnitude, so like degrades they
            # use per-node claim arbitration instead of the
            # presence-only permanent/outage bookkeeping below.
            self._apply_pressure(event, self._node_victims(event))
            return
        elif kind == CONTROLLER:
            victims = list(self._controller_victims_for(event))
            self._sever_attaches(victims)
        else:
            victims = [
                normalize_edge(*edge)
                for edge in self._edge_victims_for(event)
            ]
            if kind == LINK:
                self._inject_links(victims)
            elif kind == LINK_DEGRADE:
                # Degrade claims carry a magnitude, so they bypass the
                # presence-only permanent/outage bookkeeping below in
                # favour of per-edge claim arbitration.
                self._apply_degrade(event, victims)
                return
            else:
                self._corrupt_links(victims)
        if event.duration_us is None:
            # A permanent claim sticks to every declared victim — even
            # one currently down from a transient outage, whose pending
            # recovery must no longer revive it.
            self._permanent.update(
                (event.kind, victim) for victim in victims
            )
        elif victims:
            # The outage claims every declared victim, including one
            # already down from an earlier transient — the later end
            # time wins, so overlapping outages extend instead of the
            # earliest recovery reviving everything.
            sim = self.platform.sim
            until = sim.now + event.duration_us
            for victim in victims:
                key = (event.kind, victim)
                if until > self._outage_until.get(key, 0):
                    self._outage_until[key] = until
            sim.schedule_at(
                until,
                lambda k=event.kind, v=victims: self._recover(k, v),
                priority=sim.PRIORITY_CONTROL,
            )

    def _inject_nodes(self, victims):
        controller = self.platform.controller
        pes = self.platform.pes
        killed = []
        for node_id in victims:
            if pes[node_id].halted:
                continue  # double injection of an already-dead node
            controller.inject_fault(node_id)
            self.victims.append(node_id)
            killed.append(node_id)
        return killed

    def _inject_links(self, edges):
        network = self.platform.network
        failed = []
        for src, dst in edges:
            if network.link_failed(src, dst):
                continue
            network.fail_link(src, dst)
            self.link_victims.append((src, dst))
            failed.append((src, dst))
        return failed

    def _apply_degrade(self, event, edges):
        """Register one occurrence's degrade claims and apply them.

        Overlapping degradations do not stack multiplicatively: the
        edge runs at the *worst* (largest-factor) currently-active
        claim.  Each claim is kept with its expiry; when a transient
        claim lapses the survivors are re-evaluated — the edge drops to
        the next-worst active factor, or back to nominal timing once no
        claim remains.
        """
        sim = self.platform.sim
        network = self.platform.network
        until = (
            None if event.duration_us is None
            else sim.now + event.duration_us
        )
        claimed = []
        for edge in edges:
            if network.link_failed(*edge):
                continue  # a dead edge has no timing left to degrade
            self._degrade_claims.setdefault(edge, []).append(
                (until, self._degrade_seq, event.factor)
            )
            self._degrade_seq += 1
            self.degraded_victims.append(edge)
            self._apply_governing_degrade(edge)
            claimed.append(edge)
        if until is not None and claimed:
            sim.schedule_at(
                until,
                lambda es=claimed: self._expire_degrades(es),
                priority=sim.PRIORITY_CONTROL,
            )
        return claimed

    def _apply_governing_degrade(self, edge):
        """Make the edge run at its worst active claim's factor."""
        network = self.platform.network
        claims = self._degrade_claims.get(edge)
        if not claims:
            if network.link_degraded(*edge):
                network.restore_link(*edge)
            return
        # Worst factor governs; newest declaration breaks exact ties.
        _until, _seq, factor = max(
            claims, key=lambda claim: (claim[2], claim[1])
        )
        if network.degraded_links.get(edge) != factor:
            network.degrade_link(edge[0], edge[1], factor)

    def _expire_degrades(self, edges):
        """Drop lapsed degrade claims and re-arbitrate each edge."""
        now = self.platform.sim.now
        network = self.platform.network
        for edge in edges:
            claims = self._degrade_claims.get(edge)
            if not claims:
                continue
            live = [
                claim for claim in claims
                if claim[0] is None or claim[0] > now
            ]
            if len(live) == len(claims):
                continue  # nothing lapsed yet (e.g. re-claimed later)
            if live:
                self._degrade_claims[edge] = live
                self._apply_governing_degrade(edge)
            else:
                del self._degrade_claims[edge]
                if network.link_degraded(*edge):
                    network.restore_link(*edge)
                    self.recovered.append((now, LINK_DEGRADE, edge))

    def _inject_heat(self, event, victims):
        """Push one thermal-storm occurrence's heat into its victims.

        Actuation goes through the platform's
        :class:`~repro.platform.dynamics.DynamicsController`, which
        heats every victim's thermal model and re-evaluates any active
        governors — so a storm on a governed platform triggers the
        closed loop immediately.
        """
        dynamics = getattr(self.platform, "dynamics", None)
        if dynamics is None:
            return []
        heated = dynamics.inject_heat(victims, event.heat_c)
        self.thermal_victims.extend(heated)
        return heated

    def _apply_pressure(self, event, victims):
        """Register one occurrence's deadlock-pressure claims.

        Overlapping pressures do not stack: the node runs at the
        *tightest* (smallest ``wait_limit_us``) currently-active claim.
        Each claim is kept with its expiry; when a transient claim
        lapses the survivors are re-evaluated — the node relaxes to the
        next-tightest active limit, or back to the config-wide
        ``deadlock_wait_limit_us`` once no claim remains.
        """
        sim = self.platform.sim
        until = (
            None if event.duration_us is None
            else sim.now + event.duration_us
        )
        claimed = []
        for node_id in victims:
            self._pressure_claims.setdefault(node_id, []).append(
                (until, self._pressure_seq, event.wait_limit_us)
            )
            self._pressure_seq += 1
            self.pressure_victims.append(node_id)
            self._apply_governing_pressure(node_id)
            claimed.append(node_id)
        if until is not None and claimed:
            sim.schedule_at(
                until,
                lambda ns=claimed: self._expire_pressures(ns),
                priority=sim.PRIORITY_CONTROL,
            )
        return claimed

    def _apply_governing_pressure(self, node_id):
        """Make the node run at its tightest active claim's limit."""
        network = self.platform.network
        claims = self._pressure_claims.get(node_id)
        if not claims:
            network.clear_deadlock_pressure(node_id)
            return
        # Tightest limit governs; newest declaration breaks exact ties.
        _until, _seq, limit = min(
            claims, key=lambda claim: (claim[2], -claim[1])
        )
        network.set_deadlock_pressure(node_id, limit)

    def _expire_pressures(self, nodes):
        """Drop lapsed pressure claims and re-arbitrate each node."""
        now = self.platform.sim.now
        for node_id in nodes:
            claims = self._pressure_claims.get(node_id)
            if not claims:
                continue
            live = [
                claim for claim in claims
                if claim[0] is None or claim[0] > now
            ]
            if len(live) == len(claims):
                continue  # nothing lapsed yet (e.g. re-claimed later)
            if live:
                self._pressure_claims[node_id] = live
                self._apply_governing_pressure(node_id)
            else:
                del self._pressure_claims[node_id]
                self.platform.network.clear_deadlock_pressure(node_id)
                self.recovered.append((now, DEADLOCK_PRESSURE, node_id))

    def _corrupt_links(self, edges):
        network = self.platform.network
        corrupted = []
        for src, dst in edges:
            if network.link_failed(src, dst) or network.link_corrupting(
                src, dst
            ):
                continue
            network.corrupt_link(src, dst)
            self.corrupted_victims.append((src, dst))
            corrupted.append((src, dst))
        return corrupted

    def _sever_attaches(self, indices):
        controller = self.platform.controller
        severed = []
        for index in indices:
            if index in controller.severed:
                continue  # double injection of an already-severed attach
            controller.sever_attach(index)
            self.controller_victims.append(index)
            severed.append(index)
        return severed

    def _recover(self, kind, victims):
        """Undo one occurrence's outage (the transient-fault back edge).

        A victim stays down when a permanent event claimed it since the
        outage began, or when a later-ending transient outage still
        covers it — only the final claim's recovery revives.
        """
        now = self.platform.sim.now
        controller = self.platform.controller
        network = self.platform.network
        pes = self.platform.pes
        for victim in victims:
            key = (kind, victim)
            if key in self._permanent:
                continue
            if self._outage_until.get(key, 0) > now:
                continue  # a longer overlapping outage still holds it
            if kind == NODE:
                if pes[victim].halted:
                    controller.recover_node(victim)
                    self.recovered.append((now, NODE, victim))
            elif kind == LINK:
                if network.link_failed(*victim):
                    network.recover_link(*victim)
                    self.recovered.append((now, LINK, victim))
            elif kind == CORRUPT:
                if network.link_corrupting(*victim):
                    network.clean_link(*victim)
                    self.recovered.append((now, CORRUPT, victim))
            elif kind == CONTROLLER:
                if victim in controller.severed:
                    controller.restore_attach(victim)
                    self.recovered.append((now, CONTROLLER, victim))

    # -- victim selection --------------------------------------------------

    def _node_victims(self, event):
        """Node victims for one occurrence, drawn at injection time.

        The uniform draw replicates the historic injector exactly —
        same stream, ``min``-capped count, ``rng.sample`` over the
        alive list — which is what keeps legacy ``fault_counts``
        campaigns bit-identical under the scenario engine.
        """
        if event.victims is not None:
            return event.victims
        rng = self.platform.sim.rng.stream(FAULT_STREAM)
        alive = self.platform.controller.alive_nodes()
        if event.pattern == UNIFORM:
            count = min(event.count, len(alive))
            return rng.sample(alive, count)
        candidates = self._pattern_candidates(event, alive)
        if event.count is None:
            return candidates
        count = min(event.count, len(candidates))
        return rng.sample(candidates, count)

    def _pattern_candidates(self, event, alive):
        """Alive nodes inside the event's spatial shape, id-ordered."""
        topology = self.platform.network.topology
        coords = topology.coords
        if event.pattern == "row":
            return [n for n in alive if coords(n)[1] == event.row]
        if event.pattern == "column":
            return [n for n in alive if coords(n)[0] == event.column]
        if event.pattern == "region":
            x0, y0, x1, y1 = event.region
            return [
                n for n in alive
                if x0 <= coords(n)[0] <= x1 and y0 <= coords(n)[1] <= y1
            ]
        # neighbourhood: Manhattan ball around the centre node.
        center = event.center
        radius = event.radius
        return [
            n for n in alive if topology.manhattan(n, center) <= radius
        ]

    def _edge_victims_for(self, event):
        """Edge victims for one occurrence (pinned pairs or a draw).

        The draw excludes edges already claimed by the event's own kind
        (failed edges for ``link``, degraded for ``link_degrade``,
        corrupting for ``corrupt``) plus — for the partial kinds — the
        outright-failed edges, which have no traffic left to damage.
        For ``link`` events the candidate set and draw are unchanged
        from the v1 engine, preserving its RNG sequence exactly.
        """
        if event.victims is not None:
            return [tuple(v) for v in event.victims]
        network = self.platform.network
        rng = self.platform.sim.rng.stream(FAULT_STREAM)
        taken = network.failed_links
        if event.kind == LINK_DEGRADE:
            taken = taken | set(network.degraded_links)
        elif event.kind == CORRUPT:
            taken = taken | network.corrupting_links
        healthy = sorted(
            edge
            for edge in {
                normalize_edge(a, b) for a, b in network.links
            }
            if edge not in taken
        )
        count = min(event.count, len(healthy))
        return rng.sample(healthy, count)

    def _controller_victims_for(self, event):
        """Attach-point victims for one occurrence (pinned or drawn).

        Uniform draws come from the currently-healthy attach points,
        through the same victim stream as every other draw.
        """
        if event.victims is not None:
            return event.victims
        controller = self.platform.controller
        rng = self.platform.sim.rng.stream(FAULT_STREAM)
        healthy = controller.healthy_attach_indices()
        count = min(event.count, len(healthy))
        return rng.sample(healthy, count)

    def __repr__(self):
        return (
            "FaultInjector(scheduled={}, scenarios={}, injected={}, "
            "links={}, degraded={}, corrupted={}, severed={}, "
            "heated={}, pressured={}, recovered={})".format(
                self.scheduled,
                len(self.scenarios),
                len(self.victims),
                len(self.link_victims),
                len(self.degraded_victims),
                len(self.corrupted_victims),
                len(self.controller_victims),
                len(self.thermal_victims),
                len(self.pressure_victims),
                len(self.recovered),
            )
        )
