"""End-to-end integration tests on small grids.

These exercise the full stack — simulator, NoC, processing elements, AIMs,
workload, metrics — for every registered intelligence model, plus the
paper's two headline behaviours: adaptive task allocation and fault
tolerance.
"""

import pytest

from repro.core.models import MODEL_REGISTRY
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_every_model_runs_end_to_end(model_name):
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name=model_name, seed=13
    )
    series = platform.run(100_000)
    assert len(series) == 10
    assert platform.workload.stats()["generated"] > 0
    # The pipeline must make progress under every model.
    assert sum(series.executions) > 0


@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_every_model_survives_faults(model_name):
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name=model_name, seed=13
    )
    platform.inject_faults(4)
    series = platform.run()
    assert series.alive_nodes[-1] == 12
    # Work continues after the faults.
    post_fault = series.window_slice(110, 1e9)
    assert sum(series.executions[i] for i in post_fault) > 0


def test_packet_accounting_invariants():
    """NoC statistics stay mutually consistent under faults and diversion.

    A packet may be delivered more than once (a full buffer diverts it to
    another provider, where it is delivered again), so 'delivered' counts
    delivery events, bounded by initial sends plus rerouting events.
    """
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="ffw", seed=3
    )
    platform.inject_faults(3)
    platform.run()
    stats = platform.network.stats
    drops = (
        stats["dropped_deadlock"]
        + stats["dropped_no_provider"]
        + stats["dropped_fault"]
    )
    executions = sum(pe.completions for pe in platform.pes.values())
    # Every execution consumed exactly one delivery event.
    assert executions <= stats["delivered"]
    # Delivery events cannot exceed injections plus re-entries.
    assert stats["delivered"] <= stats["sent"] + stats["reroutes"]
    assert drops <= stats["sent"] + stats["reroutes"]
    # The system made real progress despite the faults.
    assert stats["delivered"] > 0


def test_census_conserved_under_switching():
    """Task switches move nodes between tasks, never create or lose them."""
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="ni", seed=3,
        model_params={"threshold": 6},
    )
    series = platform.run()
    for i in range(len(series)):
        total = sum(series.census[t][i] for t in series.census)
        assert total == series.alive_nodes[i]


def test_fault_census_drops_by_victim_count():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="none", seed=3
    )
    platform.inject_faults(5)
    series = platform.run()
    pre = series.window_slice(0, 100)
    post = series.window_slice(110, 1e9)
    assert series.alive_nodes[pre[-1]] == 16
    assert series.alive_nodes[post[0]] == 11


def test_ni_switches_follow_traffic_small_grid():
    """A corridor node flooded with task-2 packets converts to task 2."""
    config = PlatformConfig.small(ni_threshold=8)
    platform = CenturionPlatform(config, model_name="ni", seed=3)
    platform.run()
    assert platform.total_task_switches() > 0


def test_baseline_never_switches():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="none", seed=3
    )
    platform.run()
    assert platform.total_task_switches() == 0


def test_ffw_recruits_replacement_providers():
    """Kill every branch-task provider: FFW must recruit replacements.

    This is the paper's fault-tolerance claim in its sharpest form — after
    the faults there are NO task-2 nodes left, so joins can only continue
    if the intelligence converts surviving nodes.
    """
    config = PlatformConfig.small(horizon_us=400_000, fault_time_us=150_000)
    platform = CenturionPlatform(config, model_name="ffw", seed=3)
    victims = [
        node
        for node, task in platform.initial_mapping.items()
        if task == 2
    ]
    platform.inject_faults(len(victims), victims=victims)
    platform.run()
    census = platform.task_census()
    assert census.get(2, 0) > 0, "FFW failed to recruit task-2 providers"


def test_baseline_cannot_recover_lost_task():
    """Same scenario without intelligence: task 2 stays extinct."""
    config = PlatformConfig.small(horizon_us=400_000, fault_time_us=150_000)
    platform = CenturionPlatform(config, model_name="none", seed=3)
    victims = [
        node
        for node, task in platform.initial_mapping.items()
        if task == 2
    ]
    platform.inject_faults(len(victims), victims=victims)
    series = platform.run()
    assert platform.task_census().get(2, 0) == 0
    post = series.window_slice(160, 1e9)
    # With the branch stage extinct, no new joins can complete (allow the
    # pipeline to drain instances already past task 2).
    late = post[len(post) // 2:]
    assert sum(series.joins[i] for i in late) == 0


def test_deterministic_replay_full_stack():
    def signature(seed):
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name="foraging_for_work", seed=seed
        )
        platform.inject_faults(3)
        series = platform.run()
        return (
            list(series.active_nodes),
            list(series.joins),
            list(series.task_switches),
            platform.faults.victims,
        )

    assert signature(77) == signature(77)
