"""Tests for the network hop engine and task-addressed delivery."""

import pytest

from repro.noc.network import Network
from repro.noc.packet import Packet, PacketStatus
from repro.noc.topology import MeshTopology


@pytest.fixture
def net(sim):
    network = Network(sim, topology=MeshTopology(4, 4))
    delivered = []
    network.set_deliver_handler(
        lambda packet, node: delivered.append((packet, node))
    )
    network.delivered_log = delivered
    return network


def test_link_count_of_mesh(net):
    # 4x4 mesh: 2 * (3*4 + 4*3) = 48 directed links.
    assert len(net.links) == 48


def test_delivery_to_nearest_provider(net, sim):
    net.directory.set_task(15, 2)  # far corner
    net.directory.set_task(5, 2)   # near
    packet = Packet(src_node=0, dest_task=2)
    assert net.send(packet, 0)
    sim.run_until(10_000)
    assert packet.status == PacketStatus.DELIVERED
    assert net.delivered_log == [(packet, 5)]
    assert packet.hops == net.topology.manhattan(0, 5)


def test_local_provider_delivers_without_hops(net, sim):
    net.directory.set_task(0, 2)
    packet = Packet(src_node=0, dest_task=2)
    net.send(packet, 0)
    sim.run_until(100)
    assert packet.status == PacketStatus.DELIVERED
    assert packet.hops == 0


def test_no_provider_drops_immediately(net):
    packet = Packet(src_node=0, dest_task=9)
    assert not net.send(packet, 0)
    assert packet.status == PacketStatus.DROPPED_NO_PROVIDER
    assert net.stats["dropped_no_provider"] == 1


def test_send_from_failed_node_drops(net):
    net.directory.set_task(5, 2)
    net.fail_node(0)
    packet = Packet(src_node=0, dest_task=2)
    assert not net.send(packet, 0)
    assert packet.status == PacketStatus.DROPPED_FAULT


def test_task_switch_mid_flight_reroutes(net, sim):
    """If the destination stops providing the task, the packet re-resolves."""
    net.directory.set_task(3, 2)
    net.directory.set_task(12, 2)
    packet = Packet(src_node=0, dest_task=2)
    net.send(packet, 0)
    assert packet.dest_node == 3
    # Before it gets there, node 3 switches away.
    sim.schedule(1, lambda: net.directory.set_task(3, 1))
    sim.run_until(10_000)
    assert packet.status == PacketStatus.DELIVERED
    assert net.delivered_log[0][1] == 12
    assert packet.reroutes >= 1


def test_all_providers_vanish_drops_packet(net, sim):
    net.directory.set_task(3, 2)
    packet = Packet(src_node=0, dest_task=2)
    net.send(packet, 0)
    sim.schedule(1, lambda: net.directory.set_task(3, 1))
    sim.run_until(10_000)
    assert packet.status == PacketStatus.DROPPED_NO_PROVIDER


def test_delivery_routes_around_failed_link(net, sim):
    net.directory.set_task(3, 2)
    net.fail_link(0, 1)
    packet = Packet(src_node=0, dest_task=2)
    net.send(packet, 0)
    sim.run_until(10_000)
    assert packet.status == PacketStatus.DELIVERED
    assert packet.hops > net.topology.manhattan(0, 3)


def test_fail_link_requires_adjacency(net):
    with pytest.raises(KeyError):
        net.fail_link(0, 5)


def test_recover_link_restores_delivery_path(net, sim):
    net.directory.set_task(3, 2)
    net.fail_link(0, 1)
    net.recover_link(1, 0)  # either endpoint order works
    assert not net.failed_links
    assert net.link(0, 1).enabled
    packet = Packet(src_node=0, dest_task=2)
    net.send(packet, 0)
    sim.run_until(10_000)
    assert packet.status == PacketStatus.DELIVERED
    assert packet.hops == net.topology.manhattan(0, 3)


def test_recover_node_restores_routing(net, sim):
    net.directory.set_task(3, 2)
    net.fail_node(1)
    net.recover_node(1)
    assert 1 not in net.failed_nodes
    assert not net.router(1).failed
    packet = Packet(src_node=0, dest_task=2)
    net.send(packet, 0)
    sim.run_until(10_000)
    assert packet.status == PacketStatus.DELIVERED
    assert packet.hops == net.topology.manhattan(0, 3)


def test_link_fault_events_traced(sim):
    from repro.sim.trace import TraceRecorder

    trace = TraceRecorder(("link_failed", "link_recovered"))
    network = Network(sim, topology=MeshTopology(4, 4), trace=trace)
    network.fail_link(0, 1)
    network.recover_link(0, 1)
    assert trace.count("link_failed") == 1
    assert trace.count("link_recovered") == 1


def test_delivery_routes_around_faults(net, sim):
    # Provider due east at (3,0); kill the straight-line path.
    net.directory.set_task(3, 2)
    net.fail_node(1)
    packet = Packet(src_node=0, dest_task=2)
    net.send(packet, 0)
    sim.run_until(10_000)
    assert packet.status == PacketStatus.DELIVERED
    assert packet.hops > net.topology.manhattan(0, 3)


def test_packet_arriving_at_failed_router_dropped(net, sim):
    net.directory.set_task(3, 2)
    packet = Packet(src_node=0, dest_task=2)
    net.send(packet, 0)
    # Fail an XY path router while the packet is in flight toward it.
    sim.schedule(1, lambda: net.routers[2].fail() or net.failed_nodes.add(2))
    sim.run_until(10_000)
    assert packet.status in (
        PacketStatus.DROPPED_FAULT,
        PacketStatus.DELIVERED,  # if it already passed node 2
    )


def test_redirect_moves_packet_to_alternative(net, sim):
    net.directory.set_task(5, 2)
    net.directory.set_task(10, 2)
    packet = Packet(src_node=0, dest_task=2)
    packet.mark_tried(5)
    assert net.redirect(packet, 5, exclude=packet.tried_providers())
    sim.run_until(10_000)
    assert packet.status == PacketStatus.DELIVERED
    assert net.delivered_log[0][1] == 10


def test_redirect_exhaustion_drops(net):
    net.directory.set_task(5, 2)
    packet = Packet(src_node=0, dest_task=2)
    packet.reroutes = net.max_reroutes + 1
    assert not net.redirect(packet, 0)
    assert packet.status == PacketStatus.DROPPED_NO_PROVIDER


def test_fail_node_updates_directory_and_policy(net):
    net.directory.set_task(5, 2)
    net.fail_node(5)
    assert net.directory.providers(2) == []
    assert 5 in net.policy.failed
    assert net.routers[5].failed


def test_routers_see_routing_events(net, sim):
    net.directory.set_task(3, 2)
    packet = Packet(src_node=0, dest_task=2)
    net.send(packet, 0)
    sim.run_until(10_000)
    # Routers 0..2 forwarded; router 3 sank.
    assert net.routers[0].packets_forwarded == 1
    assert net.routers[1].packets_forwarded == 1
    assert net.routers[2].packets_forwarded == 1
    assert net.routers[3].packets_sunk == 1


def test_stats_hops_accumulate(net, sim):
    net.directory.set_task(3, 2)
    net.send(Packet(src_node=0, dest_task=2), 0)
    sim.run_until(10_000)
    assert net.stats["hops"] == 3
    assert net.stats["delivered"] == 1
