"""Docs link check: every relative markdown link must resolve.

Scans ``README.md`` and every ``docs/*.md`` for markdown links
(``[text](target)``), skips external schemes (``http://``, ``https://``,
``mailto:``) and pure in-page anchors (``#...``), and verifies each
remaining target exists relative to the file that links it (dropping any
``#fragment``).  Exits non-zero listing every dangling link — wired into
``make lint`` so a moved file breaks the build, not the docs.

Standard library only; run as ``python tools/check_doc_links.py`` from
the repo root (or anywhere — paths are anchored to this file).
"""

import os
import re
import sys

#: Repo root (this file lives in tools/).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown inline links: ``[text](target)``; images share the syntax.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Link targets that are not files to resolve.
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files():
    """The markdown files under the check: README.md + docs/*.md."""
    paths = []
    readme = os.path.join(REPO_ROOT, "README.md")
    if os.path.exists(readme):
        paths.append(readme)
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                paths.append(os.path.join(docs, name))
    return paths


def dangling_links(path):
    """The unresolvable relative link targets of one markdown file."""
    with open(path) as handle:
        text = handle.read()
    base = os.path.dirname(path)
    missing = []
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = os.path.join(base, target.split("#", 1)[0])
        if not os.path.exists(resolved):
            missing.append(target)
    return missing


def main():
    """Check every doc file; print dangling links and return 1 on any."""
    files = doc_files()
    if not files:
        print("check_doc_links: no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        rel = os.path.relpath(path, REPO_ROOT)
        for target in dangling_links(path):
            print("{}: dangling link -> {}".format(rel, target))
            failures += 1
    if failures:
        print("{} dangling link(s)".format(failures), file=sys.stderr)
        return 1
    print("docs links ok ({} files)".format(len(files)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
