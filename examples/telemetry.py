"""Telemetry and spatial analysis of a fault-recovery run.

Runs the full Centurion with Foraging-for-Work intelligence, kills a
contiguous 4x4 block of nodes mid-run (a clustered failure — e.g. the
paper's "failure of a global clock buffer [or] a thermal issue"), and uses
the analysis toolkit to show what happened:

* task-topology maps before and after recovery (the paper's "reorganising
  the task topology"),
* activity, switch and temperature heatmaps,
* per-task packet latency statistics,
* CSV export of the metric series for external plotting.

Run:  python examples/telemetry.py          (about 5 s)
"""

import tempfile

from repro import CenturionPlatform, PlatformConfig
from repro.analysis.export import series_to_csv
from repro.analysis.heatmap import activity_map, switch_map, task_map
from repro.analysis.latency import LatencyCollector


def clustered_victims(topology, x0=6, y0=2, size=4):
    """A size x size block of node ids — a spatially correlated failure."""
    return [
        topology.node_id(x, y)
        for x in range(x0, x0 + size)
        for y in range(y0, y0 + size)
    ]


def main():
    platform = CenturionPlatform(PlatformConfig(), model_name="ffw",
                                 seed=99)
    collector = LatencyCollector().install(platform.network)
    victims = clustered_victims(platform.network.topology)
    platform.inject_faults(len(victims), victims=victims)

    # Run to just before the fault and photograph the settled topology.
    platform.sim.run_until(490_000)
    print(task_map(platform))
    print()

    # Through the fault and the recovery.
    series = platform.run()
    print("After the 4x4 block failure at 500 ms and recovery to 1000 ms:")
    print(task_map(platform))
    print()
    print(activity_map(platform))
    print()
    print(switch_map(platform))
    print()

    print("Packet latency by destination task:")
    for task, stats in collector.summary()["by_task"].items():
        print(
            "  task {}: n={:<6} mean={:7.0f}us  p50={:7.0f}us  "
            "p95={:7.0f}us".format(
                task, stats["count"], stats["mean_us"],
                stats["p50_us"], stats["p95_us"],
            )
        )

    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".csv", delete=False
    ) as handle:
        path = handle.name
    rows = series_to_csv(series, path)
    print()
    print("Exported {} metric windows to {}".format(rows, path))
    print("Joins per window, last 10:", series.joins[-10:])


if __name__ == "__main__":
    main()
