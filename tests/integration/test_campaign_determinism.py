"""Campaign determinism: cached and resumed sweeps are bit-identical.

The campaign engine (repro.campaign) must be invisible in the results: a
sharded, store-backed, resumed campaign has to produce exactly the rows
the plain sequential seed path produces — bit-identical, not just close
(mirroring tests/integration/test_fast_path_determinism.py, which pins
the same property for the express hop engine).
"""

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.paper import artifact
from repro.campaign.spec import CampaignSpec
from repro.experiments.runner import run_batch
from repro.experiments.tables import table2
from repro.platform.config import PlatformConfig

#: Shortened small-platform grid: 2 models × 2 seeds × 2 fault counts.
_CONFIG = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)
_MODELS = ("none", "foraging_for_work")
_SEEDS = (11, 12)
_FAULTS = (0, 2)


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec(
        name="determinism",
        models=_MODELS,
        seeds=_SEEDS,
        fault_counts=_FAULTS,
        config=_CONFIG,
        kind="table2",
    )


@pytest.fixture(scope="module")
def sequential_rows():
    """Table II rows off the plain seed path (no campaign machinery)."""
    results = {
        (model, faults): run_batch(
            model, _SEEDS, faults=faults, config=_CONFIG, processes=0
        )
        for model in _MODELS
        for faults in _FAULTS
    }
    return table2(results)


def test_cold_campaign_matches_sequential_rows(spec, sequential_rows):
    report = run_campaign(spec, processes=1)
    assert artifact(report) == sequential_rows


def test_parallel_campaign_matches_sequential_rows(spec, sequential_rows):
    report = run_campaign(spec, processes=2)
    assert artifact(report) == sequential_rows


def test_cache_hit_campaign_is_bit_identical(spec, sequential_rows,
                                             tmp_path):
    store = str(tmp_path)
    cold = run_campaign(spec, store=store, processes=2)
    warm = run_campaign(spec, store=store, processes=2)
    assert warm.executed == 0  # nothing recomputed
    assert artifact(warm) == artifact(cold) == sequential_rows


def test_interrupted_campaign_resumes_bit_identical(spec, sequential_rows,
                                                    tmp_path):
    from repro.campaign.store import ResultStore
    from repro.experiments.runner import run_single

    store_dir = str(tmp_path)
    descriptors = spec.expand()
    # First half of the sweep "already happened" before the interrupt.
    with ResultStore(store_dir) as store:
        for descriptor in descriptors[: len(descriptors) // 2]:
            store.save_result(descriptor, run_single(*descriptor.job()))
    resumed = run_campaign(spec, store=store_dir, processes=2)
    assert resumed.cached == len(descriptors) // 2
    assert resumed.executed == len(descriptors) - resumed.cached
    assert artifact(resumed) == sequential_rows
