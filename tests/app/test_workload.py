"""Tests for the fork-join workload logic."""

import pytest

from repro.app.taskgraph import TASK_BRANCH, TASK_SINK, TASK_SOURCE, \
    fork_join_graph
from repro.app.workload import ForkJoinWorkload
from repro.noc.packet import Packet
from repro.sim.engine import Simulator


class FakePE:
    def __init__(self, node_id, task_id, gen_seq=0):
        self.node_id = node_id
        self.task_id = task_id
        self._gen_seq = gen_seq


@pytest.fixture
def workload():
    sim = Simulator(seed=0)
    return ForkJoinWorkload(sim, fork_join_graph())


class TestServiceAndPeriods:
    def test_service_times_from_graph(self, workload):
        graph = workload.graph
        assert workload.service_time(TASK_BRANCH) == graph.task(
            TASK_BRANCH).service_us

    def test_generation_period_only_for_source(self, workload):
        assert workload.generation_period(TASK_SOURCE) == 4_000
        assert workload.generation_period(TASK_BRANCH) is None
        assert workload.generation_period(99) is None


class TestGeneration:
    def test_source_emits_branch_packets_cycling(self, workload):
        pe = FakePE(7, TASK_SOURCE)
        branches = []
        for seq in range(6):
            pe._gen_seq = seq
            (packet,) = workload.packets_for_generation(pe)
            branches.append((packet.instance, packet.branch))
            assert packet.dest_task == TASK_BRANCH
        assert branches == [
            ((7, 0), 0), ((7, 0), 1), ((7, 0), 2),
            ((7, 1), 0), ((7, 1), 1), ((7, 1), 2),
        ]

    def test_non_source_generates_nothing(self, workload):
        assert workload.packets_for_generation(FakePE(7, TASK_BRANCH)) == []

    def test_generation_stamps_deadline(self, workload):
        (packet,) = workload.packets_for_generation(FakePE(7, TASK_SOURCE))
        assert packet.deadline == workload.sim.now + workload.graph.task(
            TASK_SOURCE).deadline_us


class TestPipeline:
    def test_branch_execution_forwards_to_sink(self, workload):
        pe = FakePE(3, TASK_BRANCH)
        incoming = Packet(7, TASK_BRANCH, instance=(7, 0), branch=1)
        (out,) = workload.packets_after_execution(pe, incoming)
        assert out.dest_task == TASK_SINK
        assert out.instance == (7, 0)
        assert out.branch == 1

    def test_source_sinking_result_emits_nothing(self, workload):
        pe = FakePE(7, TASK_SOURCE)
        result = Packet(9, TASK_SOURCE, instance=(7, 0))
        assert workload.packets_after_execution(pe, result) == []


class TestJoin:
    def sink(self, workload, instance, branch, node=9):
        pe = FakePE(node, TASK_SINK)
        packet = Packet(3, TASK_SINK, instance=instance, branch=branch)
        return workload.packets_after_execution(pe, packet)

    def test_join_completes_after_all_branches(self, workload):
        assert self.sink(workload, (7, 0), 0) == []
        assert self.sink(workload, (7, 0), 1) == []
        out = self.sink(workload, (7, 0), 2)
        assert workload.joins == 1
        (result,) = out
        assert result.dest_task == TASK_SOURCE
        assert result.instance == (7, 0)

    def test_straggler_after_join_does_not_reopen_instance(self, workload):
        self.sink(workload, (7, 0), 0)
        self.sink(workload, (7, 0), 1)
        self.sink(workload, (7, 0), 2)
        assert workload.joins == 1
        # A diverted duplicate of branch 0 arrives after the join.
        assert self.sink(workload, (7, 0), 0) == []
        assert workload.joins == 1
        assert workload.pending_join_count == 0
        assert workload.duplicate_branches == 1

    def test_prune_also_forgets_completed_instances(self, workload):
        for branch in range(3):
            self.sink(workload, (7, 0), branch)
        self.sink(workload, (7, 100_000), 0)
        workload.prune_stale_joins(older_than_instances=50_000)
        # The ancient completed instance was forgotten...
        assert (7, 0) not in workload._completed_joins
        # ...so a ghost branch for it opens a (doomed) pending entry rather
        # than being mis-ascribed to the duplicate counter.
        self.sink(workload, (7, 0), 1)
        assert workload.pending_join_count == 2

    def test_duplicate_branch_not_double_counted(self, workload):
        self.sink(workload, (7, 0), 0)
        self.sink(workload, (7, 0), 0)
        assert workload.duplicate_branches == 1
        assert workload.pending_join_count == 1
        assert workload.joins == 0

    def test_branches_may_join_at_different_sinks(self, workload):
        self.sink(workload, (7, 0), 0, node=9)
        self.sink(workload, (7, 0), 1, node=11)
        self.sink(workload, (7, 0), 2, node=14)
        assert workload.joins == 1

    def test_interleaved_instances(self, workload):
        self.sink(workload, (7, 0), 0)
        self.sink(workload, (8, 0), 0)
        self.sink(workload, (7, 0), 1)
        self.sink(workload, (8, 0), 1)
        self.sink(workload, (8, 0), 2)
        assert workload.joins == 1
        assert workload.pending_join_count == 1

    def test_packet_without_instance_ignored(self, workload):
        pe = FakePE(9, TASK_SINK)
        packet = Packet(3, TASK_SINK, instance=None)
        assert workload.packets_after_execution(pe, packet) == []
        assert workload.joins == 0

    def test_prune_stale_joins(self, workload):
        self.sink(workload, (7, 0), 0)
        self.sink(workload, (7, 100_000), 0)
        pruned = workload.prune_stale_joins(older_than_instances=50_000)
        assert pruned == 1
        assert workload.pending_join_count == 1


class TestMulticast:
    """Behaviour of the SS V multicast generation mode, and its parity
    with the declarative ``fork_join`` spec's ``multicast`` field."""

    @pytest.fixture
    def multicast(self):
        sim = Simulator(seed=0)
        return ForkJoinWorkload(sim, fork_join_graph(), multicast=True)

    def test_generation_period_stretched_by_fork_width(self, multicast):
        assert multicast.generation_period(TASK_SOURCE) == 3 * 4_000

    def test_source_emits_whole_instance_per_tick(self, multicast):
        pe = FakePE(7, TASK_SOURCE)
        packets = multicast.packets_for_generation(pe)
        assert [(p.instance, p.branch) for p in packets] == [
            ((7, 0), 0), ((7, 0), 1), ((7, 0), 2),
        ]
        assert all(p.dest_task == TASK_BRANCH for p in packets)
        pe._gen_seq = 1
        packets = multicast.packets_for_generation(pe)
        assert all(p.instance == (7, 1) for p in packets)

    def test_spec_multicast_field_matches_legacy_emission(self, multicast):
        from repro.app.workloads import GraphWorkload, fork_join_spec

        graph = GraphWorkload(
            Simulator(seed=0), fork_join_spec(multicast=True)
        )
        assert graph.generation_period(TASK_SOURCE) \
            == multicast.generation_period(TASK_SOURCE)
        legacy = multicast.packets_for_generation(FakePE(7, TASK_SOURCE))
        spec = graph.packets_for_generation(FakePE(7, TASK_SOURCE))
        assert [
            (p.dest_task, p.instance, p.branch, p.deadline) for p in legacy
        ] == [
            (p.dest_task, p.instance, p.branch, p.deadline) for p in spec
        ]

    def test_multicast_off_by_default(self, workload):
        assert workload.multicast is False
        assert len(workload.packets_for_generation(FakePE(7, TASK_SOURCE))) \
            == 1


class TestStats:
    def test_stats_snapshot(self, workload):
        pe = FakePE(7, TASK_SOURCE)
        workload.packets_for_generation(pe)
        stats = workload.stats()
        assert stats["generated"] == 1
        assert stats["joins"] == 0
        assert TASK_BRANCH in stats["executions_by_task"]

    def test_executions_counted_per_task(self, workload):
        pe = FakePE(3, TASK_BRANCH)
        workload.packets_after_execution(
            pe, Packet(7, TASK_BRANCH, instance=(7, 0), branch=0)
        )
        assert workload.executions_by_task[TASK_BRANCH] == 1
