"""Closed-loop self-healing dynamics.

The paper's platform is *self-aware*: AIM monitors (temperature, node
frequency, watchdog signals) feed intelligence that actuates knobs
(frequency scaling, reset) to keep the system healthy.  The four
node-local dynamics models — :class:`~repro.node.thermal.ThermalModel`,
:class:`~repro.node.dvfs.FrequencyScaler`,
:class:`~repro.node.watchdog.Watchdog` and
:class:`~repro.noc.deadlock.DeadlockRecovery` — have been attached to
every node since the seed, but nothing closed the loop.  This module is
the monitor/actuator seam that does:

* **DVFS governors** (:data:`~repro.platform.config.GOVERNORS` config
  axis): a policy per node watches its temperature and throttles the
  frequency knob when it runs hot, which stretches service times
  through :meth:`~repro.node.dvfs.FrequencyScaler.scale_duration` — the
  first *feedback* fault, where the platform's own reaction is the
  perturbation.
* **Thermal storms** (scenario kind ``thermal_storm``): the fault
  injector pushes exogenous heat into victim nodes through
  :meth:`DynamicsController.inject_heat`, giving governors something to
  fight.
* **Watchdog-driven autonomous recovery** (``watchdog_recovery``
  config flag): when a node is fault-injected, the controller arms a
  check at the moment the node's watchdog would expire; if the node is
  still down it recovers it on its own — racing any scripted scenario
  recovery.  Recovery is idempotent (both paths go through
  ``ExperimentController.recover_node``, which is a no-op on a live
  node), so the loser of the race changes nothing.

Everything here is **event-driven, not per-tick**: governors evaluate on
the PE's ``on_execution_complete`` monitor event and on heat injection,
with one predicted cool-crossing wakeup per throttled node (closed-form
RC decay, so an idle throttled node restores without polling); watchdog
checks are scheduled once per kill at the exact expiry time.  A platform
with governor ``"none"`` and ``watchdog_recovery`` off registers no
observers and schedules no events — dynamics-free runs are byte-identical
to a build without this module.
"""


class ThresholdThrottleGovernor:
    """Naive bang-bang policy: throttle above ``hot_c``, restore at it.

    Both transitions trip on the same threshold, so a node hovering at
    the boundary chatters — which is exactly the pathology
    :class:`HysteresisGovernor` exists to fix.  Kept as the simplest
    sweepable baseline.
    """

    name = "threshold-throttle"

    def __init__(self, hot_c, throttle_mhz):
        self.hot_c = hot_c
        self.cool_target_c = hot_c
        self.throttle_mhz = throttle_mhz
        self.changes = 0

    def decide(self, now, temperature_c, throttled):
        """``"throttle"``, ``"restore"`` or ``None`` (hold)."""
        if not throttled and temperature_c > self.hot_c:
            self.changes += 1
            return "throttle"
        if throttled and temperature_c <= self.hot_c:
            self.changes += 1
            return "restore"
        return None

    def earliest_change_us(self, now):
        """First time a transition is permitted (no dwell: ``now``)."""
        return now


class HysteresisGovernor:
    """Two-threshold policy with a minimum dwell between changes.

    Throttles above ``hot_c``, restores only at or below ``cool_c``
    (< ``hot_c``), and refuses any transition within ``dwell_us`` of the
    previous one — so the frequency knob can never oscillate faster than
    the dwell time (pinned by the hypothesis property layer).
    """

    name = "hysteresis"

    def __init__(self, hot_c, cool_c, throttle_mhz, dwell_us):
        if not cool_c < hot_c:
            raise ValueError("cool_c must lie below hot_c")
        self.hot_c = hot_c
        self.cool_c = cool_c
        self.cool_target_c = cool_c
        self.throttle_mhz = throttle_mhz
        self.dwell_us = dwell_us
        self.changes = 0
        self._last_change_us = None

    def decide(self, now, temperature_c, throttled):
        """``"throttle"``, ``"restore"`` or ``None`` (hold / in dwell)."""
        if (
            self._last_change_us is not None
            and now - self._last_change_us < self.dwell_us
        ):
            return None
        if not throttled and temperature_c > self.hot_c:
            self._last_change_us = now
            self.changes += 1
            return "throttle"
        if throttled and temperature_c <= self.cool_c:
            self._last_change_us = now
            self.changes += 1
            return "restore"
        return None

    def earliest_change_us(self, now):
        """First time a transition is permitted again (dwell honoured)."""
        if self._last_change_us is None:
            return now
        return max(now, self._last_change_us + self.dwell_us)


def build_governor(config):
    """One fresh governor instance per node from the platform config.

    Returns ``None`` for governor ``"none"`` — no policy, no observers.
    """
    if config.dvfs_governor == "threshold-throttle":
        return ThresholdThrottleGovernor(
            hot_c=config.governor_hot_c,
            throttle_mhz=config.governor_throttle_mhz,
        )
    if config.dvfs_governor == "hysteresis":
        return HysteresisGovernor(
            hot_c=config.governor_hot_c,
            cool_c=config.governor_cool_c,
            throttle_mhz=config.governor_throttle_mhz,
            dwell_us=config.governor_dwell_us,
        )
    return None


class DynamicsController:
    """The platform's monitor/actuator loop (one per platform).

    Parameters
    ----------
    platform:
        The :class:`~repro.platform.centurion.CenturionPlatform` whose
        nodes this controller governs.
    """

    def __init__(self, platform):
        self.platform = platform
        config = platform.config
        self.governor_name = config.dvfs_governor
        self.watchdog_recovery = config.watchdog_recovery
        self.recovery_remap = config.recovery_remap
        #: Throttle transitions actuated across all nodes.
        self.throttle_events = 0
        #: Nodes recovered by the watchdog path (not scripted recovery).
        self.autonomous_recoveries = 0
        #: Recovered blank nodes re-tasked by the fault-aware remap.
        self.recovery_remaps = 0
        #: Per-node governor instances (empty with governor "none").
        self.governors = {}
        self._throttled = set()
        #: Per-node due time of the one outstanding cool-crossing check.
        self._next_check = {}
        #: Per-node due time of the one outstanding watchdog check.
        self._wd_due = {}
        if self.governor_name != "none":
            for node_id, pe in platform.pes.items():
                self.governors[node_id] = build_governor(config)
                pe.add_observer(self)

    # -- PE monitor events ---------------------------------------------------

    def on_execution_complete(self, pe, _task_id):
        """Monitor event: re-evaluate the node's governor while it works."""
        self._evaluate(pe.node_id)

    # -- thermal-storm actuation ---------------------------------------------

    def inject_heat(self, victims, heat_c):
        """Push ``heat_c`` °C of exogenous heat into each victim node.

        Heat lands on every victim's thermal model (dead silicon warms
        too); governors of live victims re-evaluate immediately, so an
        idle hot node throttles at injection time instead of waiting for
        its next execution.  Returns the heated node ids.
        """
        now = self.platform.sim.now
        heated = []
        for node_id in victims:
            pe = self.platform.pes[node_id]
            pe.thermal.inject_heat(now, heat_c)
            heated.append(node_id)
        if self.governors:
            for node_id in heated:
                self._evaluate(node_id)
        return heated

    # -- governor loop -------------------------------------------------------

    def _evaluate(self, node_id):
        """Run the node's governor once against its current temperature."""
        governor = self.governors.get(node_id)
        if governor is None:
            return
        platform = self.platform
        pe = platform.pes[node_id]
        if pe.halted:
            return
        now = platform.sim.now
        throttled = node_id in self._throttled
        action = governor.decide(
            now, pe.thermal.temperature(now), throttled
        )
        if action == "throttle":
            pe.frequency.set_frequency(governor.throttle_mhz)
            self._throttled.add(node_id)
            self.throttle_events += 1
            if platform.trace is not None:
                platform.trace.record(
                    now, "node_throttled", node=node_id,
                    mhz=pe.frequency.current_mhz,
                )
        elif action == "restore":
            pe.frequency.set_frequency(pe.frequency.nominal_mhz)
            self._throttled.discard(node_id)
            if platform.trace is not None:
                platform.trace.record(
                    now, "node_restored", node=node_id,
                    mhz=pe.frequency.current_mhz,
                )
        if node_id in self._throttled:
            self._schedule_cool_check(node_id, governor)

    def _schedule_cool_check(self, node_id, governor):
        """Arm one wakeup at the node's predicted cool-crossing.

        An idle throttled node completes no executions, so without this
        it would stay throttled forever.  The ETA is the closed-form RC
        decay to the governor's restore target, pushed past any dwell;
        heat added in the meantime simply re-evaluates and re-arms at
        the new (later) crossing.  At most one check is outstanding per
        node — a superseded due time makes the stale event a no-op.
        """
        sim = self.platform.sim
        pe = self.platform.pes[node_id]
        eta = pe.thermal.cooldown_eta_us(sim.now, governor.cool_target_c)
        if eta is None:
            # Restore target at/below ambient: unreachable by cooling;
            # the node re-evaluates on its next execution instead.
            return
        due = max(
            sim.now + max(1, eta),
            governor.earliest_change_us(sim.now),
            sim.now + 1,
        )
        pending = self._next_check.get(node_id)
        if pending is not None and sim.now < pending <= due:
            return  # an earlier (or equal) check is already armed
        self._next_check[node_id] = due
        sim.schedule_at(
            due,
            lambda n=node_id, t=due: self._cool_check(n, t),
            priority=sim.PRIORITY_CONTROL,
        )

    def _cool_check(self, node_id, due):
        """Cool-crossing wakeup: re-evaluate unless superseded."""
        if self._next_check.get(node_id) != due:
            return  # a later re-arm superseded this check
        del self._next_check[node_id]
        if node_id in self._throttled:
            self._evaluate(node_id)

    # -- watchdog-driven autonomous recovery ---------------------------------

    def note_node_recovered(self, node_id):
        """Recovery hook: a rebooted node re-enters governance fresh.

        A reboot returns the clock to nominal, so a node killed *while
        throttled* must not come back stuck at the throttle frequency
        with no cool-check armed (its pending check no-ops on a halted
        node).  Clearing the pending due time also turns any stale
        scheduled check into a no-op.

        With ``recovery_remap="fault-aware"`` the rebooted node — which
        comes back blank — is first assigned the task with the largest
        census deficit (see
        :func:`repro.app.workloads.policies.remap_for_recovery`), so
        repair does not wait on the intelligence models.
        """
        if self.recovery_remap != "none":
            self._remap_recovered(node_id)
        if not self.governors:
            return
        if node_id in self._throttled:
            pe = self.platform.pes[node_id]
            pe.frequency.set_frequency(pe.frequency.nominal_mhz)
            self._throttled.discard(node_id)
        self._next_check.pop(node_id, None)

    def _remap_recovered(self, node_id):
        """Fault-aware remap actuation: re-task a recovered blank node."""
        from repro.app.workloads.policies import remap_for_recovery

        pe = self.platform.pes[node_id]
        if pe.halted or pe.task_id is not None:
            return
        task_id = remap_for_recovery(self.platform, node_id)
        if task_id is None:
            return
        pe.set_task(task_id, reason="recovery-remap")
        self.recovery_remaps += 1

    def note_node_killed(self, node_id):
        """Fault-injection hook: arm a watchdog check for a killed node.

        The check lands exactly when the node's watchdog expires (one
        past ``last_kick + timeout``, never before the kill itself).  A
        node killed again after recovery re-arms; the superseded due
        time makes the earlier pending check a no-op.
        """
        if not self.watchdog_recovery:
            return
        sim = self.platform.sim
        watchdog = self.platform.pes[node_id].watchdog
        due = max(
            watchdog.last_kick + watchdog.timeout_us + 1, sim.now + 1
        )
        self._wd_due[node_id] = due
        sim.schedule_at(
            due,
            lambda n=node_id, t=due: self._watchdog_check(n, t),
            priority=sim.PRIORITY_CONTROL,
        )

    def _watchdog_check(self, node_id, due):
        """Observe the node's watchdog; recover it if it truly expired.

        Observation goes through ``Watchdog.check_and_count`` so the
        ``expirations`` counter records exactly the expiries the
        controller saw.  A node whose scripted recovery won the race
        re-kicked its watchdog on restart, so the check reads healthy
        and recovers nothing — recovery happens exactly once, at
        ``min(scripted, watchdog)`` time.
        """
        if self._wd_due.get(node_id) != due:
            return  # re-armed by a later kill; this check is stale
        del self._wd_due[node_id]
        platform = self.platform
        pe = platform.pes[node_id]
        if not pe.watchdog.check_and_count(platform.sim.now):
            return  # recovered (and re-kicked) before expiry
        if not pe.halted:
            return  # alive but silent: not this controller's call
        platform.controller.recover_node(node_id)
        self.autonomous_recoveries += 1
        if platform.trace is not None:
            platform.trace.record(
                platform.sim.now, "watchdog_recovery", node=node_id,
            )

    def __repr__(self):
        return (
            "DynamicsController(governor={!r}, throttled={}, "
            "throttle_events={}, autonomous_recoveries={})".format(
                self.governor_name, len(self._throttled),
                self.throttle_events, self.autonomous_recoveries,
            )
        )
