"""Store-v2 torture layer: property tests over the persistence formats.

Hypothesis drives synthetic record streams (no simulations — fast)
through the failure modes a long-lived multi-writer store actually
meets: torn and truncated appends, garbage lines interleaved with good
ones, duplicate keys, worker shard streams, index/row divergence, and
export round-trips.  The properties pinned here are the ones every
other layer (executor resume, cross-campaign dedup, gc) builds on:

* a reader never invents data — every loaded record byte-matches one
  that was written, no matter where a crash cut the file;
* the last complete write per key wins;
* any index/row divergence is repaired by ``gc --apply`` (rebuild);
* exported JSONL rows are byte-identical to store lines (lossless).
"""

import json
import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.gc import export_jsonl, gc_root, load_records, merged_records
from repro.campaign.index import StoreIndex, iter_jsonl
from repro.campaign.store import (
    ResultStore,
    encode_line,
    worker_results_file,
)

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Small key pool so duplicate-key (supersede) paths are actually hit.
pool_keys = st.sampled_from(["k{:02d}".format(i) for i in range(8)])
values = st.integers(min_value=-10**6, max_value=10**6)


def make_record(key, value=0):
    """A minimal record the full decode path accepts."""
    return {
        "key": key,
        "model": "none",
        "seed": 1,
        "faults": 0,
        "row": {
            "model": "none",
            "seed": 1,
            "faults": 0,
            "settling_time_ms": float(value),
            "settled_performance": float(value),
            "recovery_time_ms": 0.0,
            "recovered_performance": float(value),
            "total_switches": value,
        },
        "app_stats": {},
        "noc_stats": {},
        "total_switches": value,
        "series": None,
    }


def write_lines(path, lines):
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)


@given(writes=st.lists(st.tuples(pool_keys, values), max_size=30))
@SETTINGS
def test_duplicate_keys_last_write_wins(writes):
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "results.jsonl")
        write_lines(
            path,
            [encode_line(make_record(k, v)) + "\n" for k, v in writes],
        )
        store = ResultStore(directory)
        expected = dict(writes)  # dict() keeps the last value per key
        assert set(store.keys()) == set(expected)
        for key, value in expected.items():
            assert store.get(key)["total_switches"] == value


@given(
    keys=st.lists(
        st.text("abcdef0123456789", min_size=4, max_size=12),
        min_size=1, max_size=12, unique=True,
    ),
    data=st.data(),
)
@SETTINGS
def test_truncation_never_invents_records(keys, data):
    """A crash can cut the stream anywhere; the reader keeps exactly the
    complete prefix (± the final line when the cut lands on its closing
    brace) and never yields a record that was not written."""
    lines = [encode_line(make_record(k, i)) + "\n" for i, k in enumerate(keys)]
    blob = "".join(lines).encode("utf-8")
    cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "results.jsonl")
        with open(path, "wb") as handle:
            handle.write(blob[:cut])
        store = ResultStore(directory)
        consumed = 0
        fully_before = set()
        started_before = set()
        for key, line in zip(keys, lines):
            if consumed + len(line.encode("utf-8")) <= cut:
                fully_before.add(key)
            if consumed < cut:
                started_before.add(key)
            consumed += len(line.encode("utf-8"))
        loaded = set(store.keys())
        assert fully_before <= loaded <= started_before
        for key in loaded:
            assert store.get(key) == make_record(key, keys.index(key))


line_kinds = st.one_of(
    st.tuples(st.just("record"), pool_keys, values),
    st.tuples(st.just("garbage"),
              st.sampled_from(["not json at all", "[1, 2, 3]", "42",
                               '"just a string"', "{\"no\": \"key\"}"]),
              st.just(0)),
    st.tuples(st.just("blank"), st.just(""), st.just(0)),
)


@given(
    parts=st.lists(line_kinds, max_size=25),
    torn_tail=st.booleans(),
)
@SETTINGS
def test_interleaved_garbage_and_torn_tail_are_ignored(parts, torn_tail):
    lines = []
    expected = {}
    for kind, payload, value in parts:
        if kind == "record":
            lines.append(encode_line(make_record(payload, value)) + "\n")
            expected[payload] = value
        elif kind == "garbage":
            lines.append(payload + "\n")
        else:
            lines.append("\n")
    if torn_tail:
        lines.append('{"key": "torn-wr')  # interrupted append, no newline
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "results.jsonl")
        write_lines(path, lines)
        store = ResultStore(directory)
        assert set(store.keys()) == set(expected)
        for key, value in expected.items():
            assert store.get(key)["total_switches"] == value


@given(
    shards=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), pool_keys, values),
        max_size=24,
    ),
)
@SETTINGS
def test_worker_streams_merge_and_reconcile_losslessly(shards):
    """Records spread over main + worker streams read as one store, and
    reconcile folds them into results.jsonl without changing a byte of
    any surviving record line."""
    with tempfile.TemporaryDirectory() as directory:
        files = {}
        expected = {}
        for shard, key, value in shards:
            # Shard 0 is the main stream; worker shards get key-disjoint
            # namespaces, mirroring the executor's hash partition.
            if shard == 0:
                name = "results.jsonl"
            else:
                name = worker_results_file(shard)
                key = "w{}-{}".format(shard, key)
            files.setdefault(name, []).append(
                encode_line(make_record(key, value)) + "\n"
            )
            expected[key] = value
        for name, lines in files.items():
            write_lines(os.path.join(directory, name), lines)
        store = ResultStore(directory)
        assert {k: r["total_switches"] for k, r in
                ((k, store.get(k)) for k in store.keys())} == expected
        folded = store.reconcile()
        assert folded == sum(
            len(lines) for name, lines in files.items()
            if name != "results.jsonl"
        )
        assert not [
            name for name in os.listdir(directory)
            if name.startswith("results.worker-")
        ]
        reopened = ResultStore(directory)
        # Back to (at most) the single main stream.
        assert reopened.scans == (
            1 if os.path.exists(os.path.join(directory, "results.jsonl"))
            else 0
        )
        assert {k: reopened.get(k)["total_switches"]
                for k in reopened.keys()} == expected


corruptions = st.lists(
    st.sampled_from(
        ["shift_offsets", "wrong_campaign", "drop_index", "bogus_entry",
         "compact_rows", "append_unindexed", "truncate_index"]
    ),
    min_size=1, max_size=4,
)


@given(
    keys_a=st.lists(st.text("0123456789abcdef", min_size=6, max_size=6),
                    min_size=1, max_size=6, unique=True),
    keys_b=st.lists(st.text("ghijklmn", min_size=6, max_size=6),
                    min_size=1, max_size=6, unique=True),
    ops=corruptions,
)
@SETTINGS
def test_index_row_divergence_always_repaired_by_gc(keys_a, keys_b, ops):
    """However the index and the row files diverge, lookups never return
    wrong data, and ``gc --apply`` (rebuild) restores full consistency:
    every stored key indexed, every entry verifying."""
    with tempfile.TemporaryDirectory() as root:
        for name, keys in (("a", keys_a), ("b", keys_b)):
            directory = os.path.join(root, name)
            os.makedirs(directory)
            write_lines(
                os.path.join(directory, "results.jsonl"),
                [encode_line(make_record(k, i)) + "\n"
                 for i, k in enumerate(keys)],
            )
        index = StoreIndex(root)
        index.refresh()
        index_path = index.path
        for op in ops:
            present = os.path.exists(index_path)
            if op == "shift_offsets" and present:
                lines = []
                for _b, _e, rec in iter_jsonl(index_path):
                    if rec and "offset" in rec:
                        rec["offset"] += 3
                    if rec:
                        lines.append(json.dumps(rec) + "\n")
                write_lines(index_path, lines)
            elif op == "wrong_campaign" and present:
                lines = []
                for _b, _e, rec in iter_jsonl(index_path):
                    if rec and "key" in rec:
                        rec["campaign"] = "b" if rec["campaign"] == "a" else "a"
                    if rec:
                        lines.append(json.dumps(rec) + "\n")
                write_lines(index_path, lines)
            elif op == "drop_index" and present:
                os.remove(index_path)
            elif op == "bogus_entry":
                with open(index_path, "a") as handle:
                    handle.write('{"campaign": "a", "key": "zzzz", '
                                 '"offset": 999999}\n')
            elif op == "compact_rows":
                # Rewrite campaign a without its first record: every
                # offset into it is now stale.
                path = os.path.join(root, "a", "results.jsonl")
                rows = [r for _b, _e, r in iter_jsonl(path) if r]
                write_lines(
                    path, [encode_line(r) + "\n" for r in rows[1:]]
                )
            elif op == "append_unindexed":
                with open(os.path.join(root, "b", "results.jsonl"),
                          "a") as handle:
                    handle.write(
                        encode_line(make_record("fresh-row", 7)) + "\n"
                    )
            elif op == "truncate_index":
                if os.path.exists(index_path):
                    size = os.path.getsize(index_path)
                    with open(index_path, "rb+") as handle:
                        handle.truncate(size // 2)
            if not os.path.exists(index_path):
                continue
            # Diverged index: lookups may miss, but never lie.
            diverged = StoreIndex(root)
            for key in diverged.keys():
                record = diverged.lookup(key)
                assert record is None or record["key"] == key
        gc_root(root, apply=True)
        repaired = StoreIndex(root)
        stored = set()
        for name in ("a", "b"):
            records, _stats = load_records(os.path.join(root, name))
            stored |= set(records)
        assert set(repaired.keys()) >= stored
        for key in stored:
            assert repaired.lookup(key)["key"] == key
        assert repaired.stale_keys() == []


@given(
    spread=st.lists(
        st.tuples(st.sampled_from(["alpha", "beta"]), pool_keys, values),
        max_size=20,
    ),
)
@SETTINGS
def test_export_jsonl_rows_round_trip_byte_identically(spread):
    with tempfile.TemporaryDirectory() as root:
        per_dir = {}
        for name, key, value in spread:
            per_dir.setdefault(name, []).append(
                encode_line(make_record(key, value)) + "\n"
            )
        for name, lines in per_dir.items():
            directory = os.path.join(root, name)
            os.makedirs(directory)
            write_lines(os.path.join(directory, "results.jsonl"), lines)
        dirs = [os.path.join(root, n) for n in sorted(per_dir)]
        merged = merged_records(dirs)

        class Sink:
            def __init__(self):
                self.chunks = []

            def write(self, chunk):
                self.chunks.append(chunk)

        sink = Sink()
        count = export_jsonl(merged, sink)
        exported = "".join(sink.chunks).splitlines()
        assert count == len(merged) == len(exported)
        # Byte-identity: every exported line is exactly a store line.
        store_lines = set()
        for name in per_dir:
            with open(os.path.join(root, name, "results.jsonl")) as handle:
                store_lines.update(line.rstrip("\n") for line in handle)
        assert set(exported) <= store_lines
        # Losslessness: parsing the export reproduces the merged records.
        assert {json.loads(line)["key"]: json.loads(line)
                for line in exported} == {
                    key: record for key, (_c, record) in merged.items()
                }
