"""Tests for task graphs."""

import pytest

from repro.app.taskgraph import (
    TASK_BRANCH,
    TASK_SINK,
    TASK_SOURCE,
    Task,
    TaskGraph,
    fork_join_graph,
)


class TestTask:
    def test_source_detection(self):
        source = Task(1, "src", service_us=10, generation_period_us=100)
        sink = Task(2, "sink", service_us=10)
        assert source.is_source
        assert not sink.is_source

    def test_invalid_service_rejected(self):
        with pytest.raises(ValueError):
            Task(1, "x", service_us=0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            Task(1, "x", service_us=10, generation_period_us=0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Task(1, "x", service_us=10, weight=-1)


class TestTaskGraph:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph([Task(1, "a", 10), Task(1, "b", 10)])

    def test_dangling_downstream_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph([Task(1, "a", 10, downstream=9)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph([])

    def test_lookup(self):
        graph = TaskGraph([Task(1, "a", 10), Task(2, "b", 20)])
        assert graph.task(2).name == "b"
        assert graph.task_ids() == [1, 2]


class TestForkJoinGraph:
    def test_paper_ratio_1_3_1(self):
        graph = fork_join_graph()
        assert graph.weights() == {
            TASK_SOURCE: 1,
            TASK_BRANCH: 3,
            TASK_SINK: 1,
        }
        assert graph.total_weight() == 5

    def test_paper_generation_period(self):
        graph = fork_join_graph()
        assert graph.task(TASK_SOURCE).generation_period_us == 4_000

    def test_pipeline_wiring(self):
        graph = fork_join_graph()
        assert graph.task(TASK_SOURCE).downstream == TASK_BRANCH
        assert graph.task(TASK_BRANCH).downstream == TASK_SINK
        # The join result feeds back to the source task (closed loop).
        assert graph.task(TASK_SINK).downstream == TASK_SOURCE
        assert graph.task(TASK_SINK).emits_on_join

    def test_fork_width_sets_branch_weight(self):
        graph = fork_join_graph(fork_width=4)
        assert graph.fork_width == 4
        assert graph.task(TASK_BRANCH).weight == 4

    def test_only_source_generates(self):
        graph = fork_join_graph()
        assert [t.task_id for t in graph.sources()] == [TASK_SOURCE]
