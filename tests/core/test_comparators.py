"""Tests for vector-match comparators."""

from repro.core.comparators import VectorMatchComparator
from repro.core.spikes import SpikeIntegrator


def test_fires_on_match_only():
    comparator = VectorMatchComparator(pattern=2)
    integrator = SpikeIntegrator()
    comparator.output.connect(integrator.spike)
    assert comparator.present(2)
    assert not comparator.present(3)
    assert integrator.read() == 1


def test_match_statistics():
    comparator = VectorMatchComparator(pattern=2)
    for value in (1, 2, 2, 3):
        comparator.present(value)
    assert comparator.presentations == 4
    assert comparator.matches == 2
    assert comparator.match_rate == 0.5


def test_match_rate_zero_when_unused():
    assert VectorMatchComparator(pattern=1).match_rate == 0.0


def test_mask_applied_before_comparison():
    comparator = VectorMatchComparator(pattern=0x02, mask=lambda v: v & 0x0F)
    assert comparator.present(0xF2)
    assert not comparator.present(0xF3)


def test_payload_defaults_to_matched_value():
    comparator = VectorMatchComparator(pattern="task-a")
    seen = []
    comparator.output.connect(seen.append)
    comparator.present("task-a")
    assert seen == ["task-a"]


def test_explicit_payload_forwarded():
    comparator = VectorMatchComparator(pattern=1)
    seen = []
    comparator.output.connect(seen.append)
    comparator.present(1, payload={"extra": True})
    assert seen == [{"extra": True}]
