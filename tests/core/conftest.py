"""Fixtures for core (intelligence) tests."""

import pytest

from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


@pytest.fixture
def small_platform():
    """A 4x4 platform with no intelligence, for monitor/knob wiring tests."""
    return CenturionPlatform(
        PlatformConfig.small(), model_name="none", seed=99
    )


class StubRouter:
    """Router stand-in for model unit tests."""

    def __init__(self):
        self.recent_tasks = []


class StubMonitors:
    def __init__(self, values=None):
        self.values = values or {}

    def read(self, name):
        return self.values[name]


class StubAim:
    """AIM stand-in: just enough surface for model unit tests."""

    def __init__(self, sim, node_id=0, task=1, neighbor_tasks=None):
        self.sim = sim
        self.node_id = node_id
        self._task = task
        self.router = StubRouter()
        self.monitors = StubMonitors(
            {"neighbor_tasks": neighbor_tasks or {}}
        )
        self.switches = []

    def current_task(self):
        return self._task

    def switch_task(self, task_id):
        self.switches.append((self.sim.now, task_id))
        self._task = task_id
        return task_id


@pytest.fixture
def stub_aim(sim):
    return StubAim(sim)
