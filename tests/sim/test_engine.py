"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import EventQueue, SimulationError


class TestEventQueue:
    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(30, 10, lambda: order.append("c"))
        queue.push(10, 10, lambda: order.append("a"))
        queue.push(20, 10, lambda: order.append("b"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert order == ["a", "b", "c"]

    def test_same_time_breaks_ties_by_priority(self):
        queue = EventQueue()
        queue.push(10, 20, None)
        high = queue.push(10, 0, None)
        assert queue.pop() is high

    def test_same_time_same_priority_is_fifo(self):
        queue = EventQueue()
        first = queue.push(10, 10, None)
        second = queue.push(10, 10, None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(10, 10, None)
        survivor = queue.push(20, 10, None)
        event.cancel()
        assert queue.pop() is survivor

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_time_skips_tombstones(self):
        queue = EventQueue()
        dead = queue.push(5, 10, None)
        queue.push(8, 10, None)
        dead.cancel()
        assert queue.peek_time() == 8

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_len_counts_entries_including_tombstones(self):
        queue = EventQueue()
        event = queue.push(1, 10, None)
        queue.push(2, 10, None)
        event.cancel()
        assert len(queue) == 2

    def test_compaction_reclaims_tombstone_heavy_heap(self):
        queue = EventQueue()
        doomed = [
            queue.push(t, 10, None)
            for t in range(2 * EventQueue.COMPACT_MIN_TOMBSTONES)
        ]
        survivors = [queue.push(10_000 + t, 10, None) for t in range(5)]
        for event in doomed:
            event.cancel()
        # The cancellation burst crossed the threshold on a mostly-dead
        # heap, so a rebuild fired mid-burst: the heap stays bounded well
        # below the full push count instead of accumulating every corpse.
        assert len(queue) < len(doomed) + len(survivors)
        assert len(queue) <= 2 * (queue._tombstones + len(survivors))
        assert [queue.pop() for _ in range(5)] == survivors
        assert queue.pop() is None

    def test_compaction_waits_while_heap_is_mostly_live(self):
        queue = EventQueue()
        doomed = [
            queue.push(t, 10, None)
            for t in range(EventQueue.COMPACT_MIN_TOMBSTONES)
        ]
        live = [
            queue.push(10_000 + t, 10, None)
            for t in range(3 * EventQueue.COMPACT_MIN_TOMBSTONES)
        ]
        for event in doomed:
            event.cancel()
        # Tombstones are above the count threshold but under half the
        # heap: the rebuild is deferred, entries stay put.
        assert len(queue) == len(doomed) + len(live)
        assert queue.pop() is live[0]

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        event = queue.push(1, 10, None)
        event.cancel()
        event.cancel()
        assert queue._tombstones == 1


class TestSimulator:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_schedule_advances_clock_to_event_time(self, sim):
        seen = []
        sim.schedule(50, lambda: seen.append(sim.now))
        sim.run_until(100)
        assert seen == [50]

    def test_clock_lands_on_horizon_when_queue_drains(self, sim):
        sim.schedule(10, lambda: None)
        sim.run_until(500)
        assert sim.now == 500

    def test_events_at_horizon_execute(self, sim):
        seen = []
        sim.schedule(100, lambda: seen.append("x"))
        sim.run_until(100)
        assert seen == ["x"]

    def test_events_beyond_horizon_do_not_execute(self, sim):
        seen = []
        sim.schedule(101, lambda: seen.append("x"))
        sim.run_until(100)
        assert seen == []
        # ... but remain queued for a later run.
        sim.run_until(200)
        assert seen == ["x"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run_until(10)
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_cancel_prevents_execution(self, sim):
        seen = []
        event = sim.schedule(10, lambda: seen.append("x"))
        event.cancel()
        sim.run_until(100)
        assert seen == []

    def test_events_can_schedule_more_events(self, sim):
        seen = []

        def first():
            sim.schedule(5, lambda: seen.append(sim.now))

        sim.schedule(10, first)
        sim.run_until(100)
        assert seen == [15]

    def test_priority_orders_same_tick_events(self, sim):
        order = []
        sim.schedule(10, lambda: order.append("normal"),
                     priority=sim.PRIORITY_NORMAL)
        sim.schedule(10, lambda: order.append("control"),
                     priority=sim.PRIORITY_CONTROL)
        sim.schedule(10, lambda: order.append("sample"),
                     priority=sim.PRIORITY_SAMPLE)
        sim.run_until(10)
        assert order == ["control", "normal", "sample"]

    def test_step_dispatches_single_event(self, sim):
        seen = []
        sim.schedule(5, lambda: seen.append("a"))
        sim.schedule(6, lambda: seen.append("b"))
        sim.step()
        assert seen == ["a"]

    def test_step_on_empty_queue_returns_none(self, sim):
        assert sim.step() is None

    def test_dispatched_events_counted(self, sim):
        for delay in (1, 2, 3):
            sim.schedule(delay, lambda: None)
        sim.run_until(10)
        assert sim.dispatched_events == 3

    def test_run_until_is_not_reentrant(self, sim):
        def nested():
            sim.run_until(50)

        sim.schedule(10, nested)
        with pytest.raises(SimulationError):
            sim.run_until(20)

    def test_repeated_run_until_continues(self, sim):
        seen = []
        sim.schedule(10, lambda: seen.append(1))
        sim.schedule(30, lambda: seen.append(2))
        sim.run_until(20)
        assert seen == [1]
        sim.run_until(40)
        assert seen == [1, 2]


class TestBulkAndFastScheduling:
    def test_schedule_many_preserves_list_order_on_ties(self, sim):
        order = []
        sim.schedule_many(
            [(5, lambda i=i: order.append(i)) for i in range(6)]
        )
        sim.run_until(10)
        assert order == [0, 1, 2, 3, 4, 5]

    def test_schedule_many_interleaves_with_single_schedules(self, sim):
        order = []
        sim.schedule(5, lambda: order.append("single-first"))
        sim.schedule_many(
            [
                (5, lambda: order.append("bulk-a")),
                (3, lambda: order.append("early")),
                (5, lambda: order.append("bulk-b")),
            ]
        )
        sim.schedule(5, lambda: order.append("single-last"))
        sim.run_until(10)
        assert order == [
            "early", "single-first", "bulk-a", "bulk-b", "single-last",
        ]

    def test_schedule_many_large_batch_heapify_path(self, sim):
        # Batch much larger than the existing heap exercises the O(n)
        # heapify branch; dispatch order must still be (time, seq).
        seen = []
        sim.schedule(2, lambda: seen.append(-1))
        pairs = [
            (1000 - i, lambda i=i: seen.append(i)) for i in range(200)
        ]
        handles = sim.schedule_many(pairs)
        assert len(handles) == 200
        sim.run_until(2000)
        assert seen == [-1] + list(range(199, -1, -1))

    def test_schedule_many_handles_cancel(self, sim):
        seen = []
        handles = sim.schedule_many(
            [(4, lambda: seen.append("a")), (5, lambda: seen.append("b"))]
        )
        handles[1].cancel()
        sim.run_until(10)
        assert seen == ["a"]

    def test_schedule_many_rejects_negative_delay(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_many([(1, lambda: None), (-2, lambda: None)])

    def test_schedule_many_at_absolute_times(self, sim):
        order = []
        sim.schedule_many_at(
            [(7, lambda: order.append("b")), (3, lambda: order.append("a"))]
        )
        sim.run_until(10)
        assert order == ["a", "b"]

    def test_schedule_many_at_rejects_past(self, sim):
        sim.schedule(10, lambda: None)
        sim.run_until(10)
        with pytest.raises(SimulationError):
            sim.schedule_many_at([(5, lambda: None)])

    def test_post_fires_without_handle(self, sim):
        seen = []
        assert sim.post(5, lambda: seen.append(sim.now)) is None
        sim.run_until(10)
        assert seen == [5]

    def test_post_rejects_negative_delay(self, sim):
        with pytest.raises(SimulationError):
            sim.post(-1, lambda: None)


class TestTryAdvance:
    def test_requires_active_run(self, sim):
        assert sim.try_advance(5) is False

    def test_advances_when_nothing_pending_before(self, sim):
        observed = []

        def probe():
            observed.append(sim.try_advance(50))
            observed.append(sim.now)

        sim.schedule(10, probe)
        sim.run_until(100)
        assert observed == [True, 50]

    def test_blocked_by_earlier_pending_event(self, sim):
        observed = []

        def probe():
            observed.append(sim.try_advance(50))
            observed.append(sim.now)

        sim.schedule(10, probe)
        sim.schedule(30, lambda: None)
        sim.run_until(100)
        assert observed == [False, 10]

    def test_blocked_by_same_time_pending_event(self, sim):
        observed = []
        sim.schedule(10, lambda: observed.append(sim.try_advance(50)))
        sim.schedule(50, lambda: None)
        sim.run_until(100)
        assert observed == [False]

    def test_cancelled_head_does_not_block(self, sim):
        observed = []
        sim.schedule(10, lambda: observed.append(sim.try_advance(50)))
        blocker = sim.schedule(30, lambda: None)
        blocker.cancel()
        sim.run_until(100)
        assert observed == [True]

    def test_blocked_beyond_horizon(self, sim):
        observed = []
        sim.schedule(10, lambda: observed.append(sim.try_advance(150)))
        sim.run_until(100)
        assert observed == [False]
        assert sim.now == 100


class TestPhantomTombstones:
    """Regression: cancelling an already-dispatched event is a no-op.

    Before the fix, ``Event.cancel()`` after dispatch still incremented
    ``EventQueue._tombstones`` (the handle kept its queue link), so the
    counter drifted above the number of dead entries actually in the heap
    and later real cancels triggered spurious O(n) compactions of
    mostly-live heaps.  The pop sites now sever the link, making the
    counter exact: it always equals the live tombstone population.
    """

    def test_cancel_after_queue_pop_is_a_counter_noop(self):
        queue = EventQueue()
        event = queue.push(10, 10, lambda: None)
        assert queue.pop() is event
        event.cancel()
        assert event.cancelled
        assert queue._tombstones == 0

    def test_cancel_after_run_until_dispatch_is_a_counter_noop(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        handles = [sim.schedule(t, lambda: None) for t in range(100)]
        sim.run_until(200)
        for handle in handles:
            handle.cancel()
        assert sim._queue._tombstones == 0

    def test_counter_tracks_live_tombstones_exactly(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        queue = sim._queue
        dispatched = [sim.schedule(t, lambda: None) for t in range(10)]
        pending = [sim.schedule(500 + t, lambda: None) for t in range(10)]
        sim.run_until(100)
        for handle in dispatched:
            handle.cancel()  # late cancels: must not count
        for handle in pending[:4]:
            handle.cancel()  # real tombstones in the heap
        live = sum(
            1 for entry in queue._heap
            if entry[3] is not None and entry[3].cancelled
        )
        assert queue._tombstones == live == 4

    def test_try_advance_tombstone_skip_severs_the_link(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        blocker = sim.schedule(30, lambda: None)
        blocker.cancel()
        outcome = []
        sim.schedule(10, lambda: outcome.append(sim.try_advance(50)))
        sim.run_until(100)
        assert outcome == [True]
        blocker.cancel()  # second cancel of a popped handle: no phantom
        assert sim._queue._tombstones == 0

    def test_peek_time_tombstone_skip_severs_the_link(self):
        queue = EventQueue()
        dead = queue.push(10, 10, lambda: None)
        queue.push(20, 10, lambda: None)
        dead.cancel()
        assert queue.peek_time() == 20
        dead.cancel()
        dead.cancelled = False
        dead.cancel()  # even a forced re-cancel cannot reach the queue
        assert queue._tombstones == 0

    def test_no_spurious_compaction_from_phantom_counts(self):
        """100 late cancels must not push a live heap into compaction."""
        from repro.sim.engine import Simulator

        sim = Simulator()
        early = [sim.schedule(t, lambda: None) for t in range(100)]
        sim.run_until(150)
        live = [sim.schedule(1000 + t, lambda: None) for t in range(100)]
        for handle in early:
            handle.cancel()
        # One real cancel: with phantom counts this used to cross the
        # 64-tombstone threshold and rebuild a 99%-live heap.
        live[0].cancel()
        queue = sim._queue
        assert queue._tombstones == 1
        assert len(queue._heap) == 100
