"""Declarative workload library.

This package makes the application a sweepable axis, the way faults
became one with :class:`~repro.platform.scenario.FaultScenario`:

* :mod:`~repro.app.workloads.spec` — the JSON-loadable, content-hashed
  :class:`WorkloadSpec` (tasks, edges with fanout, joins, per-task
  service distributions) plus built-in specs (``fork_join``,
  ``pipeline3``, ``shuffle2x2``) and worked JSON examples;
* :mod:`~repro.app.workloads.arrivals` — time-varying arrival shapes
  (constant / burst trains / diurnal curves) drawn from the dedicated
  ``workload-arrival`` RNG stream;
* :mod:`~repro.app.workloads.compiler` — spec -> executable graph
  program (join widths, branch numbering, cycle validation,
  steady-state rates for the capacity lint);
* :mod:`~repro.app.workloads.interpreter` — :class:`GraphWorkload`,
  the generalised runtime, bit-identical to the legacy
  :class:`~repro.app.workload.ForkJoinWorkload` on the built-in
  ``fork_join`` spec;
* :mod:`~repro.app.workloads.protocol` — the :class:`Workload` base
  both runtimes share;
* :mod:`~repro.app.workloads.policies` — the mapping-strategy registry
  (``random`` / ``balanced`` / ``clustered`` / ``load_aware``) and the
  ``fault-aware`` recovery-remap hook on the dynamics seam.

Entry points: ``run --workload FILE`` and the ``workload FILE`` lint in
:mod:`repro.experiments.cli`; the ``workloads:`` campaign axis in
:mod:`repro.campaign.spec` (hash contract: a cell's key embeds
``WorkloadSpec.canonical()`` only when a workload is present, so every
pre-workload cell key is byte-conserved).
"""

from repro.app.workloads.arrivals import (
    ARRIVAL_SHAPES,
    ARRIVAL_STREAM,
    SERVICE_STREAM,
    ArrivalSpec,
)
from repro.app.workloads.compiler import (
    CompiledWorkload,
    WorkloadGraphError,
    capacity_report,
    compile_workload,
)
from repro.app.workloads.interpreter import GraphWorkload
from repro.app.workloads.policies import (
    MAPPING_POLICIES,
    RECOVERY_REMAPS,
    apply_mapping,
    mapping_policy,
    remap_for_recovery,
)
from repro.app.workloads.protocol import Workload
from repro.app.workloads.spec import (
    BUILTIN_WORKLOADS,
    EdgeSpec,
    TaskSpec,
    WorkloadSpec,
    fork_join_spec,
    load_workload,
    pipeline_spec,
    shuffle_spec,
)

__all__ = [
    "ARRIVAL_SHAPES",
    "ARRIVAL_STREAM",
    "SERVICE_STREAM",
    "ArrivalSpec",
    "BUILTIN_WORKLOADS",
    "CompiledWorkload",
    "EdgeSpec",
    "GraphWorkload",
    "MAPPING_POLICIES",
    "RECOVERY_REMAPS",
    "TaskSpec",
    "Workload",
    "WorkloadGraphError",
    "WorkloadSpec",
    "apply_mapping",
    "capacity_report",
    "compile_workload",
    "fork_join_spec",
    "load_workload",
    "mapping_policy",
    "pipeline_spec",
    "remap_for_recovery",
    "shuffle_spec",
]
