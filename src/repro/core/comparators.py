"""Vector-match comparators.

The PicoBlaze platform provides "logical comparators that generate impulses
when vector inputs match" (paper §III-C).  A comparator watches a vector
input (e.g. the destination-task field of a routed packet header) and fires
its output impulse line when the input matches its pattern — this is how
one routing-event monitor is demultiplexed into per-task impulse streams
for the Network Interaction model's per-task thresholders.
"""

from repro.core.spikes import ImpulseLine


class VectorMatchComparator:
    """Fires an impulse when the presented vector equals the pattern.

    Parameters
    ----------
    pattern:
        Value to match (any equality-comparable object; in hardware this is
        a bit vector such as a task id field).
    mask:
        Optional callable applied to presented values before comparison,
        modelling a bit mask (e.g. ``lambda v: v & 0x0F``).
    name:
        Label for the output line.
    """

    def __init__(self, pattern, mask=None, name=None):
        self.pattern = pattern
        self.mask = mask
        self.output = ImpulseLine(
            name if name is not None else "match({!r})".format(pattern)
        )
        self.presentations = 0
        self.matches = 0

    def present(self, value, payload=None):
        """Present a vector; fires the output on match.

        Returns True on a match.  The impulse payload defaults to the
        matched value so downstream logic can stay generic.
        """
        self.presentations += 1
        candidate = self.mask(value) if self.mask is not None else value
        if candidate == self.pattern:
            self.matches += 1
            self.output.fire(value if payload is None else payload)
            return True
        return False

    @property
    def match_rate(self):
        """Fraction of presentations that matched (0.0 when unused)."""
        if self.presentations == 0:
            return 0.0
        return self.matches / self.presentations

    def __repr__(self):
        return "VectorMatchComparator(pattern={!r}, {}/{} matched)".format(
            self.pattern, self.matches, self.presentations
        )
