"""Adaptive-threshold Network Interaction (paper §V extension).

"Many of the models shown in Figure 1 feature mechanisms for adaptive
thresholds, which are not yet considered in this paper."  This model adds
the mechanism to the Network Interaction scheme: instead of one fixed
switching threshold for every node, each node scales its threshold with
the traffic rate its router actually sees.

Rationale: with a fixed threshold, a node on a trunk corridor crosses it in
milliseconds (constant churn) while a node in a quiet corner never crosses
it at all (inert).  Normalising the threshold to the locally observed rate
makes the switching decision mean the same thing everywhere: "a clearly
disproportionate share of the traffic I route is for task T".

Implementation: an exponential moving average of routed packets per tick
sets the threshold once per tick to
``clamp(rate_ema × window_ticks, min_threshold, max_threshold)`` on every
task thresholder; the decision circuit itself is the unchanged NI pathway.
"""

from repro.core.models.base import FACTORS
from repro.core.models.network_interaction import NetworkInteractionModel


class AdaptiveNetworkInteractionModel(NetworkInteractionModel):
    """NI with traffic-rate-normalised switching thresholds.

    Parameters
    ----------
    window_ticks:
        The threshold corresponds to this many ticks' worth of average
        traffic concentrated on one task.
    ema_alpha:
        Smoothing factor of the per-tick rate estimate.
    min_threshold / max_threshold:
        Clamp range for the adapted threshold.
    """

    name = "adaptive_network_interaction"
    model_number = 6
    factors = NetworkInteractionModel.factors | frozenset(
        {FACTORS.EXPERIENCE}
    )

    def __init__(self, task_ids, threshold=24, window_ticks=12,
                 ema_alpha=0.2, min_threshold=6, max_threshold=512):
        super().__init__(task_ids, threshold=threshold)
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        if min_threshold < 1 or max_threshold < min_threshold:
            raise ValueError("invalid threshold clamp range")
        self.window_ticks = window_ticks
        self.ema_alpha = ema_alpha
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.rate_ema = 0.0
        self._events_this_tick = 0

    def on_packet_routed(self, aim, packet, to_internal, injected):
        """Count the event into the rate estimate, then act as NI."""
        if not injected:
            self._events_this_tick += 1
        super().on_packet_routed(aim, packet, to_internal, injected)

    def on_tick(self, aim, now):
        """Update the rate EMA and re-normalise every threshold."""
        self.rate_ema += self.ema_alpha * (
            self._events_this_tick - self.rate_ema
        )
        self._events_this_tick = 0
        adapted = int(round(self.rate_ema * self.window_ticks))
        adapted = max(self.min_threshold, min(self.max_threshold, adapted))
        if adapted != self.threshold:
            self.threshold = adapted
            for unit in self.pathway.thresholds.values():
                unit.set_threshold(adapted)

    def next_wakeup(self, now):
        """Back to periodic: the EMA decays every tick, unlike plain NI."""
        return None

    @property
    def current_threshold(self):
        """The threshold currently applied to every task unit."""
        return self.threshold
