"""Smoke tests: the example scripts must run to completion.

The two full-Centurion examples (fault_tolerance, task_allocation) take
several seconds each and are exercised by the figure/table benches, so
only the fast examples run here.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Initial task census" in out
    assert "Node 5 monitors" in out
    assert "Controller debug read" in out


def test_model_taxonomy(capsys):
    out = run_example("model_taxonomy.py", capsys)
    assert "Figure 1 factor taxonomy" in out
    assert "foraging_for_work" in out
    assert "network_interaction" in out
    # All nine factors printed.
    for factor in ("location", "nestmates", "ontogeny", "experience"):
        assert factor in out


def test_custom_intelligence(capsys):
    out = run_example("custom_intelligence.py", capsys)
    assert "thermal_foraging" in out
    assert "joins completed" in out


@pytest.mark.slow
def test_task_allocation(capsys):
    out = run_example("task_allocation.py", capsys)
    assert "Settling from the same random" in out


@pytest.mark.slow
def test_fault_tolerance(capsys):
    out = run_example("fault_tolerance.py", capsys)
    assert "retained" in out
