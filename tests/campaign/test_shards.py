"""Distributed worker shards: partition, concurrency, reconciliation.

Two workers draining disjoint shards of one campaign — each opened
before the other wrote anything, exactly like concurrent processes on a
shared filesystem — must produce the same merged ``results.jsonl``
content (order-insensitive) as a single sequential run.
"""

import os

import pytest

from repro.campaign.executor import run_campaign, shard_of
from repro.campaign.paper import artifact
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import RESULTS_FILE, ResultStore
from repro.platform.config import PlatformConfig

_CONFIG = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)


@pytest.fixture
def spec():
    return CampaignSpec(
        name="shard-test",
        models=("none", "foraging_for_work"),
        seeds=(1, 2),
        fault_counts=(0, 2),
        config=_CONFIG,
    )


def _lines(directory):
    with open(os.path.join(directory, RESULTS_FILE)) as handle:
        return sorted(line.rstrip("\n") for line in handle if line.strip())


def test_shard_of_partitions_all_keys(spec):
    keys = [descriptor.key() for descriptor in spec.expand()]
    for workers in (2, 3, 5):
        shards = [shard_of(key, workers) for key in keys]
        assert all(0 <= shard < workers for shard in shards)
        # Same key, same shard — on any worker, any machine.
        assert shards == [shard_of(key, workers) for key in keys]


def test_two_workers_merge_bit_identical_to_sequential(spec, tmp_path):
    sequential_dir = str(tmp_path / "sequential")
    shard_dir = str(tmp_path / "sharded")
    sequential = run_campaign(spec, store=sequential_dir, processes=0)

    # Both stores open *before* either worker runs: neither sees the
    # other's rows, like two machines starting simultaneously.
    store0 = ResultStore(shard_dir, worker=0)
    store1 = ResultStore(shard_dir, worker=1)
    report0 = run_campaign(spec, store=store0, processes=0,
                           workers=2, worker_id=0)
    report1 = run_campaign(spec, store=store1, processes=0,
                           workers=2, worker_id=1)
    store0.close()
    store1.close()

    # Disjoint shards covering the grid.
    assert report0.executed + report1.executed == spec.size()
    assert report0.pending_elsewhere == report1.executed
    assert report1.pending_elsewhere == report0.executed

    merged = ResultStore(shard_dir)
    assert merged.reconcile() == spec.size()
    # Order-insensitive byte identity with the sequential store.
    assert sorted(_lines(shard_dir)) == sorted(_lines(sequential_dir))

    # A merge pass over the reconciled store recomputes nothing and
    # reassembles the full grid bit-identically.
    final = run_campaign(spec, store=shard_dir, processes=0)
    assert final.executed == 0
    assert [r.as_row() for r in final.results] == [
        r.as_row() for r in sequential.results
    ]


def test_worker_results_survive_without_reconcile(spec, tmp_path):
    """Merged-on-read: the main stream is not required to see shards."""
    store = ResultStore(str(tmp_path), worker=3)
    run_campaign(spec, store=store, processes=0, workers=4, worker_id=3)
    store.close()
    reader = ResultStore(str(tmp_path))
    mine = [
        descriptor.key() for descriptor in spec.expand()
        if shard_of(descriptor.key(), 4) == 3
    ]
    assert set(reader.keys()) == set(mine)


def test_only_worker_zero_persists_index_entries(spec, tmp_path):
    """A fleet must not append the same index backlog N times: workers
    other than 0 refresh the dedup index in memory only."""
    root = str(tmp_path)
    seed_dir = os.path.join(root, "seed")
    run_campaign(spec, store=seed_dir, processes=0)
    index_path = os.path.join(root, "index.jsonl")

    other = CampaignSpec(
        name="other", models=("none",), seeds=(1,), fault_counts=(0, 2),
        config=_CONFIG,
    )
    store1 = ResultStore(os.path.join(root, "other"), worker=1)
    run_campaign(other, store=store1, processes=0, workers=2, worker_id=1,
                 dedup_root=root)
    store1.close()
    assert not os.path.exists(index_path)  # non-zero worker: memory only

    store0 = ResultStore(os.path.join(root, "other"), worker=0)
    run_campaign(other, store=store0, processes=0, workers=2, worker_id=0,
                 dedup_root=root)
    store0.close()
    assert os.path.exists(index_path)      # worker 0 persisted the scan


def test_worker_id_validation(spec):
    with pytest.raises(ValueError):
        run_campaign(spec, workers=2, worker_id=2, processes=0)
    with pytest.raises(ValueError):
        run_campaign(spec, workers=2, worker_id=None, processes=0)
    with pytest.raises(ValueError):
        run_campaign(spec, worker_id=1, processes=0)


def test_partial_worker_report_refuses_artifact(spec, tmp_path):
    report = run_campaign(spec, store=str(tmp_path), processes=0,
                          workers=2, worker_id=0)
    assert report.pending_elsewhere > 0
    with pytest.raises(ValueError):
        artifact(report)
