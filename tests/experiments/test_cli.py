"""Tests for the command-line interface."""

import json

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_small(capsys, tmp_path):
    out_file = tmp_path / "run.json"
    code = main([
        "run", "--model", "none", "--seed", "3", "--small",
        "--json", str(out_file),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "settled_performance" in captured
    payload = json.loads(out_file.read_text())
    assert payload["row"]["model"] == "none"
    assert "active_nodes" in payload["series"]


def test_run_with_faults_small(capsys):
    code = main(["run", "--model", "ffw", "--seed", "3", "--small",
                 "--faults", "2"])
    assert code == 0
    assert "recovery_time_ms" in capsys.readouterr().out


def test_parser_table2_fault_list():
    args = build_parser().parse_args(["table2", "--faults", "0,8"])
    assert args.faults == "0,8"


def test_parser_defaults():
    args = build_parser().parse_args(["table1"])
    assert args.runs == 15
    args = build_parser().parse_args(["figure4"])
    assert args.seed == 42
