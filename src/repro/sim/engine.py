"""Event queue and simulation loop.

The :class:`Simulator` is a classic calendar-queue discrete-event kernel:

* events are ``(time, priority, seq, callback)`` tuples kept in a binary
  heap, so ties at the same timestamp break first by priority and then by
  insertion order — this makes runs reproducible;
* ``run_until(horizon)`` pops and dispatches events until the queue is empty
  or the horizon is passed;
* cancelling is done by tombstoning (the heap entry stays, the handle is
  marked dead), which is O(1) and the standard trick from the heapq docs.

The kernel knows nothing about routers or ants; everything above it talks to
it through :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.
"""

import heapq
import itertools


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-running, ...)."""


class Event:
    """Handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule`; user code keeps
    them only if it may need to :meth:`cancel` the event later (e.g. the
    Foraging-for-Work timeout that is reset whenever a packet is sunk
    locally).
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time, priority, seq, callback):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        """Mark the event dead; the kernel will skip it when popped."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t={}, prio={}, seq={}, {})".format(
            self.time, self.priority, self.seq, state
        )


class EventQueue:
    """Binary-heap event queue with deterministic tie-breaking."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()

    def __len__(self):
        return len(self._heap)

    def push(self, time, priority, callback):
        """Insert a callback and return its :class:`Event` handle."""
        event = Event(time, priority, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self):
        """Remove and return the earliest live event, or ``None`` if empty.

        Tombstoned (cancelled) events are discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self):
        """Timestamp of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None


class Simulator:
    """Discrete-event simulator with an integer-microsecond clock.

    Parameters
    ----------
    seed:
        Master seed for the simulation's random streams (see
        :class:`repro.sim.rng.RngStreams`).  Two simulators with equal seeds
        and equal scheduling sequences are bit-identical.
    """

    #: Default priority for ordinary events.
    PRIORITY_NORMAL = 10
    #: Priority for monitor sampling — runs after normal events at a tick.
    PRIORITY_SAMPLE = 20
    #: Priority for control-plane actions (fault injection) — runs first.
    PRIORITY_CONTROL = 0

    def __init__(self, seed=0):
        from repro.sim.rng import RngStreams

        self.now = 0
        self.seed = seed
        self.rng = RngStreams(seed)
        self._queue = EventQueue()
        self._running = False
        self._dispatched = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay, callback, priority=PRIORITY_NORMAL):
        """Schedule ``callback()`` to run ``delay`` µs from now.

        ``delay`` must be a non-negative integer.  Returns the event handle.
        """
        if delay < 0:
            raise SimulationError(
                "cannot schedule {} us in the past".format(delay)
            )
        return self._queue.push(self.now + int(delay), priority, callback)

    def schedule_at(self, time, callback, priority=PRIORITY_NORMAL):
        """Schedule ``callback()`` at absolute time ``time`` µs."""
        if time < self.now:
            raise SimulationError(
                "cannot schedule at t={} before now={}".format(time, self.now)
            )
        return self._queue.push(int(time), priority, callback)

    # -- execution --------------------------------------------------------

    def run_until(self, horizon):
        """Dispatch events in order until ``horizon`` µs (inclusive).

        The clock is left at ``horizon`` even if the queue drains early, so
        sampling code can rely on ``sim.now`` after the call.  Events
        scheduled exactly at the horizon are executed.
        """
        if self._running:
            raise SimulationError("run_until re-entered")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > horizon:
                    break
                event = self._queue.pop()
                self.now = event.time
                event.callback()
                self._dispatched += 1
        finally:
            self._running = False
        if self.now < horizon:
            self.now = horizon
        return self._dispatched

    def step(self):
        """Dispatch exactly one event; return it or ``None`` if drained."""
        event = self._queue.pop()
        if event is None:
            return None
        self.now = event.time
        event.callback()
        self._dispatched += 1
        return event

    # -- introspection ----------------------------------------------------

    @property
    def pending_events(self):
        """Number of events currently in the queue (including tombstones)."""
        return len(self._queue)

    @property
    def dispatched_events(self):
        """Total number of events executed so far."""
        return self._dispatched

    def __repr__(self):
        return "Simulator(now={}us, pending={}, dispatched={})".format(
            self.now, self.pending_events, self._dispatched
        )
