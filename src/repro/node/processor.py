"""The processing element (MicroBlaze MCS stand-in).

A node runs exactly one task at a time.  Packets addressed to that task are
queued on the internal port (finite buffer — overflow diverts the packet to
the next-nearest provider, modelling wormhole backpressure), executed one at
a time with a task- and frequency-dependent service time, and the
application layer decides which downstream packets each completed execution
emits (the fork-join wiring lives in :mod:`repro.app.workload`, keeping this
class application-agnostic).

The PE raises the node-local monitor events of Figure 2a toward its
observers (the AIM): internal packet sink, execution completion and task
change.  Its knobs — task select, clock enable, reset, frequency — are plain
methods the AIM calls.
"""

from collections import deque

from repro.node.dvfs import FrequencyScaler
from repro.node.thermal import ThermalModel
from repro.node.watchdog import Watchdog


class ProcessingElement:
    """One node's processor.

    Parameters
    ----------
    sim:
        Simulator.
    node_id:
        This node's id.
    network:
        The NoC (used to emit packets and to publish task assignment into
        the provider directory).
    app:
        Application hooks object with ``packets_for_generation(pe)`` and
        ``packets_after_execution(pe, packet)`` — see
        :class:`repro.app.workload.ForkJoinWorkload`.
    queue_capacity:
        Internal-port buffer size in packets; arrivals beyond it are
        diverted back into the network toward another provider.
    service_jitter:
        Fractional uniform jitter on service times (0.1 = ±10 %),
        drawn from the node's service RNG stream.
    """

    def __init__(self, sim, node_id, network, app=None, queue_capacity=6,
                 service_jitter=0.1, overflow_hold_us=750, trace=None,
                 watchdog_timeout_us=100_000):
        self.sim = sim
        self.node_id = node_id
        self.network = network
        self.app = app
        self.queue_capacity = queue_capacity
        self.service_jitter = service_jitter
        self.overflow_hold_us = overflow_hold_us
        self.trace = trace
        self.task_id = None
        self.queue = deque()
        self.busy = False
        self.halted = False
        self.clock_enabled = True
        self.frequency = FrequencyScaler()
        self.watchdog = Watchdog(watchdog_timeout_us)
        # Boot kick: the watchdog window opens when the node comes up,
        # not at the epoch — a PE built at nonzero sim time must not be
        # born already expired.
        self.watchdog.kick(sim.now)
        self.thermal = ThermalModel()
        self._rng = None  # service-jitter stream, created on first draw
        self._genphase_rng = None  # generation-phase stream, ditto
        self._gen_process = None
        self._gen_seq = 0
        self._observers = []
        self._handlers = {}
        # Statistics -------------------------------------------------------
        self.completions = 0
        self.completions_by_task = {}
        self.generations = 0
        self.task_switches = 0
        self.overflows = 0
        self.window_executions = 0

    # -- observers (AIM wiring) ---------------------------------------------

    def add_observer(self, observer):
        """Subscribe to PE monitor events.

        Observers may implement ``on_internal_sink(pe, packet)``,
        ``on_execution_complete(pe, task_id)`` and
        ``on_task_changed(pe, old, new)``.  Handlers are cached at
        subscription time (sink/complete events are hot).
        """
        self._observers.append(observer)
        self._rebuild_handler_cache()

    def remove_observer(self, observer):
        """Unsubscribe an observer."""
        self._observers.remove(observer)
        self._rebuild_handler_cache()

    def _rebuild_handler_cache(self):
        self._handlers = {}
        for method in (
            "on_internal_sink",
            "on_execution_complete",
            "on_task_changed",
        ):
            self._handlers[method] = [
                handler
                for handler in (
                    getattr(obs, method, None) for obs in self._observers
                )
                if handler is not None
            ]

    def _notify(self, method, *args):
        for handler in self._handlers.get(method, ()):
            handler(self, *args)

    # -- task knob ---------------------------------------------------------------

    def set_task(self, task_id, reason="init"):
        """Switch the node to ``task_id``.

        ``reason`` distinguishes initial mapping from intelligence-driven
        switches; only the latter count toward the task-switch statistics
        that Figure 4 plots.  Queued packets for the old task are re-sent
        into the network so the application does not lose them.
        """
        if self.halted:
            return
        old = self.task_id
        if old == task_id:
            return
        self.task_id = task_id
        self.network.directory.set_task(self.node_id, task_id)
        if reason != "init":
            self.task_switches += 1
            if self.trace is not None:
                self.trace.record(
                    self.sim.now,
                    "task_switch",
                    node=self.node_id,
                    old=old,
                    new=task_id,
                    reason=reason,
                )
        requeued = list(self.queue)
        self.queue.clear()
        for packet in requeued:
            packet.reroutes += 1
            self.network.send(packet, self.node_id)
        self._configure_generation()
        self._notify("on_task_changed", old, task_id)

    def _configure_generation(self):
        """Start/stop the source process according to the current task."""
        from repro.sim.process import PeriodicProcess

        if self._gen_process is not None:
            self._gen_process.stop()
            self._gen_process = None
        if self.app is None or self.task_id is None:
            return
        period = self.app.generation_period(self.task_id)
        if period is None:
            return
        jitter_rng = self._genphase_rng
        if jitter_rng is None:
            jitter_rng = self._genphase_rng = self.sim.rng.stream(
                "pe-genphase-{}".format(self.node_id)
            )
        # Random initial phase so sources do not emit in lockstep.
        initial = jitter_rng.randrange(1, period + 1)
        self._gen_process = PeriodicProcess(
            self.sim, period, self._generate
        )
        self._gen_process.start(initial_delay=initial)

    # -- other knobs -----------------------------------------------------------------

    def set_clock_enabled(self, enabled):
        """Clock-gate knob; a gated node holds its queue but does not run."""
        self.clock_enabled = bool(enabled)
        if enabled:
            self._try_start()

    def reset(self):
        """Reset knob: drop in-progress state, keep the task assignment."""
        self.queue.clear()
        self.busy = False
        self._gen_seq = 0
        if self.task_id is not None:
            self._configure_generation()

    def halt(self):
        """Hard fault: the node stops (used by fault injection)."""
        self.halted = True
        self.busy = False
        self.queue.clear()
        self.network.directory.set_task(self.node_id, None)
        if self._gen_process is not None:
            self._gen_process.stop()
            self._gen_process = None

    def restart(self):
        """Recover from a transient fault: rejoin blank.

        The node comes back alive but task-less and empty-handed — its
        pre-fault assignment died with it, matching a real reboot (the
        halted node keeps ``task_id`` for post-mortem introspection; the
        restart clears it to match the provider directory).  The
        intelligence layer (or the Experiment Controller) re-allocates
        work to it through the normal task-select knob.
        """
        if not self.halted:
            return
        self.halted = False
        self.busy = False
        self.queue.clear()
        self.task_id = None
        self._gen_seq = 0
        # Reboot kick: a freshly-recovered node is healthy *now*; its
        # pre-fault kick must not leave it instantly expired again.
        self.watchdog.kick(self.sim.now)

    # -- packet input (internal port) ----------------------------------------------------

    def receive(self, packet):
        """Internal-port delivery from the router.

        Returns True if the packet was queued, False if it was diverted
        (buffer full / task mismatch) or discarded (halted node).
        """
        if self.halted or not self.clock_enabled:
            self._divert(packet)
            return False
        if packet.dest_task != self.task_id:
            # The node switched task in the same microsecond the packet was
            # delivered; push it back into the network to find the task's
            # current provider.
            self._divert(packet)
            return False
        if len(self.queue) >= self.queue_capacity:
            self.overflows += 1
            self._divert(packet)
            return False
        self.queue.append(packet)
        self._notify("on_internal_sink", packet)
        self._try_start()
        return True

    def _divert(self, packet):
        """Reject a delivered packet back into the network, asynchronously.

        Covers buffer overflow, task mismatch and gated/halted nodes.  The
        packet blocks for a hold interval (wormhole backpressure) and is
        then redirected to the nearest provider it has not yet bounced off —
        never synchronously, so a node that is still listed as nearest
        provider cannot create a delivery loop.  The hold also makes
        starved-task packets grow visibly old, which is the lateness signal
        the Foraging-for-Work model keys on.
        """
        packet.reroutes += 1
        packet.mark_tried(self.node_id)
        node = self.node_id
        self.sim.post(
            self.overflow_hold_us,
            lambda p=packet, n=node: self.network.redirect(
                p, n, exclude=p.tried_providers()
            ),
        )

    # -- execution engine ---------------------------------------------------------------

    def _service_duration(self, nominal):
        if self.service_jitter > 0:
            rng = self._rng
            if rng is None:
                # Named stream: creation order does not affect the draws,
                # so it is safe (and cheaper) to create it on first use.
                rng = self._rng = self.sim.rng.stream(
                    "pe-service-{}".format(self.node_id)
                )
            factor = 1.0 + rng.uniform(
                -self.service_jitter, self.service_jitter
            )
        else:
            factor = 1.0
        return self.frequency.scale_duration(max(1, nominal * factor))

    def _try_start(self):
        if (
            self.busy
            or self.halted
            or not self.clock_enabled
            or not self.queue
            or self.app is None
        ):
            return
        packet = self.queue.popleft()
        nominal = self.app.service_time(self.task_id)
        duration = self._service_duration(nominal)
        self.busy = True
        # Fire-and-forget: completions are never cancelled (halt() checks
        # inside _complete), so skip the event-handle allocation.
        self.sim.post(
            duration, lambda p=packet, d=duration: self._complete(p, d)
        )

    def _complete(self, packet, duration):
        if self.halted:
            return
        self.busy = False
        self.completions += 1
        self.window_executions += 1
        task = self.task_id
        self.completions_by_task[task] = (
            self.completions_by_task.get(task, 0) + 1
        )
        now = self.sim.now
        self.watchdog.kick(now)
        self.thermal.record_busy(
            now, duration, 1.0 / self.frequency.slowdown
        )
        self._notify("on_execution_complete", task)
        if self.app is not None:
            for out in self.app.packets_after_execution(self, packet):
                self.network.send(out, self.node_id)
        self._try_start()

    def _generate(self, _process):
        """Source tick: emit this task's generated packets."""
        if self.halted or not self.clock_enabled or self.app is None:
            return
        packets = self.app.packets_for_generation(self)
        if not packets:
            return
        self.generations += 1
        self._gen_seq += 1
        self.watchdog.kick(self.sim.now)
        if len(packets) > 1 and getattr(self.app, "multicast", False):
            self.network.send_multicast(packets, self.node_id)
        else:
            for packet in packets:
                self.network.send(packet, self.node_id)

    # -- metrics helpers -------------------------------------------------------------------

    def drain_window_executions(self):
        """Return and reset the per-window execution counter."""
        count = self.window_executions
        self.window_executions = 0
        return count

    def __repr__(self):
        return (
            "ProcessingElement(node={}, task={}, queue={}, "
            "completions={}{})".format(
                self.node_id,
                self.task_id,
                len(self.queue),
                self.completions,
                ", HALTED" if self.halted else "",
            )
        )
