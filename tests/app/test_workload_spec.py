"""Unit tests for the declarative workload schema (spec + arrivals)."""

import json

import pytest

from repro.app.workloads.arrivals import ArrivalSpec
from repro.app.workloads.spec import (
    BUILTIN_WORKLOADS,
    EdgeSpec,
    TaskSpec,
    WorkloadSpec,
    fork_join_spec,
    load_workload,
    pipeline_spec,
    shuffle_spec,
)


def _spec(**overrides):
    base = dict(
        name="w",
        tasks=(
            {"id": 1, "service_us": 500, "arrival": 4_000,
             "downstream": [2]},
            {"id": 2, "service_us": 2_000},
        ),
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestEdgeSpec:
    def test_from_bare_int(self):
        assert EdgeSpec.from_dict(7) == EdgeSpec(task=7)

    def test_fanout_defaults_and_round_trips(self):
        edge = EdgeSpec.from_dict({"task": 2, "fanout": 4})
        assert edge.fanout == 4
        assert EdgeSpec.from_dict(edge.to_dict()) == edge

    def test_to_dict_omits_default_fanout(self):
        assert EdgeSpec(task=2).to_dict() == {"task": 2}
        assert EdgeSpec(task=2).canonical() == {"task": 2, "fanout": 1}

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2"])
    def test_bad_fanout_rejected(self, bad):
        with pytest.raises(ValueError):
            EdgeSpec(task=2, fanout=bad)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown edge field"):
            EdgeSpec.from_dict({"task": 2, "weight": 3})


class TestArrivalSpec:
    def test_bare_int_is_constant(self):
        arrival = ArrivalSpec.from_dict(4_000)
        assert arrival.shape == "constant"
        assert arrival.mean_rate() == 1.0
        assert arrival.emits(999, 123_456)

    def test_burst_gate_is_deterministic(self):
        arrival = ArrivalSpec(
            period_us=1_000, shape="burst", burst_ticks=2, idle_ticks=3
        )
        gates = [arrival.emits(tick, tick * 1_000) for tick in range(10)]
        assert gates == [True, True, False, False, False] * 2
        assert arrival.mean_rate() == pytest.approx(0.4)
        assert not arrival.needs_rng()

    def test_diurnal_rate_peaks_once_per_cycle(self):
        arrival = ArrivalSpec(
            period_us=1_000, shape="diurnal", cycle_us=100_000, floor=0.2
        )
        assert arrival.rate_at(25_000) == pytest.approx(1.0)
        assert arrival.rate_at(75_000) == pytest.approx(0.2)
        assert arrival.mean_rate() == pytest.approx(0.6)
        assert arrival.needs_rng()

    @pytest.mark.parametrize("fields", [
        {"shape": "poisson"},
        {"shape": "burst"},
        {"shape": "burst", "burst_ticks": 2},
        {"shape": "burst", "burst_ticks": 0, "idle_ticks": 1},
        {"shape": "diurnal"},
        {"shape": "diurnal", "cycle_us": 1},
        {"shape": "diurnal", "cycle_us": 100, "floor": 1.0},
        {"cycle_us": 100},  # constant takes no shape fields
        {"shape": "burst", "burst_ticks": 2, "idle_ticks": 2,
         "floor": 0.5},
    ])
    def test_malformed_arrivals_rejected(self, fields):
        with pytest.raises(ValueError):
            ArrivalSpec(period_us=1_000, **fields)

    def test_unknown_arrival_field_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival field"):
            ArrivalSpec.from_dict({"period_us": 1_000, "jitter": 3})


class TestTaskSpec:
    def test_join_and_arrival_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="both a join and"):
            TaskSpec(task_id=1, service_us=100, join=True, arrival=4_000)

    def test_uniform_dist_needs_spread(self):
        with pytest.raises(ValueError, match="service_spread"):
            TaskSpec(task_id=1, service_us=100, service_dist="uniform")

    def test_spread_without_uniform_rejected(self):
        with pytest.raises(ValueError, match="only applies"):
            TaskSpec(task_id=1, service_us=100, service_spread=0.5)

    def test_unknown_dist_rejected(self):
        with pytest.raises(ValueError, match="service_dist"):
            TaskSpec(task_id=1, service_us=100, service_dist="pareto")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            TaskSpec.from_dict({"id": 1, "service_us": 100, "prio": 2})

    def test_to_dict_omits_defaults(self):
        task = TaskSpec(task_id=1, service_us=100)
        assert task.to_dict() == {"id": 1, "service_us": 100}

    def test_service_dist_is_canonical_optional(self):
        plain = TaskSpec(task_id=1, service_us=100)
        dist = TaskSpec(
            task_id=1, service_us=100, service_dist="exponential"
        )
        assert "service_dist" not in plain.canonical()
        assert dist.canonical()["service_dist"] == "exponential"


class TestWorkloadSpec:
    def test_round_trips_through_json(self):
        spec = _spec()
        clone = WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.key() == spec.key()

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate task id"):
            _spec(tasks=(
                {"id": 1, "service_us": 100, "arrival": 4_000},
                {"id": 1, "service_us": 200},
            ))

    def test_unknown_edge_target_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            _spec(tasks=(
                {"id": 1, "service_us": 100, "arrival": 4_000,
                 "downstream": [9]},
            ))

    def test_sourceless_graph_rejected(self):
        with pytest.raises(ValueError, match="no source"):
            _spec(tasks=({"id": 1, "service_us": 100},))

    def test_multicast_changes_the_key(self):
        assert _spec().key() != _spec(multicast=True).key()

    def test_per_task_series_is_canonical_optional(self):
        assert "per_task_series" not in _spec().canonical()
        flagged = _spec(per_task_series=True)
        assert flagged.canonical()["per_task_series"] is True
        assert flagged.key() != _spec().key()

    def test_accessors(self):
        spec = _spec()
        assert spec.task(2).service_us == 2_000
        assert spec.source_ids() == [1]
        assert spec.join_ids() == []
        with pytest.raises(KeyError):
            spec.task(9)


class TestBuiltins:
    def test_all_builtins_are_valid_zero_arg(self):
        for name, factory in BUILTIN_WORKLOADS.items():
            spec = factory()
            assert spec.name == name
            assert spec.source_ids()

    def test_fork_join_mirrors_legacy_graph(self):
        from repro.app.taskgraph import fork_join_graph

        spec = fork_join_spec()
        graph = fork_join_graph()
        for task in spec.tasks:
            legacy = graph.task(task.task_id)
            assert task.service_us == legacy.service_us
            assert task.weight == legacy.weight
            assert task.deadline_us == legacy.deadline_us

    def test_pipeline_has_single_chain(self):
        spec = pipeline_spec(stages=4)
        assert spec.name == "pipeline4"
        assert [t.task_id for t in spec.tasks] == [1, 2, 3, 4]
        assert spec.tasks[-1].downstream == ()

    def test_shuffle_join_fan_in_is_width_squared(self):
        from repro.app.workloads.compiler import compile_workload

        compiled = compile_workload(shuffle_spec(width=2))
        (join_id,) = compiled.spec.join_ids()
        assert compiled.in_width[join_id] == 4


class TestLoadWorkload:
    def test_spec_passes_through(self):
        spec = _spec()
        assert load_workload(spec) is spec

    def test_dict_and_builtin_and_file(self, tmp_path):
        assert load_workload(_spec().to_dict()) == _spec()
        assert load_workload("fork_join") == fork_join_spec()
        path = tmp_path / "w.json"
        path.write_text(json.dumps(_spec().to_dict()))
        assert load_workload(str(path)) == _spec()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="not a built-in"):
            load_workload("no_such_workload")
