"""Tests for the paper's §V future-work extensions.

Three extensions the paper names but does not evaluate, implemented here:
multicast fork dispatch, adaptive-threshold Network Interaction, and
congestion-aware adaptive output-port routing.
"""

import pytest

from repro.core.models import MODEL_REGISTRY, create_model
from repro.noc.network import Network
from repro.noc.packet import Packet, PacketStatus
from repro.noc.topology import MeshTopology
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


class TestMulticastNetwork:
    @pytest.fixture
    def net(self, sim):
        network = Network(sim, topology=MeshTopology(4, 4))
        delivered = []
        network.set_deliver_handler(
            lambda pkt, node: delivered.append((pkt, node))
        )
        network.delivered_log = delivered
        return network

    def test_branches_fan_to_distinct_providers(self, net, sim):
        for provider in (5, 6, 10):
            net.directory.set_task(provider, 2)
        packets = [Packet(0, dest_task=2, branch=b) for b in range(3)]
        assert net.send_multicast(packets, 0) == 3
        sim.run_until(50_000)
        destinations = {node for (_p, node) in net.delivered_log}
        assert destinations == {5, 6, 10}

    def test_fewer_providers_than_branches_reuses_nearest(self, net, sim):
        net.directory.set_task(5, 2)
        packets = [Packet(0, dest_task=2, branch=b) for b in range(3)]
        assert net.send_multicast(packets, 0) == 3
        sim.run_until(50_000)
        assert all(node == 5 for (_p, node) in net.delivered_log)

    def test_no_providers_drops_all(self, net):
        packets = [Packet(0, dest_task=9, branch=b) for b in range(3)]
        assert net.send_multicast(packets, 0) == 0
        assert all(
            p.status == PacketStatus.DROPPED_NO_PROVIDER for p in packets
        )

    def test_failed_source_drops_all(self, net):
        net.directory.set_task(5, 2)
        net.fail_node(0)
        packets = [Packet(0, dest_task=2, branch=b) for b in range(2)]
        assert net.send_multicast(packets, 0) == 0


class TestMulticastWorkload:
    def test_multicast_platform_emits_instances_whole(self):
        config = PlatformConfig.small(multicast_fork=True)
        platform = CenturionPlatform(config, model_name="none", seed=9)
        platform.run(100_000)
        stats = platform.workload.stats()
        # Generated counts individual branch packets, always a multiple of
        # the fork width in multicast mode.
        assert stats["generated"] % 3 == 0
        assert stats["joins"] > 0

    def test_multicast_period_stretches(self):
        config = PlatformConfig.small(multicast_fork=True)
        platform = CenturionPlatform(config, model_name="none", seed=9)
        assert platform.workload.generation_period(1) == 12_000

    def test_multicast_reduces_join_latency(self):
        """The paper's claim: multicast exploits the fork's parallelism.

        With branches travelling together, the third branch of an instance
        no longer trails the first by two generation periods, so instances
        complete sooner after their first branch is created.  Proxy: with
        equal average demand, the multicast run completes at least as many
        joins (steady state) while generating the same packet count.
        """
        joins = {}
        for multicast in (False, True):
            config = PlatformConfig.small(
                multicast_fork=multicast, horizon_us=400_000
            )
            platform = CenturionPlatform(config, model_name="none", seed=9)
            platform.run()
            joins[multicast] = platform.workload.joins
        assert joins[True] > 0
        # Same order of magnitude of work; multicast must not collapse.
        assert joins[True] >= joins[False] * 0.6


class TestAdaptiveNI:
    def test_registered_with_alias(self):
        assert "adaptive_network_interaction" in MODEL_REGISTRY
        model = create_model("ani", (1, 2, 3))
        assert model.name == "adaptive_network_interaction"

    def test_threshold_tracks_traffic_rate(self, sim):
        from tests.core.conftest import StubAim

        aim = StubAim(sim)
        model = create_model(
            "ani", (1, 2, 3), window_ticks=10, ema_alpha=1.0,
            min_threshold=2, max_threshold=100,
        )
        model.bind(aim)
        packet = Packet(0, dest_task=2)
        packet.hops = 1
        # 8 packets in one tick -> rate 8 -> threshold 80.
        for _ in range(8):
            model.on_packet_routed(aim, packet, to_internal=False,
                                   injected=False)
        model.on_tick(aim, now=1000)
        assert model.current_threshold == 80
        # Silence decays the rate; threshold clamps at the minimum.
        for i in range(2, 60):
            model.on_tick(aim, now=i * 1000)
        assert model.current_threshold == 2

    def test_clamp_range_validated(self):
        with pytest.raises(ValueError):
            create_model("ani", (1,), min_threshold=10, max_threshold=5)
        with pytest.raises(ValueError):
            create_model("ani", (1,), ema_alpha=0.0)

    def test_runs_on_platform(self):
        platform = CenturionPlatform(
            PlatformConfig.small(), model_name="ani", seed=13
        )
        platform.run(100_000)
        assert platform.workload.stats()["generated"] > 0


class TestAdaptivePortRouting:
    def test_minimal_directions_healthy(self):
        from repro.noc.routing import RoutingPolicy

        mesh = MeshTopology(4, 4)
        policy = RoutingPolicy(mesh)
        dirs = policy.minimal_directions(mesh.node_id(0, 0),
                                         mesh.node_id(2, 2))
        assert dirs == ["E", "S"]
        assert policy.minimal_directions(5, 5) == []

    def test_minimal_directions_skip_failed(self):
        from repro.noc.routing import RoutingPolicy

        mesh = MeshTopology(4, 4)
        policy = RoutingPolicy(mesh)
        policy.set_failed({mesh.node_id(1, 0)})
        dirs = policy.minimal_directions(mesh.node_id(0, 0),
                                         mesh.node_id(2, 2))
        assert dirs == ["S"]

    def test_adaptive_router_avoids_busy_channel(self, sim):
        from repro.noc.router import RouterConfig

        net = Network(
            sim,
            topology=MeshTopology(4, 4),
            router_config=RouterConfig(routing_mode="adaptive"),
        )
        net.set_deliver_handler(lambda pkt, node: None)
        dest = net.topology.node_id(2, 2)
        net.directory.set_task(dest, 2)
        # Saturate the eastward channel out of the origin.
        east = net.topology.node_id(1, 0)
        net.link(0, east).transfer(
            Packet(0, dest_task=2, size_flits=500), now=0
        )
        packet = Packet(0, dest_task=2)
        net.send(packet, 0)
        sim.run_until(50)
        # The packet took the southern port instead of queueing east.
        south = net.topology.node_id(0, 1)
        assert net.link(0, south).packets_carried == 1
        assert net.link(0, east).packets_carried == 1  # only the blocker

    def test_xy_router_waits_for_busy_channel(self, sim):
        net = Network(sim, topology=MeshTopology(4, 4))  # xy default
        net.set_deliver_handler(lambda pkt, node: None)
        dest = net.topology.node_id(2, 2)
        net.directory.set_task(dest, 2)
        east = net.topology.node_id(1, 0)
        net.link(0, east).transfer(
            Packet(0, dest_task=2, size_flits=500), now=0
        )
        packet = Packet(0, dest_task=2)
        net.send(packet, 0)
        sim.run_until(50)
        south = net.topology.node_id(0, 1)
        assert net.link(0, south).packets_carried == 0

    def test_invalid_platform_routing_mode_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(routing_mode="magic")

    def test_platform_adaptive_mode_runs(self):
        config = PlatformConfig.small(routing_mode="adaptive")
        platform = CenturionPlatform(config, model_name="ffw", seed=3)
        platform.run(100_000)
        assert platform.workload.stats()["joins"] > 0
