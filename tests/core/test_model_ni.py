"""Tests for the Network Interaction model."""

from repro.core.models.network_interaction import NetworkInteractionModel
from repro.noc.packet import Packet


def make_model(stub_aim, threshold=4):
    model = NetworkInteractionModel(task_ids=(1, 2, 3), threshold=threshold)
    model.bind(stub_aim)
    return model


def routed(model, aim, task, injected=False, to_internal=False):
    packet = Packet(0, dest_task=task)
    packet.hops = 0 if injected else 1
    model.on_packet_routed(aim, packet, to_internal=to_internal,
                           injected=injected)


def test_switches_when_task_count_exceeds_threshold(stub_aim):
    model = make_model(stub_aim, threshold=4)
    for _ in range(5):
        routed(model, stub_aim, task=2)
    assert stub_aim.switches == [(0, 2)]


def test_threshold_boundary_is_strict(stub_aim):
    model = make_model(stub_aim, threshold=4)
    for _ in range(4):
        routed(model, stub_aim, task=2)
    assert stub_aim.switches == []


def test_all_counters_reset_after_switch(stub_aim):
    model = make_model(stub_aim, threshold=4)
    for _ in range(3):
        routed(model, stub_aim, task=3)
    for _ in range(5):
        routed(model, stub_aim, task=2)
    assert model.counter_values() == {1: 0, 2: 0, 3: 0}


def test_injected_packets_ignored(stub_aim):
    model = make_model(stub_aim, threshold=2)
    for _ in range(10):
        routed(model, stub_aim, task=2, injected=True)
    assert stub_aim.switches == []
    assert model.counter_values()[2] == 0


def test_internal_sinks_also_counted(stub_aim):
    """The paper counts every routed packet, internal deliveries included."""
    model = make_model(stub_aim, threshold=2)
    for _ in range(3):
        routed(model, stub_aim, task=2, to_internal=True)
    assert stub_aim.switches == [(0, 2)]


def test_switch_to_current_task_resets_without_knob_call(stub_aim):
    stub_aim._task = 2
    model = make_model(stub_aim, threshold=2)
    for _ in range(3):
        routed(model, stub_aim, task=2)
    assert stub_aim.switches == []  # already on task 2
    assert model.switches_fired == 1  # but the thresholder did fire


def test_mixed_traffic_most_frequent_task_wins(stub_aim):
    model = make_model(stub_aim, threshold=4)
    pattern = [2, 3, 2, 3, 2, 2, 2]  # task 2 reaches 5 > 4; task 3 only 2
    for task in pattern:
        routed(model, stub_aim, task=task)
    assert stub_aim.switches == [(0, 2)]


def test_configure_threshold_updates_units(stub_aim):
    model = make_model(stub_aim, threshold=50)
    model.configure(threshold=2)
    for _ in range(3):
        routed(model, stub_aim, task=3)
    assert stub_aim.switches == [(0, 3)]


def test_counter_values_before_bind():
    model = NetworkInteractionModel(task_ids=(1, 2), threshold=3)
    assert model.counter_values() == {}


def test_model_metadata():
    model = NetworkInteractionModel(task_ids=(1,))
    assert model.name == "network_interaction"
    assert model.model_number == 6
