"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper tables; they probe the knobs this reproduction (and the
paper's discussion section) identify as load-bearing:

* **Initial mapping** — random (paper) vs exactly-balanced vs clustered
  floorplan: how much of the adaptive models' advantage is census repair?
* **NI threshold** — the Network Interaction switching threshold trades
  responsiveness against churn.
* **FFW timeout** — the paper's 20 ms task-switch timeout vs faster/slower
  foraging.
* **PE queue capacity** — buffer depth shifts where backpressure (and hence
  the FFW lateness signal) appears.
"""

from benchmarks.harness import runs_per_cell, seed_base
from repro.experiments.runner import default_seeds, run_batch
from repro.experiments.stats import median
from repro.platform.config import PlatformConfig


def _median_perf(model, config, runs, **batch_kwargs):
    seeds = default_seeds(runs, base=seed_base())
    results = run_batch(model, seeds, config=config, keep_series=False,
                        **batch_kwargs)
    return median([r.settled_performance for r in results])


def _runs():
    # Ablations use fewer runs per cell than the headline tables.
    return max(3, runs_per_cell() // 3)


def test_ablation_initial_mapping(benchmark):
    """Balanced census removes part of the baseline's handicap."""

    def sweep():
        out = {}
        for mapping in ("random", "balanced", "clustered"):
            config = PlatformConfig(initial_mapping=mapping)
            out[mapping] = _median_perf("none", config, _runs())
        return out

    perf = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Baseline median settled joins/window by initial mapping:")
    for mapping, value in perf.items():
        print("  {:<10} {:6.2f}".format(mapping, value))
    # Every mapping sustains the application.  (The clustered floorplan
    # assigns whole column bands per stage, which oversubscribes task 2 —
    # its absolute level is reported, not asserted.)
    assert all(v > 0 for v in perf.values())


def test_ablation_ni_threshold(benchmark):
    """NI threshold sweep: too low churns, too high is inert."""

    def sweep():
        out = {}
        for threshold in (8, 24, 96):
            config = PlatformConfig(ni_threshold=threshold)
            out[threshold] = _median_perf(
                "network_interaction", config, _runs()
            )
        return out

    perf = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("NI median settled joins/window by switching threshold:")
    for threshold, value in perf.items():
        print("  threshold {:>3}  {:6.2f}".format(threshold, value))
    assert all(v > 0 for v in perf.values())


def test_ablation_ffw_timeout(benchmark):
    """FFW timeout sweep around the paper's 20 ms."""

    def sweep():
        out = {}
        for timeout_ms in (10, 20, 40):
            config = PlatformConfig(ffw_timeout_us=timeout_ms * 1000)
            out[timeout_ms] = _median_perf(
                "foraging_for_work", config, _runs()
            )
        return out

    perf = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("FFW median settled joins/window by task-switch timeout:")
    for timeout_ms, value in perf.items():
        print("  timeout {:>2} ms  {:6.2f}".format(timeout_ms, value))
    assert all(v > 0 for v in perf.values())


def test_ablation_queue_capacity(benchmark):
    """Buffer depth: deeper buffers absorb imbalance, delay the signal."""

    def sweep():
        out = {}
        for capacity in (2, 6, 16):
            config = PlatformConfig(queue_capacity=capacity)
            out[capacity] = {
                model: _median_perf(model, config, _runs())
                for model in ("none", "foraging_for_work")
            }
        return out

    perf = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Median settled joins/window by PE queue capacity:")
    for capacity, by_model in perf.items():
        print(
            "  capacity {:>2}  none {:6.2f}   ffw {:6.2f}".format(
                capacity, by_model["none"], by_model["foraging_for_work"]
            )
        )
    for by_model in perf.values():
        assert by_model["none"] > 0
        assert by_model["foraging_for_work"] > 0
