"""Express-path equivalence: fast and slow hop engines are bit-identical.

The express engine (repro.noc.network) collapses multi-hop flights into
single events, but only when the kernel's ``try_advance`` gate proves the
inline execution indistinguishable from event dispatch.  These tests pin
that guarantee across the whole model registry: every registered
intelligence scheme, with and without fault injection, must produce the
same scalar row, the same NoC counters and the same application statistics
with ``fast_path`` on and off.
"""

import pytest

from repro.core.models.registry import MODEL_REGISTRY
from repro.experiments.runner import run_single
from repro.platform.config import PlatformConfig

#: Shortened small-platform run: long enough to settle, inject faults and
#: recover, short enough to keep the full model × seed matrix cheap.
_KWARGS = dict(
    width=4,
    height=4,
    horizon_us=120_000,
    fault_time_us=60_000,
)


def _pair(model, seed, faults, **config_kwargs):
    base = dict(_KWARGS)
    base.update(config_kwargs)
    fast = run_single(
        model, seed, faults=faults,
        config=PlatformConfig(fast_path=True, **base), keep_series=False,
    )
    slow = run_single(
        model, seed, faults=faults,
        config=PlatformConfig(fast_path=False, **base), keep_series=False,
    )
    return fast, slow


def _assert_identical(fast, slow):
    assert fast.as_row() == slow.as_row()
    assert fast.noc_stats == slow.noc_stats
    assert fast.app_stats == slow.app_stats


@pytest.mark.parametrize("model", sorted(MODEL_REGISTRY))
@pytest.mark.parametrize("seed", [11, 12])
def test_fast_path_identical_without_faults(model, seed):
    fast, slow = _pair(model, seed, faults=0)
    _assert_identical(fast, slow)


@pytest.mark.parametrize("model", sorted(MODEL_REGISTRY))
@pytest.mark.parametrize("seed", [11])
def test_fast_path_identical_with_faults(model, seed):
    fast, slow = _pair(model, seed, faults=5)
    _assert_identical(fast, slow)


def test_fast_path_identical_adaptive_routing():
    """The §V adaptive output-port extension stays deterministic too."""
    fast, slow = _pair(
        "foraging_for_work", 13, faults=3, routing_mode="adaptive"
    )
    _assert_identical(fast, slow)


def test_fast_path_identical_multicast_fork():
    """Multicast fork dispatch (bulk first-hop insertion) stays identical."""
    fast, slow = _pair(
        "network_interaction", 14, faults=2, multicast_fork=True
    )
    _assert_identical(fast, slow)


def test_fast_path_actually_engages():
    """Sanity: the express engine inlines hops on a fast-path run."""
    from repro.platform.centurion import CenturionPlatform

    platform = CenturionPlatform(
        PlatformConfig(**_KWARGS), model_name="ffw", seed=11
    )
    platform.run()
    assert platform.network.express_hops > 0
    # Inlined hops are real hops: the stats counter includes them.
    assert platform.network.stats["hops"] >= platform.network.express_hops


def test_fast_path_off_never_inlines():
    from repro.platform.centurion import CenturionPlatform

    platform = CenturionPlatform(
        PlatformConfig(fast_path=False, **_KWARGS),
        model_name="ffw",
        seed=11,
    )
    platform.run()
    assert platform.network.express_hops == 0
