"""Command-line interface to the experiment harness.

Usage (after ``pip install -e .``):

    python -m repro.experiments.cli run --model ffw --seed 7 --faults 42
    python -m repro.experiments.cli run --model ni --scenario waves.json
    python -m repro.experiments.cli scenario storm.json --small
    python -m repro.experiments.cli table1 --runs 20 --processes 8
    python -m repro.experiments.cli table2 --runs 20 --faults 0,8,32 --resume
    python -m repro.experiments.cli figure4 --seed 42
    python -m repro.experiments.cli campaign --paper table2 --dir campaigns/t2
    python -m repro.experiments.cli campaign --spec sweep.json

The sweep subcommands are campaigns (:mod:`repro.campaign`): they shard
cells across ``--processes`` workers (default: REPRO_PROCESSES env, then
``os.cpu_count()``) and, given ``--resume [DIR]`` (or ``campaign``'s
always-on store), checkpoint each finished cell so interrupted sweeps
continue where they stopped and re-runs recompute nothing.  Each
subcommand prints its artefact to stdout (progress goes to stderr);
``--json FILE`` additionally dumps the raw rows/series for downstream
plotting.
"""

import argparse
import json
import os
import sys

from repro.campaign import paper
from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.experiments.figures import render_figure4
from repro.experiments.runner import default_processes, run_single
from repro.experiments.tables import format_table
from repro.platform.config import PlatformConfig
from repro.platform.scenario import FaultScenario

MODELS = paper.MODELS

#: Default parent directory for ``--resume`` stores.
DEFAULT_CAMPAIGN_ROOT = "campaigns"


def _add_sweep_arguments(parser, command):
    parser.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_PROCESSES, then cpu count)",
    )
    parser.add_argument(
        "--resume", nargs="?", metavar="DIR",
        const=os.path.join(DEFAULT_CAMPAIGN_ROOT, command), default=None,
        help="checkpoint per-run results under DIR (default {}/{}) and "
             "skip cells already recorded there".format(
                 DEFAULT_CAMPAIGN_ROOT, command),
    )


def build_parser():
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DATE 2020 social-insect RTM evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one simulation run")
    run_p.add_argument("--model", default="ffw")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--faults", type=int, default=0)
    run_p.add_argument(
        "--scenario", metavar="FILE",
        help="JSON FaultScenario driving the run's fault injections "
             "(link failures, transients, waves, spatial patterns); "
             "replaces --faults",
    )
    run_p.add_argument("--small", action="store_true",
                       help="4x4 grid instead of full Centurion")
    run_p.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes for sweeps (a single run ignores this; "
             "default: REPRO_PROCESSES, then cpu count)",
    )
    run_p.add_argument("--json", metavar="FILE")

    t1_p = sub.add_parser("table1", help="settling/performance, no faults")
    t1_p.add_argument("--runs", type=int, default=15)
    _add_sweep_arguments(t1_p, "table1")
    t1_p.add_argument("--json", metavar="FILE")

    t2_p = sub.add_parser("table2", help="recovery/performance vs faults")
    t2_p.add_argument("--runs", type=int, default=15)
    t2_p.add_argument("--faults", default="0,2,4,8,16,32",
                      help="comma-separated fault counts")
    _add_sweep_arguments(t2_p, "table2")
    t2_p.add_argument("--json", metavar="FILE")

    f4_p = sub.add_parser("figure4", help="time-series panels")
    f4_p.add_argument("--seed", type=int, default=42)
    _add_sweep_arguments(f4_p, "figure4")
    f4_p.add_argument("--json", metavar="FILE")

    s_p = sub.add_parser(
        "scenario",
        help="validate a JSON fault scenario and print its schedule + key",
    )
    s_p.add_argument("file", metavar="FILE", help="scenario JSON file")
    s_p.add_argument("--small", action="store_true",
                     help="validate victims against the 4x4 grid instead "
                          "of full Centurion")
    s_p.add_argument("--seed", type=int, default=1,
                     help="seed used to preview hazard-storm draws")
    s_p.add_argument("--json", metavar="FILE")

    c_p = sub.add_parser(
        "campaign", help="run a declarative sweep with a persistent store"
    )
    source = c_p.add_mutually_exclusive_group(required=True)
    source.add_argument("--spec", metavar="FILE",
                        help="JSON CampaignSpec to run")
    source.add_argument("--paper", choices=sorted(paper.PAPER_SPECS),
                        help="run a canonical paper campaign")
    c_p.add_argument("--runs", type=int, default=15,
                     help="runs per cell for --paper table1/table2")
    c_p.add_argument("--seed", type=int, default=42,
                     help="seed for --paper figure4")
    c_p.add_argument(
        "--dir", metavar="DIR", default=None,
        help="result store directory (default {}/<name>)".format(
            DEFAULT_CAMPAIGN_ROOT),
    )
    c_p.add_argument(
        "--fresh", action="store_true",
        help="recompute every cell even when the store already has it",
    )
    c_p.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_PROCESSES, then cpu count)",
    )
    c_p.add_argument("--json", metavar="FILE")

    return parser


def _dump_json(path, payload):
    if path:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)


def _progress_printer(name, stream=sys.stderr):
    """Per-cell progress reporter (stderr, so stdout stays the artefact)."""

    def progress(done, total, cached):
        step = max(1, total // 20)
        if done == total or done % step == 0:
            stream.write(
                "\r{}: {}/{} cells ({} cached)".format(
                    name, done, total, cached
                )
            )
            if done == total:
                stream.write("\n")
            stream.flush()

    return progress


def _run_spec(spec, args, store=None):
    """Execute ``spec`` honouring the shared sweep flags."""
    processes = args.processes
    if processes is None:
        processes = default_processes()
    store = store if store is not None else getattr(args, "resume", None)
    report = run_campaign(
        spec,
        store=store,
        processes=processes,
        progress=_progress_printer(spec.name),
        use_cache=not getattr(args, "fresh", False),
    )
    print(report.summary(), file=sys.stderr)
    return report


def cmd_run(args):
    """``run`` subcommand: one simulation, row + optional JSON."""
    config = PlatformConfig.small() if args.small else PlatformConfig()
    scenario = None
    if args.scenario:
        if args.faults:
            raise SystemExit("give either --faults or --scenario, not both")
        scenario = FaultScenario.from_json_file(args.scenario)
    result = run_single(
        args.model, seed=args.seed, faults=args.faults, config=config,
        scenario=scenario,
    )
    row = result.as_row()
    for key, value in row.items():
        print("{:<24} {}".format(key, value))
    _dump_json(args.json, {"row": row, "series": result.series.as_dict()})
    return 0


def cmd_table1(args):
    """``table1`` subcommand: regenerate Table I as a campaign."""
    report = _run_spec(paper.table1_spec(runs=args.runs), args)
    rows = paper.artifact(report)
    print(format_table(rows, "table1"))
    _dump_json(args.json, rows)
    return 0


def cmd_table2(args):
    """``table2`` subcommand: regenerate Table II as a campaign."""
    fault_counts = [int(f) for f in args.faults.split(",")]
    report = _run_spec(
        paper.table2_spec(runs=args.runs, fault_counts=fault_counts), args
    )
    rows = paper.artifact(report)
    print(format_table(rows, "table2"))
    _dump_json(args.json, rows)
    return 0


def cmd_figure4(args):
    """``figure4`` subcommand: render the six panels as a campaign."""
    report = _run_spec(paper.figure4_spec(seed=args.seed), args)
    data = paper.artifact(report)
    print(render_figure4(data))
    _dump_json(
        args.json,
        {
            str(faults): {
                model: result.series.as_dict()
                for model, result in by_model.items()
            }
            for faults, by_model in data.items()
        },
    )
    return 0


def cmd_scenario(args):
    """``scenario`` subcommand: lint a fault scenario without running it.

    Loads the file (schema validation), applies it to a throwaway
    platform (topology validation of pinned victims, hazard-storm time
    draws at the given seed) and prints the occurrence schedule plus the
    content-hash key that would join campaign cell keys.
    """
    from repro.platform.centurion import CenturionPlatform

    scenario = FaultScenario.from_json_file(args.file)
    config = PlatformConfig.small() if args.small else PlatformConfig()
    platform = CenturionPlatform(config, model_name="none", seed=args.seed)
    platform.inject_scenario(scenario)  # raises on malformed victims
    print("name                     {}".format(scenario.name))
    print("key                      {}".format(scenario.key()))
    print("events                   {}".format(len(scenario.events)))
    print("first_fault_us           {}".format(scenario.first_fault_us()))
    # Storm previews replay the hazard stream on a fresh simulator (the
    # platform's own stream was consumed by inject_scenario): one stream
    # shared across storm events in declaration order, exactly like the
    # injector draws it.
    from repro.platform.faults import HAZARD_STREAM
    from repro.sim.engine import Simulator

    hazard_rng = Simulator(seed=args.seed).rng.stream(HAZARD_STREAM)
    events = []
    for index, event in enumerate(scenario.events):
        if event.is_storm():
            times = event.occurrence_times(hazard_rng)
            shape = "storm({}/us over {}..{}us)".format(
                event.hazard_per_us, event.at_us, event.horizon_us
            )
        else:
            times = event.occurrence_times()
            shape = "fixed"
        print(
            "event[{}]                 kind={} {} occurrences={} "
            "at={}".format(index, event.kind, shape, len(times),
                           times[:8] + ["..."] if len(times) > 8 else times)
        )
        events.append(
            {"kind": event.kind, "occurrences": times,
             "canonical": event.canonical()}
        )
    _dump_json(
        args.json,
        {"name": scenario.name, "key": scenario.key(), "events": events},
    )
    return 0


def cmd_campaign(args):
    """``campaign`` subcommand: spec file or canonical paper campaign."""
    if args.spec:
        spec = CampaignSpec.from_json_file(args.spec)
    elif args.paper in ("table1", "table2"):
        spec = paper.PAPER_SPECS[args.paper](runs=args.runs)
    else:
        spec = paper.PAPER_SPECS[args.paper](seed=args.seed)
    store = args.dir or os.path.join(DEFAULT_CAMPAIGN_ROOT, spec.name)
    report = _run_spec(spec, args, store=store)
    artefact = paper.artifact(report)
    if spec.kind in ("table1", "table2"):
        print(format_table(artefact, spec.kind))
        _dump_json(args.json, artefact)
    elif spec.kind == "figure4":
        print(render_figure4(artefact))
        _dump_json(
            args.json,
            {
                str(faults): {
                    model: result.series.as_dict()
                    for model, result in by_model.items()
                }
                for faults, by_model in artefact.items()
            },
        )
    else:
        for row in artefact:
            print(json.dumps(row, sort_keys=True))
        _dump_json(args.json, artefact)
    return 0


COMMANDS = {
    "run": cmd_run,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "figure4": cmd_figure4,
    "scenario": cmd_scenario,
    "campaign": cmd_campaign,
}


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
