"""Self-reinforcement model (Figure 1 class 3).

"Self-reinforcement to balance specialists vs. generalists through
experience feedback" (paper §II-A).  Thresholds are no longer innate
constants: every successful execution of the current task *lowers* that
task's threshold (practice makes the individual more responsive — a
specialist emerges), while long disuse slowly *raises* a task's threshold
back toward its innate level (skills fade).  This uses the adaptive-
threshold mechanism the paper's discussion section names as a next step
("many of the models shown in Figure 1 feature mechanisms for adaptive
thresholds, which are not yet considered in this paper") — implemented here
as an extension.
"""

from repro.core.models.base import FACTORS
from repro.core.models.response_threshold import ResponseThresholdModel


class SelfReinforcementModel(ResponseThresholdModel):
    """Response thresholds with experience-driven threshold adaptation.

    Parameters
    ----------
    reinforcement:
        Threshold decrease per completed execution of a task.
    forgetting:
        Threshold increase applied to *other* tasks every
        ``forgetting_period_ticks`` ticks, capped at the innate level.
    """

    name = "self_reinforcement"
    model_number = 3
    factors = frozenset(
        {FACTORS.STIMULUS, FACTORS.EXPERIENCE, FACTORS.INNATE_THRESHOLD,
         FACTORS.GENES}
    )

    #: Hard floor so a specialist can still be out-stimulated.
    MIN_THRESHOLD = 4

    def __init__(self, task_ids, threshold_low=12, threshold_high=36,
                 leak_per_tick=1, reinforcement=1, forgetting=1,
                 forgetting_period_ticks=10):
        super().__init__(
            task_ids,
            threshold_low=threshold_low,
            threshold_high=threshold_high,
            leak_per_tick=leak_per_tick,
        )
        self.reinforcement = reinforcement
        self.forgetting = forgetting
        self.forgetting_period_ticks = forgetting_period_ticks
        self._ticks = 0

    def on_execution_complete(self, aim, task_id):
        """Experience: performing a task lowers its response threshold."""
        unit = self.pathway.thresholds.get("task-{}".format(task_id))
        if unit is not None:
            unit.adapt(-self.reinforcement, minimum=self.MIN_THRESHOLD)

    def on_tick(self, aim, now):
        """Leak stimulus and let unused skills fade toward innate."""
        super().on_tick(aim, now)
        self._ticks += 1
        if self._ticks % self.forgetting_period_ticks != 0:
            return
        current = aim.current_task()
        for task_id in self.task_ids:
            if task_id == current:
                continue
            unit = self.pathway.thresholds["task-{}".format(task_id)]
            innate = self.innate_thresholds[task_id]
            if unit.threshold < innate:
                unit.adapt(self.forgetting, maximum=innate)

    def specialisation(self):
        """Innate-minus-current threshold per task (how specialised)."""
        return {
            task: self.innate_thresholds[task]
            - self.pathway.thresholds["task-{}".format(task)].threshold
            for task in self.task_ids
        }
