"""Campaign report pages and cross-campaign regression comparison.

Two consumers of the streaming aggregate
(:class:`~repro.analysis.streaming.RootAggregate`):

* ``campaign report`` (:func:`write_report`) — a **self-contained static
  HTML page** per store root: inline CSS, inline-SVG heat panels
  (:func:`~repro.analysis.heatmap.svg_heatmap`), zero external assets or
  dependencies, so the file mails/archives as one artefact.  Rendering
  is pure string assembly over sorted group state — rebuilding the same
  root yields byte-identical HTML (no timestamps, no environment).
* :func:`compare` — diff two roots' aggregates group-by-group on the
  store's content-keyed merge, flagging **regressions** where a metric's
  mean moved in its worse direction by more than a relative threshold.
  :func:`format_comparison` prints the verdict; the CLI
  (``campaign compare A B``) exits non-zero when anything is flagged,
  which is the CI hook between campaign generations.
"""

import dataclasses
import json
import os
from xml.sax.saxutils import escape

from repro.analysis.heatmap import svg_heatmap
from repro.analysis.streaming import (
    DYNAMICS_COLUMNS,
    METRIC_COLUMNS,
    aggregate_root,
)
from repro.campaign.index import campaign_dirs

#: Regression-watched metrics and the direction that counts as *better*.
#: Clocks want to shrink; normalised performance wants to grow.  The
#: unlisted columns (``total_switches``) are reported but never flagged.
BETTER_DIRECTION = {
    "settling_time_ms": "lower",
    "settled_performance": "higher",
    "recovery_time_ms": "lower",
    "recovered_performance": "higher",
}

#: Default relative regression threshold (5 % worse flags).
DEFAULT_THRESHOLD = 0.05

#: File names written into the report output directory.
REPORT_HTML = "index.html"
REPORT_JSON = "summary.json"


@dataclasses.dataclass
class Delta:
    """One group × metric comparison between two roots."""

    group: tuple
    metric: str
    baseline: float
    candidate: float
    #: Relative change, signed as measured (positive = value grew).
    relative: float
    #: True when the change exceeds the threshold in the worse direction.
    regression: bool

    def describe(self):
        """One human-readable verdict line."""
        return (
            "{}[{}] {}: {:.4g} -> {:.4g} ({:+.1%}{})".format(
                "/".join(self.group[:2]), self.group[2], self.metric,
                self.baseline, self.candidate, self.relative,
                ", REGRESSION" if self.regression else "",
            )
        )


@dataclasses.dataclass
class Comparison:
    """A full baseline-vs-candidate diff of two campaign roots."""

    baseline_root: str
    candidate_root: str
    threshold: float
    deltas: list
    #: Groups present only in the baseline (coverage shrank).
    missing: list
    #: Groups present only in the candidate (new coverage, never flagged).
    added: list

    def regressions(self):
        """The flagged deltas (worse beyond threshold), worst first."""
        flagged = [d for d in self.deltas if d.regression]
        return sorted(flagged, key=lambda d: -abs(d.relative))

    def ok(self):
        """True when nothing regressed and no baseline group vanished."""
        return not self.regressions() and not self.missing

    def as_dict(self):
        """JSON-friendly dump (the ``campaign compare --json`` payload)."""
        return {
            "baseline": self.baseline_root,
            "candidate": self.candidate_root,
            "threshold": self.threshold,
            "ok": self.ok(),
            "regressions": [
                dataclasses.asdict(d) for d in self.regressions()
            ],
            "missing_groups": [list(g) for g in self.missing],
            "added_groups": [list(g) for g in self.added],
        }


def _relative(baseline, candidate):
    """Signed relative change, tolerant of a zero baseline."""
    if baseline:
        return (candidate - baseline) / abs(baseline)
    if candidate == baseline:
        return 0.0
    return float("inf") if candidate > baseline else float("-inf")


def compare_aggregates(baseline, candidate, threshold=DEFAULT_THRESHOLD,
                       baseline_root="baseline",
                       candidate_root="candidate"):
    """Diff two :class:`RootAggregate` objects group-by-group.

    Groups are matched on their ``(model, family, workload)`` key —
    "this scenario family vs baseline, all models" falls out of the
    grouping.  For every shared group and every
    :data:`BETTER_DIRECTION` metric the mean's relative change is
    computed; a move beyond ``threshold`` in the worse direction flags
    a regression.  Vanished baseline groups are reported as ``missing``
    (and fail :meth:`Comparison.ok`); new candidate groups are listed
    but never flagged.
    """
    deltas = []
    shared = sorted(set(baseline.groups) & set(candidate.groups))
    for key in shared:
        base_group = baseline.groups[key]
        cand_group = candidate.groups[key]
        for metric, better in sorted(BETTER_DIRECTION.items()):
            base_mean = base_group.metrics[metric].mean
            cand_mean = cand_group.metrics[metric].mean
            relative = _relative(base_mean, cand_mean)
            worse = relative > 0 if better == "lower" else relative < 0
            deltas.append(
                Delta(
                    group=key,
                    metric=metric,
                    baseline=base_mean,
                    candidate=cand_mean,
                    relative=relative,
                    regression=worse and abs(relative) > threshold,
                )
            )
    return Comparison(
        baseline_root=baseline_root,
        candidate_root=candidate_root,
        threshold=threshold,
        deltas=deltas,
        missing=sorted(set(baseline.groups) - set(candidate.groups)),
        added=sorted(set(candidate.groups) - set(baseline.groups)),
    )


def _root_dirs(path):
    """The campaign directories a report/compare path names.

    A store root (subdirectories holding ``results.jsonl``) expands to
    its campaigns; a single campaign directory stands alone, so both
    ``campaign report campaigns/`` and ``… campaigns/table1`` work.
    """
    names = campaign_dirs(path)
    if names:
        return [os.path.join(path, name) for name in names]
    return [path]


def compare(baseline_root, candidate_root, threshold=DEFAULT_THRESHOLD,
            max_bins=64):
    """Stream-aggregate two roots (or campaign dirs) and diff them."""
    baseline = aggregate_root(
        baseline_root, dirs=_root_dirs(baseline_root), max_bins=max_bins
    )
    candidate = aggregate_root(
        candidate_root, dirs=_root_dirs(candidate_root), max_bins=max_bins
    )
    return compare_aggregates(
        baseline, candidate, threshold=threshold,
        baseline_root=str(baseline_root),
        candidate_root=str(candidate_root),
    )


def format_comparison(comparison, limit=20):
    """Plain-text verdict for a :class:`Comparison` (CLI stdout)."""
    lines = [
        "baseline  {}".format(comparison.baseline_root),
        "candidate {}".format(comparison.candidate_root),
        "threshold {:.1%} ({} group-metric pairs compared)".format(
            comparison.threshold, len(comparison.deltas)
        ),
    ]
    regressions = comparison.regressions()
    for delta in regressions[:limit]:
        lines.append("  " + delta.describe())
    if len(regressions) > limit:
        lines.append(
            "  ... and {} more regressions".format(
                len(regressions) - limit)
        )
    for group in comparison.missing:
        lines.append(
            "  missing in candidate: {}".format("/".join(group))
        )
    if comparison.added:
        lines.append(
            "  {} new group(s) in candidate (not compared)".format(
                len(comparison.added))
        )
    lines.append(
        "OK — no regressions" if comparison.ok()
        else "FAIL — {} regression(s), {} missing group(s)".format(
            len(regressions), len(comparison.missing))
    )
    return "\n".join(lines)


# -- static HTML report ------------------------------------------------------

#: Inline stylesheet: role-based custom properties, light + dark from
#: the same ramps (dark is selected, not a flip), recessive chrome.
_CSS = """\
:root { color-scheme: light dark; }
body { margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
  font: 14px/1.5 system-ui, sans-serif;
  background: #fcfcfb; color: #0b0b0b; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.meta, .axis { color: #52514e; }
.tiles { display: flex; gap: 1rem; flex-wrap: wrap; margin: 1rem 0; }
.tile { border: 1px solid #e5e4e0; border-radius: 6px;
  padding: .6rem 1rem; min-width: 8rem; }
.tile .value { font-size: 1.5rem; font-weight: 600; }
.tile .label { color: #52514e; font-size: .85rem; }
table { border-collapse: collapse; margin: .5rem 0; width: 100%; }
th, td { padding: .3rem .6rem; text-align: right;
  border-bottom: 1px solid #e5e4e0; font-variant-numeric: tabular-nums; }
th { color: #52514e; font-weight: 600; }
th.key, td.key { text-align: left; }
tr.group-row:hover td { background: #f0efec; }
svg.heatmap { margin: .5rem 0; max-width: 100%; height: auto; }
svg.heatmap text { font: 11px system-ui, sans-serif; }
svg.heatmap text.axis { fill: #52514e; }
@media (prefers-color-scheme: dark) {
  body { background: #1a1a19; color: #ffffff; }
  .meta, .axis, .tile .label, th { color: #c3c2b7; }
  .tile, th, td { border-color: #383835; }
  tr.group-row:hover td { background: #262625; }
  svg.heatmap text.axis { fill: #c3c2b7; }
}
"""


def _fmt(value, digits=3):
    """Compact numeric cell text (empty for missing values)."""
    if value is None:
        return ""
    return "{:.{}g}".format(value, digits)


def _tile(value, label):
    """One stat tile."""
    return (
        '<div class="tile"><div class="value">{}</div>'
        '<div class="label">{}</div></div>'.format(
            escape(str(value)), escape(label))
    )


def _group_table(aggregate):
    """The per-group summary table (one row per group)."""
    dynamics_used = [
        column for column in DYNAMICS_COLUMNS
        if any(g.dynamics[column] for g in aggregate.groups.values())
    ]
    head = ["model", "family", "workload", "rows"]
    for metric in METRIC_COLUMNS:
        head += ["{} mean".format(metric), "p50", "p95"]
    head += dynamics_used
    cells = []
    for key, group in aggregate.group_items():
        row = [
            '<td class="key">{}</td>'.format(escape(part))
            for part in key
        ]
        row.append("<td>{}</td>".format(group.rows))
        for metric in METRIC_COLUMNS:
            stats = group.metrics[metric]
            row.append("<td>{}</td>".format(_fmt(stats.mean, 4)))
            row.append("<td>{}</td>".format(_fmt(stats.quantile(0.5))))
            row.append("<td>{}</td>".format(_fmt(stats.quantile(0.95))))
        for column in dynamics_used:
            row.append("<td>{}</td>".format(group.dynamics[column]))
        cells.append(
            '<tr class="group-row">{}</tr>'.format("".join(row))
        )
    header = "".join(
        '<th class="key">{0}</th>'.format(escape(h))
        if h in ("model", "family", "workload")
        else "<th>{}</th>".format(escape(h))
        for h in head
    )
    return "<table><thead><tr>{}</tr></thead><tbody>{}</tbody></table>".format(
        header, "".join(cells)
    )


def _axis_table(aggregate, axis, label):
    """One per-axis rollup table (weighted means along one dimension)."""
    rollup = aggregate.axis_rollup(axis)
    rows = []
    for value in aggregate.axis_values(axis):
        entry = rollup[value]
        cells = ['<td class="key">{}</td>'.format(escape(str(value))),
                 "<td>{}</td>".format(entry["rows"])]
        cells += [
            "<td>{}</td>".format(_fmt(entry["means"][m], 4))
            for m in METRIC_COLUMNS
        ]
        rows.append("<tr>{}</tr>".format("".join(cells)))
    header = '<th class="key">{}</th><th>rows</th>{}'.format(
        escape(label),
        "".join("<th>{}</th>".format(escape(m)) for m in METRIC_COLUMNS),
    )
    return "<table><thead><tr>{}</tr></thead><tbody>{}</tbody></table>".format(
        header, "".join(rows)
    )


#: Metrics given a heat panel (model rows × family columns).
HEATMAP_METRICS = ("settled_performance", "recovery_time_ms")


def render_html(aggregate, title="campaign report", source=None):
    """The complete self-contained report page as a string.

    Deterministic: sorted groups, no timestamps, no external fetches —
    repeated rendering of the same aggregate is byte-identical.
    """
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>{}</title>".format(escape(title)),
        "<style>{}</style></head><body>".format(_CSS),
        "<h1>{}</h1>".format(escape(title)),
    ]
    if source:
        parts.append(
            '<p class="meta">source: {}</p>'.format(escape(str(source)))
        )
    parts.append(
        '<div class="tiles">{}{}{}</div>'.format(
            _tile(aggregate.rows, "rows aggregated"),
            _tile(len(aggregate.groups),
                  "groups (model x family x workload)"),
            _tile(len(aggregate.campaigns) or "-", "campaigns merged"),
        )
    )
    if aggregate.campaigns:
        parts.append(
            '<p class="meta">campaigns: {}</p>'.format(
                escape(", ".join(sorted(aggregate.campaigns))))
        )
    parts.append("<h2>Groups</h2>")
    parts.append(_group_table(aggregate))
    for axis, label in ((0, "model"), (1, "family"), (2, "workload")):
        if len(aggregate.axis_values(axis)) > 1:
            parts.append("<h2>By {}</h2>".format(escape(label)))
            parts.append(_axis_table(aggregate, axis, label))
    for metric in HEATMAP_METRICS:
        rows, cols, cells = aggregate.matrix(metric)
        if rows and cols:
            parts.append(
                "<h2>{} (mean, model &#215; family)</h2>".format(
                    escape(metric))
            )
            parts.append(svg_heatmap(rows, cols, cells))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_report(root, out_dir=None, dirs=None, title=None, max_bins=64):
    """Aggregate a store root and write the static report.

    Streams the root's rows once (O(groups) memory), writes
    ``index.html`` (the self-contained page) and ``summary.json`` (the
    aggregate dump, for machines) into ``out_dir`` — default
    ``<root>/report`` — and returns the HTML path.
    """
    aggregate = aggregate_root(
        root, dirs=dirs if dirs is not None else _root_dirs(root),
        max_bins=max_bins,
    )
    out_dir = out_dir or os.path.join(root, "report")
    os.makedirs(out_dir, exist_ok=True)
    html_path = os.path.join(out_dir, REPORT_HTML)
    page = render_html(
        aggregate,
        title=title or "campaign report: {}".format(
            os.path.basename(os.path.normpath(root)) or root),
        source=root,
    )
    with open(html_path, "w") as handle:
        handle.write(page)
    with open(os.path.join(out_dir, REPORT_JSON), "w") as handle:
        json.dump(aggregate.summary(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return html_path
