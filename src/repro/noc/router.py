"""The Centurion five-port router (Figure 2a).

Ports: North, East, South, West, and an internal (Local) port to the node's
processing element; a sixth Router Configuration Access Port (RCAP) accepts
remote configuration writes without carrying application traffic.  The
router exposes *monitors* (routing events, per-task counts, queue state)
that the embedded Artificial Intelligence Module subscribes to, and honours
*knobs* via its configuration — this is the sense/actuate surface the
social-insect models are wired to.
"""

from repro.noc.topology import DIRECTIONS, INTERNAL


class Port:
    """One router port: an attachment point with per-port statistics."""

    __slots__ = ("name", "enabled", "packets_in", "packets_out")

    def __init__(self, name):
        self.name = name
        self.enabled = True
        self.packets_in = 0
        self.packets_out = 0

    def __repr__(self):
        return "Port({}, in={}, out={}, {})".format(
            self.name,
            self.packets_in,
            self.packets_out,
            "enabled" if self.enabled else "disabled",
        )


class RouterConfig:
    """Mutable router settings reachable through the RCAP.

    Attributes
    ----------
    routing_mode:
        ``"xy"`` or ``"adaptive"`` — the paper's two packet routing modes.
        ``xy`` is dimension-ordered (the evaluated system's "minimised
        Manhattan distance" heuristic); ``adaptive`` additionally lets the
        router pick the less-congested of the minimal output ports (the
        paper's §V extension).  Fault detours are independent of the mode.
    router_latency:
        Fixed µs added per hop for header decode and arbitration.
    recent_queue_depth:
        How many recently-forwarded packet tasks the router remembers; the
        Foraging-for-Work model reads this queue to pick its next task.
    """

    def __init__(self, routing_mode="xy", router_latency=2,
                 recent_queue_depth=8):
        if routing_mode not in ("xy", "adaptive"):
            raise ValueError("unknown routing mode {!r}".format(routing_mode))
        if router_latency < 0:
            raise ValueError("router_latency must be non-negative")
        if recent_queue_depth < 1:
            raise ValueError("recent_queue_depth must be >= 1")
        self.routing_mode = routing_mode
        self.router_latency = router_latency
        self.recent_queue_depth = recent_queue_depth

    def copy(self):
        """Independent copy (each router owns its settings).

        Skips ``__init__`` — the source instance already validated, and
        128 copies are made per platform construction.
        """
        clone = RouterConfig.__new__(RouterConfig)
        clone.routing_mode = self.routing_mode
        clone.router_latency = self.router_latency
        clone.recent_queue_depth = self.recent_queue_depth
        return clone


class Router:
    """A single mesh router.

    The router does not move packets itself — the :class:`~repro.noc.network.
    Network` drives hop scheduling — but it owns everything local: port
    state, the RCAP configuration interface, per-task routing-event counters
    (the NI model's monitor), the recent-task queue (the FFW model's
    monitor) and the observer list through which the AIM hears routing
    events.
    """

    def __init__(self, node_id, config=None):
        self.node_id = node_id
        self.config = config if config is not None else RouterConfig()
        self.ports = {name: Port(name) for name in DIRECTIONS}
        self.ports[INTERNAL] = Port(INTERNAL)
        self.failed = False
        #: packets routed through (any port), per destination task
        self.task_route_counts = {}
        #: most recent dest tasks forwarded (oldest first)
        self.recent_tasks = []
        self._observers = []
        self._routed_handlers = []
        self._dropped_handlers = []
        self.packets_forwarded = 0
        self.packets_sunk = 0
        #: Sunk packets whose payload arrived corrupted (counted in
        #: ``packets_sunk`` too — the flits did reach the internal port).
        self.corrupted_sunk = 0
        self.packets_dropped_here = 0

    # -- observer wiring (monitors) ------------------------------------------

    def add_observer(self, observer):
        """Subscribe an observer (typically the node's AIM).

        Observers may implement ``on_packet_routed(router, packet,
        to_internal)``; missing methods are tolerated so tests can pass
        minimal stubs.  Handlers are cached at subscription time — routing
        events are the hottest path in the simulation.
        """
        self._observers.append(observer)
        self._rebuild_handler_cache()

    def remove_observer(self, observer):
        """Unsubscribe an observer."""
        self._observers.remove(observer)
        self._rebuild_handler_cache()

    def _rebuild_handler_cache(self):
        self._routed_handlers = [
            handler
            for handler in (
                getattr(obs, "on_packet_routed", None)
                for obs in self._observers
            )
            if handler is not None
        ]
        self._dropped_handlers = [
            handler
            for handler in (
                getattr(obs, "on_packet_dropped", None)
                for obs in self._observers
            )
            if handler is not None
        ]

    # -- events driven by the network -----------------------------------------

    def notify_routed(self, packet, to_internal):
        """Record a routing event and fan it out to observers.

        ``to_internal`` is True when the packet was routed to the internal
        port (accepted by the local node) — the impulse that suppresses the
        FFW task-switch timeout.
        """
        if self.failed:
            return
        task = packet.dest_task
        counts = self.task_route_counts
        counts[task] = counts.get(task, 0) + 1
        if to_internal:
            self.packets_sunk += 1
            self.ports[INTERNAL].packets_out += 1
        else:
            self.packets_forwarded += 1
            recent = self.recent_tasks
            recent.append(task)
            overflow = len(recent) - self.config.recent_queue_depth
            if overflow > 0:
                del recent[:overflow]
        for handler in self._routed_handlers:
            handler(self, packet, to_internal)

    def notify_dropped(self, packet):
        """Report a packet dropped at this router to observers.

        A drop — deadlock recovery, no surviving provider, reroute budget
        exhausted — is the strongest local evidence that the colony is
        failing to do some task's work, so the AIM hears about it (the
        Foraging-for-Work model arms its task-switch timeout on it).
        """
        if self.failed:
            return
        self.packets_dropped_here += 1
        for handler in self._dropped_handlers:
            handler(self, packet)

    def record_port(self, port_name, incoming):
        """Update per-port counters for a packet crossing ``port_name``."""
        port = self.ports[port_name]
        if incoming:
            port.packets_in += 1
        else:
            port.packets_out += 1

    # -- failure ------------------------------------------------------------------

    def fail(self):
        """Hard-fail the router: all ports die and observers are silenced."""
        self.failed = True
        for port in self.ports.values():
            port.enabled = False

    def recover(self):
        """Revive a failed router (transient-fault recovery path).

        Ports re-enable and counters continue where they stopped; the
        node rejoins the mesh as a blank forwarding element.
        """
        self.failed = False
        for port in self.ports.values():
            port.enabled = True

    # -- RCAP ---------------------------------------------------------------------

    def rcap_write(self, settings):
        """Apply remote configuration (the paper's sixth port).

        ``settings`` is a mapping of :class:`RouterConfig` attribute names to
        new values; unknown keys raise ``KeyError`` to surface typos in
        experiment scripts.
        """
        if self.failed:
            raise RuntimeError(
                "RCAP write to failed router {}".format(self.node_id)
            )
        for key, value in settings.items():
            if not hasattr(self.config, key):
                raise KeyError("unknown router setting {!r}".format(key))
            setattr(self.config, key, value)

    def rcap_read(self):
        """Snapshot of current settings, as a plain dict."""
        return {
            "routing_mode": self.config.routing_mode,
            "router_latency": self.config.router_latency,
            "recent_queue_depth": self.config.recent_queue_depth,
        }

    def __repr__(self):
        return "Router(node={}, forwarded={}, sunk={}{})".format(
            self.node_id,
            self.packets_forwarded,
            self.packets_sunk,
            ", FAILED" if self.failed else "",
        )
