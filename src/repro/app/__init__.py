"""Application layer: task graphs, workloads, mappings and metrics.

The paper's workload is the Figure 3 fork-join task graph ("out-tree and an
in-tree phase ... the ratio experimented with is 1:3:1"): task 1 sources
fork work into three task-2 branches which join at task 3, and the goal is
to maximise the number of concurrently-sustained instances of this graph.
"""

from repro.app.mapping import (
    balanced_mapping,
    clustered_mapping,
    random_mapping,
)
from repro.app.metrics import MetricsSampler, MetricsSeries
from repro.app.taskgraph import Task, TaskGraph, fork_join_graph
from repro.app.workload import ForkJoinWorkload
from repro.app.workloads import (
    GraphWorkload,
    Workload,
    WorkloadSpec,
    load_workload,
)

__all__ = [
    "Task",
    "TaskGraph",
    "fork_join_graph",
    "ForkJoinWorkload",
    "GraphWorkload",
    "Workload",
    "WorkloadSpec",
    "load_workload",
    "MetricsSampler",
    "MetricsSeries",
    "random_mapping",
    "balanced_mapping",
    "clustered_mapping",
]
