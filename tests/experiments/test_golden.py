"""Golden-file regression suite for the paper artefacts.

The determinism tests prove runs repeat bit-identically *within* one
code version; this suite pins the actual numbers *across* versions.
Table I rows, Table II rows and one Figure 4 panel are computed at a
fixed seed set on the small platform and compared, value for value,
against JSON files checked into ``tests/experiments/golden/`` — a
refactor that silently drifts any paper output fails here even if it is
self-consistent.

To refresh after an *intentional* behaviour change::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py \
        --update-golden

then review the golden-file diff like any other code change.
"""

import json
import os

import pytest

from repro.experiments.runner import run_batch, run_single
from repro.experiments.tables import table1_from_runs, table2_from_runs
from repro.platform.config import PlatformConfig

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: Fixed sweep shape: small enough to run in CI, wide enough that every
#: model and the fault axis contribute to the pinned values.
CONFIG = PlatformConfig.small(horizon_us=160_000, fault_time_us=80_000)
MODELS = ("none", "network_interaction", "foraging_for_work")
SEEDS = (101, 102, 103)
TABLE2_FAULTS = (0, 4)
FIGURE4_MODEL = "foraging_for_work"
FIGURE4_FAULTS = 4
FIGURE4_SEED = 101


def _canonical(payload):
    """Round-trip through JSON so compares see exactly the stored form."""
    return json.loads(json.dumps(payload, sort_keys=True))


def check_golden(name, payload, update):
    """Compare ``payload`` against ``golden/<name>.json`` (or rewrite)."""
    payload = _canonical(payload)
    path = os.path.join(GOLDEN_DIR, name + ".json")
    if update:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        pytest.skip("golden file {} refreshed".format(name))
    if not os.path.exists(path):
        pytest.fail(
            "golden file {} missing — generate it with "
            "--update-golden".format(path)
        )
    with open(path) as handle:
        expected = json.load(handle)
    assert payload == expected, (
        "{} drifted from its golden pin; if the change is intentional, "
        "refresh with --update-golden and review the diff".format(name)
    )


def _table_runs(fault_counts):
    runs = []
    for model in MODELS:
        for faults in fault_counts:
            runs.extend(
                run_batch(
                    model, SEEDS, faults=faults, config=CONFIG, processes=0
                )
            )
    return runs


def test_table1_rows_match_golden(update_golden):
    rows = table1_from_runs(_table_runs((0,)))
    check_golden("table1_rows", rows, update_golden)


def test_table2_rows_match_golden(update_golden):
    rows = table2_from_runs(_table_runs(TABLE2_FAULTS))
    check_golden("table2_rows", rows, update_golden)


def test_figure4_panel_matches_golden(update_golden):
    result = run_single(
        FIGURE4_MODEL,
        seed=FIGURE4_SEED,
        faults=FIGURE4_FAULTS,
        config=CONFIG,
        keep_series=True,
    )
    panel = {
        "model": result.model,
        "faults": result.faults,
        "row": result.as_row(),
        "series": result.series.as_dict(),
    }
    check_golden("figure4_panel", panel, update_golden)
