"""Time units used throughout the simulator.

All simulation time is kept as integer microseconds.  The paper quotes its
parameters in milliseconds (task-1 period 4 ms, FFW timeout 20 ms, fault
injection at 500 ms, horizon 1000 ms); integer microseconds give us exact
representation of those values with headroom for sub-millisecond router
latencies, and integers keep the event queue deterministic (no float
tie-break surprises).
"""

MICROSECONDS_PER_MILLISECOND = 1000


def ms_to_us(milliseconds):
    """Convert milliseconds to integer microseconds.

    Accepts ints or floats; the result is always an ``int`` so it can be used
    directly as a simulation timestamp.

    >>> ms_to_us(4)
    4000
    >>> ms_to_us(0.5)
    500
    """
    return int(round(milliseconds * MICROSECONDS_PER_MILLISECOND))


def us_to_ms(microseconds):
    """Convert integer microseconds to float milliseconds.

    >>> us_to_ms(4000)
    4.0
    """
    return microseconds / MICROSECONDS_PER_MILLISECOND
