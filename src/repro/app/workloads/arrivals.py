"""Time-varying arrival shapes for declarative workloads.

An :class:`ArrivalSpec` marks a task as a *source* and describes when
its generation ticks actually emit packets. The PE's periodic process
keeps firing at the base ``period_us`` regardless of shape; the shape
decides, per tick, whether the tick emits (`emits`). Returning no
packets on a gated tick leaves the PE's generation sequence untouched,
so instance numbering stays dense and the constant shape is
bit-identical to the legacy fixed-rate path.

Three shapes:

``constant``
    Every tick emits. Zero RNG draws — byte-identical to the legacy
    ``ForkJoinWorkload`` schedule.
``burst``
    Deterministic on/off trains: ``burst_ticks`` emitting ticks followed
    by ``idle_ticks`` silent ones, phase-locked to each source node's
    own tick counter. Zero RNG draws.
``diurnal``
    A sinusoidal load curve (the "millions of users" day/night shape):
    the emission probability at time ``t`` is

        rate(t) = floor + (1 - floor) * 0.5 * (1 + sin(2*pi*t/cycle_us))

    which peaks at 1.0 once per ``cycle_us`` and bottoms out at
    ``floor``. Each tick draws one uniform variate from the dedicated
    ``workload-arrival`` stream and emits iff it lands under the curve.

``rate_at`` is always within ``[0, 1]`` (pinned by a hypothesis
property) and ``mean_rate`` feeds the capacity lint and the load-aware
mapping policy.
"""

import dataclasses
import math

# Named RNG streams (see repro.sim.rng) — creation-order-insensitive, so
# shapes that never draw leave every other stream byte-identical.
ARRIVAL_STREAM = "workload-arrival"
SERVICE_STREAM = "workload-service"

ARRIVAL_CONSTANT = "constant"
ARRIVAL_BURST = "burst"
ARRIVAL_DIURNAL = "diurnal"
ARRIVAL_SHAPES = (ARRIVAL_CONSTANT, ARRIVAL_BURST, ARRIVAL_DIURNAL)


@dataclasses.dataclass(frozen=True)
class ArrivalSpec:
    """Arrival schedule of a source task.

    ``period_us`` is the base generation period; the shape modulates
    which of those base ticks emit. Shape-specific fields must be left
    ``None`` for shapes that do not use them.
    """

    period_us: int
    shape: str = ARRIVAL_CONSTANT
    burst_ticks: int = None
    idle_ticks: int = None
    cycle_us: int = None
    floor: float = None

    def __post_init__(self):
        if not isinstance(self.period_us, int) or self.period_us < 1:
            raise ValueError(
                f"arrival period_us must be a positive integer, "
                f"got {self.period_us!r}"
            )
        if self.shape not in ARRIVAL_SHAPES:
            raise ValueError(
                f"unknown arrival shape {self.shape!r} "
                f"(known: {', '.join(ARRIVAL_SHAPES)})"
            )
        burst_fields = {
            "burst_ticks": self.burst_ticks, "idle_ticks": self.idle_ticks,
        }
        diurnal_fields = {"cycle_us": self.cycle_us, "floor": self.floor}
        if self.shape == ARRIVAL_BURST:
            for label, value in burst_fields.items():
                if not isinstance(value, int) or value < 1:
                    raise ValueError(
                        f"burst arrivals need {label} >= 1, got {value!r}"
                    )
            extra = {k for k, v in diurnal_fields.items() if v is not None}
        elif self.shape == ARRIVAL_DIURNAL:
            if not isinstance(self.cycle_us, int) or self.cycle_us < 2:
                raise ValueError(
                    f"diurnal arrivals need cycle_us >= 2, "
                    f"got {self.cycle_us!r}"
                )
            if self.floor is not None:
                if not isinstance(self.floor, (int, float)) or isinstance(
                    self.floor, bool
                ) or not 0.0 <= self.floor < 1.0:
                    raise ValueError(
                        f"diurnal floor must lie in [0, 1), "
                        f"got {self.floor!r}"
                    )
            extra = {k for k, v in burst_fields.items() if v is not None}
        else:
            extra = {
                k for k, v in {**burst_fields, **diurnal_fields}.items()
                if v is not None
            }
        if extra:
            raise ValueError(
                f"arrival shape {self.shape!r} does not take "
                f"{', '.join(sorted(extra))}"
            )

    # -- runtime -----------------------------------------------------------

    def needs_rng(self):
        """True when :meth:`emits` consumes a random draw (diurnal)."""
        return self.shape == ARRIVAL_DIURNAL

    def emits(self, tick, now_us, rng=None):
        """Does base tick number ``tick`` (fired at ``now_us``) emit?

        Only the diurnal shape consumes ``rng`` (exactly one uniform
        draw per tick); the other shapes are draw-free.
        """
        if self.shape == ARRIVAL_CONSTANT:
            return True
        if self.shape == ARRIVAL_BURST:
            return tick % (self.burst_ticks + self.idle_ticks) \
                < self.burst_ticks
        return rng.random() < self.rate_at(now_us)

    # -- analysis ----------------------------------------------------------

    def rate_at(self, t_us):
        """Expected emission probability for a base tick at time ``t_us``.

        Always within ``[0, 1]``. For the burst shape this is the
        deterministic 0/1 gate evaluated at the tick the time falls in.
        """
        if self.shape == ARRIVAL_CONSTANT:
            return 1.0
        if self.shape == ARRIVAL_BURST:
            tick = (t_us // self.period_us) % (
                self.burst_ticks + self.idle_ticks
            )
            return 1.0 if tick < self.burst_ticks else 0.0
        floor = self.floor or 0.0
        swing = 0.5 * (1.0 + math.sin(2.0 * math.pi * t_us / self.cycle_us))
        rate = floor + (1.0 - floor) * swing
        return min(1.0, max(0.0, rate))

    def mean_rate(self):
        """Long-run fraction of base ticks that emit."""
        if self.shape == ARRIVAL_CONSTANT:
            return 1.0
        if self.shape == ARRIVAL_BURST:
            return self.burst_ticks / (self.burst_ticks + self.idle_ticks)
        floor = self.floor or 0.0
        return floor + (1.0 - floor) * 0.5

    # -- serialisation -----------------------------------------------------

    def to_dict(self):
        """Compact dict — shape-specific fields only when set."""
        data = {"period_us": self.period_us}
        if self.shape != ARRIVAL_CONSTANT:
            data["shape"] = self.shape
        for label in ("burst_ticks", "idle_ticks", "cycle_us", "floor"):
            value = getattr(self, label)
            if value is not None:
                data[label] = value
        return data

    def canonical(self):
        """Hash form: identical to ``to_dict`` (every field that is set
        participates; ``shape`` is implied ``constant`` when absent)."""
        return self.to_dict()

    @classmethod
    def from_dict(cls, data):
        if isinstance(data, int):
            return cls(period_us=data)
        if not isinstance(data, dict):
            raise ValueError(
                f"arrival must be a period integer or a dict, got {data!r}"
            )
        data = dict(data)
        kwargs = {"period_us": data.pop("period_us", None)}
        if kwargs["period_us"] is None:
            raise ValueError("arrival dict needs a period_us")
        for label in ("shape", "burst_ticks", "idle_ticks", "cycle_us",
                      "floor"):
            if label in data:
                kwargs[label] = data.pop(label)
        if data:
            raise ValueError(
                f"unknown arrival field(s): {', '.join(sorted(data))}"
            )
        return cls(**kwargs)
