"""Model registry: names → model classes.

Experiments select intelligence schemes by name (``"none"``,
``"network_interaction"``, ``"foraging_for_work"``, ...); this registry maps
those names to classes and builds per-node instances.  Every node gets its
own model instance — the AIMs are independent controllers, exactly like the
per-node PicoBlazes.
"""

from repro.core.models.adaptive_ni import AdaptiveNetworkInteractionModel
from repro.core.models.foraging_for_work import ForagingForWorkModel
from repro.core.models.information_transfer import InformationTransferModel
from repro.core.models.network_interaction import NetworkInteractionModel
from repro.core.models.no_intelligence import NoIntelligenceModel
from repro.core.models.response_threshold import ResponseThresholdModel
from repro.core.models.self_reinforcement import SelfReinforcementModel
from repro.core.models.social_inhibition import SocialInhibitionModel

MODEL_REGISTRY = {
    cls.name: cls
    for cls in (
        NoIntelligenceModel,
        NetworkInteractionModel,
        AdaptiveNetworkInteractionModel,
        ForagingForWorkModel,
        ResponseThresholdModel,
        InformationTransferModel,
        SelfReinforcementModel,
        SocialInhibitionModel,
    )
}

#: Aliases matching the paper's abbreviations.
MODEL_ALIASES = {
    "ni": "network_interaction",
    "ffw": "foraging_for_work",
    "ani": "adaptive_network_interaction",
    "no_intelligence": "none",
}


def resolve_model_name(name):
    """Canonical registry name for ``name`` (accepts paper aliases)."""
    canonical = MODEL_ALIASES.get(name, name)
    if canonical not in MODEL_REGISTRY:
        raise KeyError(
            "unknown model {!r}; known: {}".format(
                name, sorted(MODEL_REGISTRY) + sorted(MODEL_ALIASES)
            )
        )
    return canonical


def create_model(name, task_ids, **params):
    """Instantiate a fresh model by (possibly aliased) name."""
    cls = MODEL_REGISTRY[resolve_model_name(name)]
    return cls(task_ids, **params)
