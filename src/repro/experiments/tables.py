"""Table I and Table II re-generators.

Both tables report quartiles over independent runs, with performance
*relative to the highlighted case*: the No-Intelligence model's median
settled performance at zero faults.  ``table1``/``table2`` take the raw
:class:`~repro.experiments.runner.RunResult` lists and produce row dicts;
``format_table`` renders them in the paper's layout.
"""

from repro.experiments.stats import median, quartiles

#: The paper's model ordering in both tables.
MODEL_ORDER = ("none", "network_interaction", "foraging_for_work")

MODEL_LABELS = {
    "none": "No Intelligence",
    "network_interaction": "Network Interaction",
    "foraging_for_work": "Foraging For Work",
}


def group_runs(results):
    """``{(model, faults): [RunResult, ...]}`` from a flat run list.

    Campaign executors hand back one flat, grid-ordered result list;
    this regroups it into the keyed shape :func:`table1`/:func:`table2`
    consume.  Insertion order (and order within each group) follows the
    input, so grouping is deterministic.
    """
    grouped = {}
    for result in results:
        grouped.setdefault((result.model, result.faults), []).append(result)
    return grouped


def table1_from_runs(results, reference=None):
    """Table I rows from a flat zero-fault run list (campaign output)."""
    by_model = {}
    for (model, faults), group in group_runs(results).items():
        if faults == 0:
            by_model[model] = group
    return table1(by_model, reference=reference)


def table2_from_runs(results, reference=None):
    """Table II rows from a flat run list (campaign output)."""
    return table2(group_runs(results), reference=reference)


def baseline_reference(results_by_model):
    """The highlighted case: baseline median settled performance.

    ``results_by_model`` maps model name -> list of zero-fault RunResults.
    """
    baseline = results_by_model.get("none")
    if not baseline:
        raise ValueError("need zero-fault baseline runs for normalisation")
    return median([r.settled_performance for r in baseline])


def table1(results_by_model, reference=None):
    """Table I rows: settling time + relative performance quartiles.

    Parameters
    ----------
    results_by_model:
        Mapping model name -> list of zero-fault RunResults.
    reference:
        Normalisation level; defaults to the baseline median
        (the table's highlighted case).
    """
    if reference is None:
        reference = baseline_reference(results_by_model)
    if reference <= 0:
        raise ValueError("reference performance must be positive")
    rows = []
    for model in MODEL_ORDER:
        results = results_by_model.get(model)
        if not results:
            continue
        settle_q = quartiles([r.settling_time_ms for r in results])
        perf_q = quartiles(
            [100.0 * r.settled_performance / reference for r in results]
        )
        rows.append(
            {
                "model": model,
                "label": MODEL_LABELS.get(model, model),
                "settling_q1": settle_q[0],
                "settling_q2": settle_q[1],
                "settling_q3": settle_q[2],
                "perf_q1": perf_q[0],
                "perf_q2": perf_q[1],
                "perf_q3": perf_q[2],
                "runs": len(results),
            }
        )
    return rows


def table2(results_by_model_and_faults, reference=None):
    """Table II rows: recovery time + relative performance per fault count.

    Parameters
    ----------
    results_by_model_and_faults:
        Mapping ``(model name, fault count)`` -> list of RunResults.
    reference:
        Normalisation level; defaults to baseline median at zero faults.
    """
    if reference is None:
        zero_fault = {
            model: results
            for (model, faults), results in results_by_model_and_faults.items()
            if faults == 0
        }
        reference = baseline_reference(zero_fault)
    if reference <= 0:
        raise ValueError("reference performance must be positive")
    fault_counts = sorted(
        {faults for (_m, faults) in results_by_model_and_faults}
    )
    rows = []
    for model in MODEL_ORDER:
        for faults in fault_counts:
            results = results_by_model_and_faults.get((model, faults))
            if not results:
                continue
            perf_values = [
                100.0 * r.recovered_performance / reference for r in results
            ]
            perf_q = quartiles(perf_values)
            row = {
                "model": model,
                "label": MODEL_LABELS.get(model, model),
                "faults": faults,
                "perf_q1": perf_q[0],
                "perf_q2": perf_q[1],
                "perf_q3": perf_q[2],
                "runs": len(results),
            }
            if faults == 0:
                row.update(
                    recovery_q1=None, recovery_q2=None, recovery_q3=None
                )
            else:
                rec_q = quartiles([r.recovery_time_ms for r in results])
                row.update(
                    recovery_q1=rec_q[0],
                    recovery_q2=rec_q[1],
                    recovery_q3=rec_q[2],
                )
            rows.append(row)
    return rows


def _fmt(value, width=6, decimals=0, suffix=""):
    if value is None:
        return "-".rjust(width)
    return "{:>{w}.{d}f}{s}".format(value, w=width, d=decimals, s=suffix)


def format_table(rows, kind):
    """ASCII rendering of table rows (``kind`` is ``"table1"``/``"table2"``)."""
    lines = []
    if kind == "table1":
        lines.append(
            "{:<22} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}".format(
                "Model", "S.Q1", "S.Q2", "S.Q3", "P.Q1%", "P.Q2%", "P.Q3%"
            )
        )
        lines.append("-" * len(lines[0]))
        for row in rows:
            lines.append(
                "{:<22} | {} {} {} | {} {} {}".format(
                    row["label"],
                    _fmt(row["settling_q1"]),
                    _fmt(row["settling_q2"]),
                    _fmt(row["settling_q3"]),
                    _fmt(row["perf_q1"]),
                    _fmt(row["perf_q2"]),
                    _fmt(row["perf_q3"]),
                )
            )
    elif kind == "table2":
        lines.append(
            "{:<22} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}".format(
                "Model", "Faults", "R.Q1", "R.Q2", "R.Q3",
                "P.Q1%", "P.Q2%", "P.Q3%",
            )
        )
        lines.append("-" * len(lines[0]))
        for row in rows:
            lines.append(
                "{:<22} {:>6} | {} {} {} | {} {} {}".format(
                    row["label"],
                    row["faults"],
                    _fmt(row["recovery_q1"]),
                    _fmt(row["recovery_q2"]),
                    _fmt(row["recovery_q3"]),
                    _fmt(row["perf_q1"]),
                    _fmt(row["perf_q2"]),
                    _fmt(row["perf_q3"]),
                )
            )
    else:
        raise ValueError("unknown table kind {!r}".format(kind))
    return "\n".join(lines)
