"""The Artificial Intelligence Module (AIM).

One AIM per node, as in Figure 2a: a PicoBlaze-class controller wired
between the node's monitors and knobs, hosting an uploaded intelligence
program (a :class:`repro.core.models.base.IntelligenceModel`).  The AIM

* subscribes to the router (routing-event impulses) and the processing
  element (internal-sink / execution / task-change impulses),
* runs a periodic timer tick (the "Timer Tick" input of Figure 2b) that
  drives time-based model logic such as the Foraging-for-Work timeout,
* exposes the knob bank to the model, and
* accepts RCAP-style parameter writes so the Experiment Controller can
  retune models remotely at runtime.

Timer modes
-----------
The tick train runs in one of two bit-identical modes (the
``timer_mode`` knob on :class:`repro.platform.config.PlatformConfig`):

``"ticked"``
    The classic poll: one shared periodic event per period relays
    ``on_tick`` to every AIM whether or not any model has a timer armed.
``"event"``
    Demand-driven: the bank asks each model *when* it next needs a tick
    (:meth:`~repro.core.models.base.IntelligenceModel.next_wakeup`) and
    schedules a wakeup only at the first grid tick at or after that
    deadline — idle nodes schedule nothing.  Wakeups ride the
    no-allocation :meth:`~repro.sim.engine.Simulator.post_at` path and
    stale ones (the model disarmed or re-armed since) strand as no-ops
    behind a due-ness re-check, the same trick
    :class:`~repro.sim.process.PeriodicProcess` plays with epochs — no
    tombstones on the hot path.  Because wakeups are quantised UP to the
    exact grid the periodic train would have used, and relayed in the
    same registration order at a priority strictly after the metrics
    sampler, firing times, RNG draw order and every observable are
    conserved; if any registered model does real per-tick work
    (``next_wakeup`` → ``None``) the bank degenerates to the periodic
    train, grid-aligned, and the two modes coincide exactly.
"""

from repro.core.knobs import standard_knob_bank
from repro.core.models.base import IDLE
from repro.core.monitors import standard_monitor_bank
from repro.sim.process import PeriodicProcess

#: Allowed values for the platform ``timer_mode`` knob.
TIMER_MODES = ("ticked", "event")


class AimTickBank:
    """One shared timer-tick event train for all AIMs on a platform.

    Every AIM ticks at the same period and they are all started together
    at platform construction, so the per-node tick events land on the same
    timestamps and dispatch in node order.  The bank collapses them into a
    *single* periodic event that relays the tick to each registered AIM in
    registration (node) order — observably identical to per-AIM tick
    events, at a fraction of the kernel traffic: 128 heap events per
    period become one.

    In ``"event"`` mode the bank goes further: no periodic train at all.
    Models report their timer demand through ``next_wakeup`` and the bank
    posts one wakeup per armed grid tick (deduplicated across nodes), so a
    platform whose models are all idle or purely reactive schedules zero
    timer events.  See the module docstring for the equivalence argument.
    """

    def __init__(self, sim, period_us, timer_mode="ticked"):
        if timer_mode not in TIMER_MODES:
            raise ValueError(
                "timer_mode must be one of {}, got {!r}".format(
                    TIMER_MODES, timer_mode
                )
            )
        self.sim = sim
        self.period_us = int(period_us)
        self.timer_mode = timer_mode
        self.event_mode = timer_mode == "event"
        self._aims = []
        self._process = PeriodicProcess(
            sim, period_us, self._tick_all, priority=sim.PRIORITY_SAMPLE
        )
        #: Grid anchor: the bank's first-register time.  The periodic train
        #: fires at ``anchor + k*period`` (k >= 1); event-mode wakeups are
        #: quantised to the same grid.
        self._anchor = None
        #: Grid times with a wakeup already posted (event mode).
        self._pending = set()
        #: True once event mode has fallen back to the periodic train
        #: because a registered model does real per-tick work.
        self._degenerate = False

    def register(self, aim):
        """Add an AIM to the bank (starts the train on first use).

        In event mode nothing is scheduled here: the AIM's model is
        uploaded after registration and announces its demand through
        :meth:`note_state`.
        """
        if self._anchor is None:
            self._anchor = self.sim.now
        self._aims.append(aim)
        if self.event_mode and not self._degenerate:
            aim._event_bank = self
            return
        if not self._process.running:
            self._process.start()

    def _tick_all(self, _process):
        # Dispatches straight to the models (one frame per node instead of
        # three); mirrors the checks in ArtificialIntelligenceModule._on_tick.
        now = self.sim.now
        for aim in self._aims:
            model = aim.model
            if aim._ticking and model is not None and not aim.pe.halted:
                model.on_tick(aim, now)

    # -- event mode ----------------------------------------------------------

    def note_state(self, aim):
        """Re-read one AIM's timer demand after a state change.

        Called by the AIM after every relayed monitor event, model upload,
        RCAP write and restart.  Arming (or moving a deadline earlier)
        always happens inside one of those hooks, so the bank never misses
        a wakeup; disarming needs no action at all — the already-posted
        wakeup strands as a no-op.
        """
        model = aim.model
        if model is None or not aim._ticking or aim.pe.halted:
            return
        wakeup = model.next_wakeup(self.sim.now)
        if wakeup is None:
            self._degenerate_to_periodic()
        elif wakeup is not IDLE:
            self._request(wakeup)

    def _request(self, deadline):
        """Post a wakeup at the first grid tick at or after ``deadline``."""
        anchor = self._anchor
        period = self.period_us
        k = -(-(deadline - anchor) // period)  # ceil division
        if k < 1:
            k = 1
        t = anchor + k * period
        now = self.sim.now
        if t <= now:
            # Deadline quantised into the past (an RCAP write shrank an
            # armed timeout): the earliest equivalent tick is the next
            # grid tick strictly after now.
            t = anchor + ((now - anchor) // period + 1) * period
        pending = self._pending
        if t not in pending:
            pending.add(t)
            self.sim.post_at(
                t, lambda: self._fire(t), priority=self.sim.PRIORITY_WAKEUP
            )

    def _fire(self, t):
        """Relay a wakeup tick to every *due* model, registration order.

        Models whose deadline has not arrived (or that disarmed since the
        wakeup was posted) are skipped — their ``on_tick`` is a guaranteed
        no-op by the ``next_wakeup`` contract, so skipping is observably
        identical to the periodic train calling it.
        """
        self._pending.discard(t)
        if self._degenerate:
            return  # the periodic train took over; strand this wakeup
        now = self.sim.now
        fired = []
        for aim in self._aims:
            model = aim.model
            if aim._ticking and model is not None and not aim.pe.halted:
                wakeup = model.next_wakeup(now)
                if wakeup is not None and wakeup is not IDLE and wakeup <= now:
                    model.on_tick(aim, now)
                    fired.append(aim)
        for aim in fired:
            # A fired model may have re-armed inside on_tick without a
            # monitor event (e.g. FFW picking up fresh evidence).
            self.note_state(aim)

    def _degenerate_to_periodic(self):
        """Fall back to the periodic train: some model ticks every period.

        The train starts grid-aligned (next grid tick strictly after now),
        so its firing times are exactly the ones ticked mode would produce,
        and every AIM's ``_event_bank`` link is cleared so the relay hooks
        stop paying the demand re-read.  Pending wakeups strand in
        :meth:`_fire`.
        """
        if self._degenerate:
            return
        self._degenerate = True
        for aim in self._aims:
            aim._event_bank = None
        now = self.sim.now
        period = self.period_us
        anchor = self._anchor if self._anchor is not None else now
        delay = anchor + ((now - anchor) // period + 1) * period - now
        if not self._process.running:
            self._process.start(initial_delay=delay)


class ArtificialIntelligenceModule:
    """Embedded intelligence for one node.

    Parameters
    ----------
    sim, pe, router, network:
        The node's simulator, processing element, router and the NoC.
    model:
        The intelligence program to host (may be ``None`` for an
        unmanaged node; a model can also be uploaded later through
        :meth:`upload_model`, like the Experiment Controller uploading
        PicoBlaze code).
    tick_period_us:
        Timer-tick period for the model's ``on_tick``.
    tick_bank:
        Optional shared :class:`AimTickBank`.  When given, this AIM rides
        the platform-wide tick event instead of owning a periodic process;
        standalone AIMs (``None``) keep their own train.
    timer_mode:
        Only meaningful for standalone AIMs (``tick_bank is None``):
        ``"event"`` gives the AIM a private event-mode bank instead of a
        periodic process.  Bank-riding AIMs inherit the bank's mode.
    """

    def __init__(self, sim, pe, router, network, model=None,
                 tick_period_us=1000, tick_bank=None, timer_mode="ticked"):
        self.sim = sim
        self.pe = pe
        self.router = router
        self.network = network
        self.node_id = pe.node_id
        self._monitors = None
        self.knobs = standard_knob_bank(pe, router)
        self.model = None
        self._ticking = False
        #: Set by an event-mode :class:`AimTickBank` at registration; the
        #: relay hooks re-announce timer demand through it after every
        #: monitor event.  ``None`` in ticked/degenerate mode, keeping the
        #: classic path one attribute test away from unchanged.
        self._event_bank = None
        if tick_bank is None and timer_mode == "event":
            tick_bank = AimTickBank(sim, tick_period_us, timer_mode="event")
        if tick_bank is None:
            self._tick = PeriodicProcess(
                sim, tick_period_us, self._on_tick,
                priority=sim.PRIORITY_SAMPLE,
            )
        else:
            self._tick = None
            tick_bank.register(self)
        router.add_observer(self)
        pe.add_observer(self)
        if model is not None:
            self.upload_model(model)

    @property
    def monitors(self):
        """The node's monitor bank, built on first access.

        Only a minority of models read monitors directly (most subscribe
        to impulses instead), and platform construction is on the
        benchmark hot path, so the eight monitor objects are lazy.
        """
        monitors = self._monitors
        if monitors is None:
            monitors = self._monitors = standard_monitor_bank(
                self.sim, self.pe, self.router, self.network
            )
        return monitors

    # -- program upload ------------------------------------------------------

    def upload_model(self, model):
        """Install (or replace) the hosted intelligence program."""
        self.model = model
        if model is not None:
            model.bind(self)
            self.knobs["task_select"].reason = model.name
            self._ticking = True
            if self._tick is not None and not self._tick.running:
                self._tick.start()
            bank = self._event_bank
            if bank is not None:
                bank.note_state(self)
        else:
            self._ticking = False
            if self._tick is not None:
                self._tick.stop()

    def shutdown(self):
        """Stop the timer tick (used when the node dies)."""
        self._ticking = False
        if self._tick is not None:
            self._tick.stop()

    def restart(self):
        """Resume the timer tick after node recovery.

        Tick-bank AIMs just flip their gate back on (the shared train
        never stopped); standalone AIMs restart their own process.  An
        AIM with no model stays silent, exactly as at construction.

        The model's :meth:`~repro.core.models.base.IntelligenceModel.
        on_restart` hook runs first, in every timer mode: a deadline armed
        before the fault is stale evidence (the node's task and queues
        were wiped), so e.g. FFW disarms instead of firing an immediate
        switch against a pre-fault candidate.
        """
        if self.model is None:
            return
        self._ticking = True
        self.model.on_restart(self)
        if self._tick is not None and not self._tick.running:
            self._tick.start()
        bank = self._event_bank
        if bank is not None:
            bank.note_state(self)

    # -- router monitor relay ---------------------------------------------------

    def on_packet_routed(self, router, packet, to_internal):
        """Router monitor relay (filters locally-injected packets)."""
        if self.model is None or self.pe.halted:
            return
        # Locally-injected packets (hop count still zero) are the node's own
        # emissions, not observed traffic; monitors sit on the mesh input
        # ports so they do not see them.
        injected = packet.hops == 0 and not to_internal
        self.model.on_packet_routed(
            self, packet, to_internal=to_internal, injected=injected
        )
        bank = self._event_bank
        if bank is not None:
            bank.note_state(self)

    def on_packet_dropped(self, router, packet):
        """Router drop-event relay."""
        if self.model is None or self.pe.halted:
            return
        self.model.on_packet_dropped(self, packet)
        bank = self._event_bank
        if bank is not None:
            bank.note_state(self)

    # -- processing element monitor relay -----------------------------------------

    def on_internal_sink(self, pe, packet):
        """PE internal-sink monitor relay."""
        if self.model is not None and not pe.halted:
            self.model.on_internal_sink(self, packet)
            bank = self._event_bank
            if bank is not None:
                bank.note_state(self)

    def on_execution_complete(self, pe, task_id):
        """PE execution-complete monitor relay."""
        if self.model is not None and not pe.halted:
            self.model.on_execution_complete(self, task_id)
            bank = self._event_bank
            if bank is not None:
                bank.note_state(self)

    def on_task_changed(self, pe, old, new):
        """PE task-change monitor relay."""
        if self.model is not None and not pe.halted:
            self.model.on_task_changed(self, old, new)
            bank = self._event_bank
            if bank is not None:
                bank.note_state(self)

    # -- timer tick -----------------------------------------------------------------

    def _on_tick(self, _process):
        if self.model is None or self.pe.halted:
            return
        self.model.on_tick(self, self.sim.now)

    # -- knob helpers used by models ---------------------------------------------------

    def switch_task(self, task_id):
        """Pull the task-select knob; returns the resulting task."""
        return self.knobs["task_select"].set(task_id)

    def current_task(self):
        """The node's current task (monitor view)."""
        return self.pe.task_id

    def set_frequency(self, mhz):
        """Pull the DVFS knob; returns the applied frequency."""
        return self.knobs["frequency"].set(mhz)

    def set_clock_enabled(self, enabled):
        """Pull the clock-enable knob."""
        return self.knobs["clock_enable"].set(enabled)

    def reset_node(self):
        """Pull the reset knob."""
        return self.knobs["reset"].set()

    # -- RCAP parameter access --------------------------------------------------------------

    def rcap_write_params(self, params):
        """Remote model retuning (thresholds etc.) via the RCAP."""
        if self.model is None:
            raise RuntimeError("no model uploaded to AIM {}".format(
                self.node_id))
        self.model.configure(**params)
        # A retune can move an armed deadline (e.g. shrinking the FFW
        # timeout), so re-announce the timer demand.
        bank = self._event_bank
        if bank is not None:
            bank.note_state(self)

    def __repr__(self):
        model_name = self.model.name if self.model is not None else None
        return "AIM(node={}, model={})".format(self.node_id, model_name)
