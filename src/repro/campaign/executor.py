"""Sharded campaign executor with checkpoint/resume.

:func:`run_campaign` expands a :class:`~repro.campaign.spec.CampaignSpec`,
splits the grid into cells already present in the store and cells still
pending, streams the pending ones through
:func:`repro.experiments.runner.iter_runs` (chunked ``imap`` over a
multiprocessing pool, ordered collection, failures wrapped with their
``(model, seed, faults)`` context), and checkpoints each finished cell to
the store *as it completes* — killing a sweep and re-running it resumes
exactly where it stopped.
"""

import dataclasses
import time

from repro.campaign.store import ResultStore
from repro.experiments.runner import iter_runs


@dataclasses.dataclass
class CampaignReport:
    """A finished campaign: cells, results (same order), and counters."""

    spec: object
    descriptors: list
    results: list
    executed: int
    cached: int
    elapsed_s: float
    store_dir: str = None

    def pairs(self):
        """``(descriptor, result)`` tuples in grid order."""
        return list(zip(self.descriptors, self.results))

    def summary(self):
        """One-line human summary (what the CLI prints at the end)."""
        return (
            "campaign {}: {} cells ({} executed, {} cached) in {:.2f}s"
            .format(
                getattr(self.spec, "name", "?"),
                len(self.descriptors),
                self.executed,
                self.cached,
                self.elapsed_s,
            )
        )


def run_campaign(spec, store=None, processes=None, progress=None,
                 use_cache=True):
    """Run every cell of ``spec``; return a :class:`CampaignReport`.

    Parameters
    ----------
    store:
        ``None`` (in-memory, no persistence), a directory path, or an
        open :class:`~repro.campaign.store.ResultStore`.  With a store,
        cached cells are skipped and fresh cells are checkpointed as
        they finish.
    processes:
        ``None``/0/1 sequential; larger values shard pending cells
        across a pool.  (CLI callers default this to
        :func:`~repro.experiments.runner.default_processes`.)
    progress:
        Optional callable ``progress(done, total, cached)`` invoked
        after every cell (cached cells are reported up front).
    use_cache:
        ``False`` recomputes every cell even when the store already
        holds it (the fresh result overwrites the record).
    """
    started = time.perf_counter()
    descriptors = spec.expand()
    total = len(descriptors)
    owns_store = isinstance(store, str)
    if owns_store:
        store = ResultStore(store)
    try:
        if store is not None:
            store.write_spec(spec)
        # Hash each cell once: the key covers the full config dict, so
        # recomputing it per lookup would dominate the cached fast path.
        keys = [descriptor.key() for descriptor in descriptors]
        results_by_key = {}
        pending = []
        if store is not None and use_cache:
            for descriptor, key in zip(descriptors, keys):
                if store.has_result(descriptor, key=key):
                    results_by_key[key] = store.load_result(
                        descriptor, key=key
                    )
                else:
                    pending.append((descriptor, key))
        else:
            pending = list(zip(descriptors, keys))
        cached = total - len(pending)
        done = cached
        if progress is not None and cached:
            progress(done, total, cached)
        for (descriptor, key), result in zip(
            pending,
            iter_runs([d.job() for d, _k in pending], processes=processes),
        ):
            if store is not None:
                store.save_result(descriptor, result, key=key)
            results_by_key[key] = result
            done += 1
            if progress is not None:
                progress(done, total, cached)
        results = [results_by_key[key] for key in keys]
    finally:
        if owns_store:
            store.close()
    return CampaignReport(
        spec=spec,
        descriptors=descriptors,
        results=results,
        executed=len(pending),
        cached=cached,
        elapsed_s=time.perf_counter() - started,
        store_dir=store.directory if store is not None else None,
    )
