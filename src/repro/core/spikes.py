"""Impulse (spike-train) interfaces.

The Centurion PicoBlaze platform "provides functions for: interfacing to
convert between impulse sequences (spike trains) and binary number
representation" (paper §III-C).  Monitors deliver information as impulses;
decision logic needs counts; knobs sometimes need impulse outputs again.
These three classes are that conversion layer:

* :class:`ImpulseLine` — a named impulse source with listeners, the "wire"
  monitors fire on;
* :class:`SpikeIntegrator` — counts impulses into a binary value (spike
  train → number);
* :class:`VectorToSpikes` — emits a burst of ``n`` impulses for a binary
  value ``n`` (number → spike train).
"""


class ImpulseLine:
    """A named impulse wire with fan-out.

    Listeners are callables invoked (in subscription order) with the
    impulse's payload each time :meth:`fire` is called.  The line counts its
    impulses, which tests and the pathway introspection use.
    """

    def __init__(self, name):
        self.name = name
        self.fires = 0
        self._listeners = []

    def connect(self, listener):
        """Attach ``listener(payload)``; returns self for chaining."""
        if not callable(listener):
            raise TypeError("listener must be callable")
        self._listeners.append(listener)
        return self

    def disconnect(self, listener):
        """Detach a previously connected listener."""
        self._listeners.remove(listener)

    def fire(self, payload=None):
        """Emit one impulse carrying ``payload`` to all listeners."""
        self.fires += 1
        for listener in list(self._listeners):
            listener(payload)

    def __repr__(self):
        return "ImpulseLine({!r}, fires={}, listeners={})".format(
            self.name, self.fires, len(self._listeners)
        )


class SpikeIntegrator:
    """Spike train → binary value.

    Counts incoming impulses; :meth:`read` returns the count and optionally
    clears it (destructive read, like reading a hardware capture register).
    """

    def __init__(self, clear_on_read=True):
        self.clear_on_read = clear_on_read
        self.count = 0

    def spike(self, _payload=None):
        """Accept one impulse (connectable to an :class:`ImpulseLine`)."""
        self.count += 1

    def read(self):
        """Return the integrated count; clears it if ``clear_on_read``."""
        value = self.count
        if self.clear_on_read:
            self.count = 0
        return value

    def __repr__(self):
        return "SpikeIntegrator(count={})".format(self.count)


class VectorToSpikes:
    """Binary value → spike train.

    :meth:`emit` fires the output line once per unit of the value, capped at
    ``max_burst`` to bound work per conversion (hardware would serialise a
    bounded-width register the same way).
    """

    def __init__(self, output_line, max_burst=256):
        if max_burst < 1:
            raise ValueError("max_burst must be >= 1")
        self.output_line = output_line
        self.max_burst = max_burst

    def emit(self, value, payload=None):
        """Fire ``min(value, max_burst)`` impulses; returns fires made."""
        burst = max(0, min(int(value), self.max_burst))
        for _ in range(burst):
            self.output_line.fire(payload)
        return burst
