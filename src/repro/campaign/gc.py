"""Campaign store management: ``ls`` surveys, ``gc`` compaction, export.

Everything here operates on plain campaign directories — v1 stores (a
bare ``results.jsonl`` + ``spec.json``) work unchanged; the root index
and worker shard streams are handled when present, never required.

gc semantics
------------
``gc`` is a *plan* by default (dry run): it reports, per campaign, how
many lines a compaction would drop — superseded duplicates (an earlier
record for a key that was written again), torn/garbage/blank lines, and
orphaned rows (keys the directory's ``spec.json`` no longer expands to;
directories without a readable spec get no orphan detection) — plus the
worker streams a reconcile would fold in.  ``apply`` rewrites
``results.jsonl`` atomically (temp file + ``os.replace``) with exactly
one canonical line per surviving key in first-seen order, removes the
worker streams, and rebuilds the root ``index.jsonl`` (compaction moves
byte offsets).  A campaign with nothing to drop is left byte-untouched.
"""

import csv
import dataclasses
import os

from repro.campaign.index import (
    INDEX_FILE,
    StoreIndex,
    campaign_dirs,
    iter_jsonl,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    RESULTS_FILE,
    SPEC_FILE,
    encode_line,
    worker_files,
)

#: Scalar row columns in export order (extras appended alphabetically).
ROW_COLUMNS = (
    "model",
    "seed",
    "faults",
    "scenario",
    "settling_time_ms",
    "settled_performance",
    "recovery_time_ms",
    "recovered_performance",
    "total_switches",
)


@dataclasses.dataclass
class CampaignSummary:
    """One campaign directory's survey (what ``campaign ls`` prints)."""

    name: str
    directory: str
    kind: str = "?"
    #: Grid size of the directory's spec.json (None: no readable spec).
    spec_cells: int = None
    #: Unique keys on disk (main + worker streams, last-write-wins).
    stored: int = 0
    #: Stored keys the spec still expands to.
    current: int = 0
    #: Stored keys the spec no longer expands to (stale keys).
    orphaned: int = 0
    #: Earlier records superseded by a later write of the same key.
    superseded: int = 0
    #: Torn tails, garbage and blank lines.
    torn: int = 0
    #: Unreconciled worker shard streams.
    worker_files: int = 0

    def completion(self):
        """Percent of the spec grid present, or None without a spec."""
        if not self.spec_cells:
            return None
        return 100.0 * self.current / self.spec_cells

    def droppable(self):
        """Lines a ``gc --apply`` would remove."""
        return self.orphaned + self.superseded + self.torn

    def as_dict(self):
        """JSON-friendly dump (the ``campaign ls --json`` payload)."""
        data = dataclasses.asdict(self)
        data["completion"] = self.completion()
        return data


def load_records(directory):
    """Merged ``key -> record`` map of a campaign directory.

    Reads the main stream then every worker stream (sorted), exactly
    like :class:`~repro.campaign.store.ResultStore`: last write wins per
    key, first-seen order is preserved (the order gc compaction keeps).
    Returns ``(records, stats)`` where stats counts ``valid`` record
    lines, ``torn`` droppable lines and ``worker_files``.
    """
    records = {}
    offsets = {}
    valid = torn = 0
    main = os.path.join(directory, RESULTS_FILE)
    paths = [main] if os.path.exists(main) else []
    shard_paths = worker_files(directory)
    paths.extend(shard_paths)
    for path in paths:
        watermark = 0
        for begin, end, record in iter_jsonl(path):
            watermark = end
            if record is None or not record.get("key"):
                torn += 1
                continue
            valid += 1
            records[record["key"]] = record
            if path == main:
                # Byte offset → key of the main stream (what index
                # entries point at); lets gc verify the whole index in
                # one sequential pass instead of per-key seeks.
                offsets[begin] = record["key"]
        if watermark < os.path.getsize(path):
            torn += 1  # torn tail (interrupted append)
    stats = {
        "valid": valid,
        "torn": torn,
        "worker_files": len(shard_paths),
        "offsets": offsets,
    }
    return records, stats


def load_spec(directory):
    """The directory's ``spec.json`` as a CampaignSpec, or None.

    Tolerant: a missing, unparsable or foreign spec file simply disables
    orphan detection for the directory — it never fails a survey.
    """
    path = os.path.join(directory, SPEC_FILE)
    if not os.path.isfile(path):
        return None
    try:
        return CampaignSpec.from_json_file(path)
    except Exception:
        return None


def _survey(directory):
    """``(summary, records, orphans, offsets)`` for one campaign dir."""
    records, stats = load_records(directory)
    spec = load_spec(directory)
    spec_cells = None
    kind = "?"
    orphans = set()
    if spec is not None:
        kind = spec.kind
        spec_keys = {descriptor.key() for descriptor in spec.expand()}
        spec_cells = len(spec_keys)
        orphans = set(records) - spec_keys
    summary = CampaignSummary(
        name=os.path.basename(os.path.normpath(directory)),
        directory=directory,
        kind=kind,
        spec_cells=spec_cells,
        stored=len(records),
        current=len(records) - len(orphans),
        orphaned=len(orphans),
        superseded=stats["valid"] - len(records),
        torn=stats["torn"],
        worker_files=stats["worker_files"],
    )
    return summary, records, orphans, stats["offsets"]


def summarize(directory):
    """Survey one campaign directory (the ``campaign ls`` row)."""
    return _survey(directory)[0]


def _compact(directory, summary, records, orphans):
    """Rewrite one directory per an already-computed survey (gc apply).

    Atomic (temp file + ``os.replace``): one canonical line per
    surviving key in first-seen order; worker streams are removed (their
    records are already folded into ``records``).  A directory with
    nothing to drop is left byte-untouched.
    """
    if not summary.droppable() and not summary.worker_files:
        return
    path = os.path.join(directory, RESULTS_FILE)
    tmp = "{}.gc.{}".format(path, os.getpid())
    with open(tmp, "w") as handle:
        for key, record in records.items():
            if key in orphans:
                continue
            handle.write(encode_line(record))
            handle.write("\n")
    os.replace(tmp, path)
    for worker_path in worker_files(directory):
        os.remove(worker_path)


@dataclasses.dataclass
class RootReport:
    """A whole store root's gc plan (or applied result)."""

    root: str
    summaries: list
    #: Index entries that no longer verify against the row files.
    index_stale: int = 0
    #: Stored keys the index does not cover.
    index_missing: int = 0
    #: True when the root has an ``index.jsonl``.
    has_index: bool = False
    applied: bool = False

    def droppable(self):
        """Total lines a ``gc --apply`` would remove across the root."""
        return sum(summary.droppable() for summary in self.summaries)


def gc_root(root, dirs=None, apply=False):
    """Plan/apply gc for every campaign under ``root``.

    ``dirs`` restricts the pass to explicit campaign directories
    (defaults to every subdirectory holding a ``results.jsonl``).  With
    ``apply`` the root index is rebuilt afterwards — compaction moves
    offsets, and rebuilding is exactly how a diverged index is repaired.
    """
    if dirs is None:
        dirs = [os.path.join(root, name) for name in campaign_dirs(root)]
    has_index = os.path.exists(os.path.join(root, INDEX_FILE))
    surveys = [(directory,) + _survey(directory) for directory in dirs]
    index_stale = index_missing = 0
    if has_index and not apply:
        # Verify the index against the surveys' single sequential pass:
        # an entry is live iff the surveyed (campaign, offset) still
        # holds its key.  Entries pointing outside the surveyed dirs
        # fall back to a per-key seek (rare: explicit --dir subsets).
        index = StoreIndex(root)
        offsets_by_name = {
            os.path.basename(os.path.normpath(directory)): offsets
            for directory, _s, _r, _o, offsets in surveys
        }
        for key, campaign, offset in index.entries():
            if campaign in offsets_by_name:
                live = offsets_by_name[campaign].get(offset) == key
            else:
                live = index.lookup(key) is not None
            index_stale += 0 if live else 1
        indexed = set(index.keys())
        for _directory, _summary, _records, _orphans, offsets in surveys:
            # Only main-stream keys count: worker shard streams are
            # deliberately unindexed until a reconcile folds them in.
            index_missing += len(set(offsets.values()) - indexed)
    summaries = []
    for directory, summary, records, orphans, _offsets in surveys:
        if apply:
            _compact(directory, summary, records, orphans)
        summaries.append(summary)
    if apply and (has_index or campaign_dirs(root)):
        StoreIndex(root).rebuild()
    return RootReport(
        root=root,
        summaries=summaries,
        index_stale=index_stale,
        index_missing=index_missing,
        has_index=has_index,
        applied=apply,
    )


def merged_records(dirs):
    """One ``key -> (campaign, record)`` map across campaign directories.

    Directories are taken in the given order, keys within one campaign
    in first-seen order; the first campaign holding a key wins (under
    the dedup contract every holder's record is byte-identical anyway).
    Materialises every record — for sweep-scale roots use the streaming
    twin, :func:`repro.campaign.rows.iter_merged_records`, which yields
    the same merge one record at a time.
    """
    merged = {}
    for directory in dirs:
        name = os.path.basename(os.path.normpath(directory))
        records, _stats = load_records(directory)
        for key, record in records.items():
            if key not in merged:
                merged[key] = (name, record)
    return merged


def _iter_triples(source):
    """Normalise an export source to ``(campaign, key, record)`` triples.

    Accepts either the :func:`merged_records` mapping (the materialised
    legacy surface) or any iterable of triples — in particular
    :func:`repro.campaign.rows.iter_merged_records`, the streaming
    iterator ``campaign export`` and ``campaign report`` feed through.
    """
    if isinstance(source, dict):
        for key, (campaign, record) in source.items():
            yield campaign, key, record
    else:
        for triple in source:
            yield triple


def export_jsonl(source, stream):
    """Write merged records as canonical JSONL (store-byte-identical).

    Each line is exactly the line a store would write for that record,
    so exported rows round-trip losslessly.  ``source`` is a
    :func:`merged_records` mapping or a ``(campaign, key, record)``
    iterable (see :func:`_iter_triples`) — the latter streams, holding
    one record at a time.  Returns the row count.
    """
    count = 0
    for _campaign, _key, record in _iter_triples(source):
        stream.write(encode_line(record))
        stream.write("\n")
        count += 1
    return count


def csv_columns(dirs):
    """The CSV column list for the campaigns under ``dirs``, streaming.

    One pass over the merged rows collecting only field *names* (the
    union of every row's keys): :data:`ROW_COLUMNS` order first, extras
    appended alphabetically, ``scenario`` included only when some row
    carries it (legacy roots keep their historic header).  This is the
    header-discovery pass a streaming CSV export runs before writing.
    """
    from repro.campaign.rows import iter_merged_rows

    extra = set()
    for _campaign, _key, row in iter_merged_rows(dirs):
        extra.update(row)
    columns = [c for c in ROW_COLUMNS if c in extra or c != "scenario"]
    columns.extend(sorted(extra - set(ROW_COLUMNS)))
    return columns


def export_csv(source, stream, columns=None):
    """Write merged scalar rows as CSV; returns the row count.

    Columns: ``campaign``, ``key``, then the scalar row fields
    (:data:`ROW_COLUMNS` order, extra fields appended alphabetically).
    Fields a row lacks (e.g. ``scenario`` on legacy cells) are blank.

    With a :func:`merged_records` mapping the column union is computed
    in place; a streaming ``(campaign, key, record)`` source must bring
    precomputed ``columns`` (:func:`csv_columns`) because the header is
    written before the first row.
    """
    if columns is None:
        if not isinstance(source, dict):
            raise ValueError(
                "streaming export_csv needs precomputed columns "
                "(csv_columns); only a merged_records mapping can "
                "derive them in place"
            )
        extra = set()
        for _campaign, record in source.values():
            extra.update(record.get("row", {}))
        columns = [c for c in ROW_COLUMNS if c in extra or c != "scenario"]
        columns.extend(sorted(extra - set(ROW_COLUMNS)))
    writer = csv.writer(stream, lineterminator="\n")
    writer.writerow(["campaign", "key"] + list(columns))
    count = 0
    for campaign, key, record in _iter_triples(source):
        row = record.get("row", {})
        writer.writerow(
            [campaign, key] + [row.get(column, "") for column in columns]
        )
        count += 1
    return count
