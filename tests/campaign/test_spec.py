"""Tests for campaign specs, expansion order and content-hash keys."""

import dataclasses
import json

import pytest

from repro.campaign.spec import CampaignSpec, RunDescriptor
from repro.platform.config import PlatformConfig


@pytest.fixture
def small():
    return PlatformConfig.small()


def _spec(**overrides):
    base = dict(
        name="t",
        models=("none", "foraging_for_work"),
        seeds=(1, 2),
        fault_counts=(0, 2),
        config=PlatformConfig.small(),
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestCampaignSpec:
    def test_expansion_order_is_model_major(self):
        cells = [d.cell() for d in _spec().expand()]
        assert cells == [
            ("none", 1, 0),
            ("none", 2, 0),
            ("none", 1, 2),
            ("none", 2, 2),
            ("foraging_for_work", 1, 0),
            ("foraging_for_work", 2, 0),
            ("foraging_for_work", 1, 2),
            ("foraging_for_work", 2, 2),
        ]

    def test_size_matches_expansion(self):
        spec = _spec()
        assert spec.size() == len(spec.expand()) == 8

    def test_aliases_resolve_on_construction(self):
        spec = _spec(models=("ffw", "ni"))
        assert spec.models == ("foraging_for_work", "network_interaction")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            _spec(models=("martian",))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            _spec(seeds=())

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError):
            _spec(seeds=(1, 1))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            _spec(kind="table9")

    def test_figure4_kind_implies_series(self):
        spec = _spec(kind="figure4", keep_series=False)
        assert spec.keep_series
        assert all(d.keep_series for d in spec.expand())

    def test_table_kind_requires_baseline_model(self):
        with pytest.raises(ValueError, match="'none' model"):
            _spec(models=("ffw",), kind="table2")

    def test_table_kind_requires_zero_faults(self):
        with pytest.raises(ValueError, match="fault count 0"):
            _spec(fault_counts=(2, 8), kind="table2")

    def test_from_dict_rejects_conflicting_fault_keys(self):
        with pytest.raises(ValueError, match="not both"):
            CampaignSpec.from_dict(
                {
                    "name": "s",
                    "models": ["none"],
                    "seeds": [1],
                    "fault_counts": [0],
                    "faults": [0, 8],
                }
            )

    def test_round_trip_via_dict(self):
        spec = _spec(kind="table2")
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_from_dict_runs_shorthand(self):
        spec = CampaignSpec.from_dict(
            {"name": "s", "models": ["none"], "runs": 3, "seed_base": 10}
        )
        assert spec.seeds == (10, 11, 12)
        assert spec.fault_counts == (0,)

    def test_from_dict_small_base_and_overrides(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "s",
                "models": ["none"],
                "seeds": [1],
                "base": "small",
                "config": {"horizon_us": 50_000, "fault_time_us": 10_000},
            }
        )
        assert spec.config.width == 4
        assert spec.config.horizon_us == 50_000

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict(
                {"name": "s", "models": ["none"], "seeds": [1], "bogus": 1}
            )

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"name": "s", "models": ["ffw"], "seeds": [5]})
        )
        spec = CampaignSpec.from_json_file(str(path))
        assert spec.models == ("foraging_for_work",)
        assert spec.seeds == (5,)


class TestScenarioAxis:
    def _scenario(self, name="blip"):
        from repro.platform.scenario import FaultScenario

        return FaultScenario(
            name=name,
            events=({"at_us": 50_000, "count": 2, "duration_us": 10_000},),
        )

    def test_scenarios_extend_the_fault_axis(self):
        spec = _spec(scenarios=(self._scenario(),))
        cells = spec.expand()
        assert spec.size() == len(cells) == 2 * 2 * (2 + 1)
        scenario_cells = [c for c in cells if c.scenario is not None]
        assert len(scenario_cells) == 4
        assert all(c.scenario.name == "blip" for c in scenario_cells)
        assert all(c.cell()[2] == "blip" for c in scenario_cells)

    def test_scenario_only_spec_allowed(self):
        spec = _spec(fault_counts=(), scenarios=(self._scenario(),))
        assert spec.size() == 4
        assert all(c.scenario is not None for c in spec.expand())

    def test_empty_fault_axis_rejected(self):
        with pytest.raises(ValueError):
            _spec(fault_counts=(), scenarios=())

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError):
            _spec(scenarios=(self._scenario(), self._scenario()))

    def test_scenarios_coerced_from_dicts(self):
        spec = _spec(
            scenarios=(
                {
                    "name": "cut",
                    "events": [{"at_us": 1000, "kind": "link", "count": 1}],
                },
            )
        )
        assert spec.scenarios[0].events[0].kind == "link"

    def test_round_trip_with_scenarios(self):
        spec = _spec(scenarios=(self._scenario(),))
        clone = CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone == spec

    def test_to_dict_omits_empty_scenarios(self):
        assert "scenarios" not in _spec().to_dict()

    def test_from_dict_scenarios_without_fault_counts(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "s",
                "models": ["none"],
                "seeds": [1],
                "scenarios": [
                    {"name": "blip", "events": [{"at_us": 10, "count": 1}]}
                ],
            }
        )
        assert spec.fault_counts == ()  # no implicit zero-fault cell
        assert spec.size() == 1

    def test_scenario_changes_the_cell_key(self, small):
        base = RunDescriptor("none", 1, 0, small)
        blip = RunDescriptor(
            "none", 1, 0, small, scenario=self._scenario()
        )
        renamed = RunDescriptor(
            "none", 1, 0, small, scenario=self._scenario(name="blip2")
        )
        assert len({base.key(), blip.key(), renamed.key()}) == 3


class TestDescriptorKeys:
    def test_key_is_stable(self, small):
        a = RunDescriptor("none", 1, 0, small)
        b = RunDescriptor("none", 1, 0, small)
        assert a.key() == b.key()

    def test_key_ignores_keep_series(self, small):
        bare = RunDescriptor("none", 1, 0, small, keep_series=False)
        kept = RunDescriptor("none", 1, 0, small, keep_series=True)
        assert bare.key() == kept.key()

    def test_alias_hashes_like_canonical(self, small):
        alias = RunDescriptor("ffw", 1, 0, small)
        canonical = RunDescriptor("foraging_for_work", 1, 0, small)
        assert alias.key() == canonical.key()

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 2},
            {"faults": 1},
            {"model": "none"},
            {"metric": "executions"},
        ],
    )
    def test_key_differs_per_cell(self, small, change):
        base = dict(
            model="foraging_for_work", seed=1, faults=0, config=small
        )
        varied = dict(base)
        varied.update(change)
        assert (
            RunDescriptor(**base).key() != RunDescriptor(**varied).key()
        )

    def test_key_covers_every_config_field(self, small):
        base = RunDescriptor("none", 1, 0, small).key()
        for field in dataclasses.fields(PlatformConfig):
            value = getattr(small, field.name)
            if isinstance(value, bool):
                changed = small.replace(**{field.name: not value})
            elif isinstance(value, int):
                try:
                    changed = small.replace(**{field.name: value + 1})
                except ValueError:
                    continue  # validation-coupled field; covered elsewhere
            elif isinstance(value, float):
                changed = small.replace(**{field.name: value + 0.25})
            elif field.name == "routing_mode":
                changed = small.replace(routing_mode="adaptive")
            elif field.name == "initial_mapping":
                changed = small.replace(initial_mapping="balanced")
            else:
                continue
            assert RunDescriptor("none", 1, 0, changed).key() != base, (
                "config field {} not hashed".format(field.name)
            )

    def test_job_matches_runner_tuple(self, small):
        descriptor = RunDescriptor("none", 3, 2, small, keep_series=True)
        assert descriptor.job() == (
            "none", 3, 2, small, "joins", True, None, None
        )
