"""Scenario interpretation: the FaultInjector executing declarative faults."""

from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.platform.scenario import FaultEvent, FaultScenario


def make_platform(seed=21, model="none", **config_kwargs):
    return CenturionPlatform(
        PlatformConfig.small(**config_kwargs), model_name=model, seed=seed
    )


class TestTransientFaults:
    def test_node_recovers_after_duration(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="blip",
                events=(
                    FaultEvent(
                        at_us=10_000, victims=(5,), duration_us=20_000
                    ),
                ),
            )
        )
        platform.sim.run_until(15_000)
        assert platform.pes[5].halted
        assert platform.network.router(5).failed
        platform.sim.run_until(40_000)
        assert not platform.pes[5].halted
        assert not platform.network.router(5).failed
        assert 5 not in platform.network.failed_nodes
        assert platform.faults.recovered == [(30_000, "node", 5)]

    def test_recovered_node_rejoins_blank(self):
        platform = make_platform()
        task_before = platform.pes[5].task_id
        platform.inject_scenario(
            FaultScenario(
                name="blip",
                events=(
                    FaultEvent(
                        at_us=10_000, victims=(5,), duration_us=5_000
                    ),
                ),
            )
        )
        platform.sim.run_until(16_000)
        pe = platform.pes[5]
        assert not pe.halted
        assert pe.task_id is None
        assert platform.network.directory.task_of(5) is None
        assert not platform.network.directory.is_failed(5)
        del task_before

    def test_recovered_node_routes_traffic_again(self):
        platform = make_platform()
        victim = 5
        platform.inject_scenario(
            FaultScenario(
                name="blip",
                events=(
                    FaultEvent(
                        at_us=10_000, victims=(victim,),
                        duration_us=10_000,
                    ),
                ),
            )
        )
        platform.sim.run_until(30_000)
        policy = platform.network.policy
        # With the mesh whole again, XY routes pass through the victim.
        assert victim in policy.path(4, 6)

    def test_recovered_node_accepts_work_again(self):
        platform = make_platform(model="foraging_for_work", seed=7)
        platform.inject_scenario(
            FaultScenario(
                name="blip",
                events=(
                    FaultEvent(
                        at_us=50_000, count=4, duration_us=30_000
                    ),
                ),
            )
        )
        platform.sim.run_until(90_000)
        recovered = [v for _t, kind, v in platform.faults.recovered
                     if kind == "node"]
        assert len(recovered) == 4
        # The re-allocation path is open again: the task-select knob
        # sticks (it is refused on halted nodes) and the directory lists
        # the node as a provider once more.
        node = recovered[0]
        platform.controller.debug_set_task(node, 2)
        assert platform.pes[node].task_id == 2
        assert node in platform.network.directory.providers(2)

    def test_permanent_kill_outranks_pending_transient_recovery(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="perm-vs-transient",
                events=(
                    FaultEvent(
                        at_us=10_000, victims=(5,), duration_us=20_000
                    ),
                    # Declared permanent while node 5 is down from the
                    # transient — the recovery at 30_000 must not revive.
                    FaultEvent(at_us=15_000, victims=(5,)),
                ),
            )
        )
        platform.sim.run_until(40_000)
        assert platform.pes[5].halted
        assert platform.faults.recovered == []

    def test_permanent_link_cut_outranks_transient_recovery(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="perm-link",
                events=(
                    FaultEvent(
                        at_us=10_000, kind="link", victims=((1, 0),),
                        duration_us=20_000,
                    ),
                    FaultEvent(at_us=15_000, kind="link",
                               victims=((0, 1),)),
                ),
            )
        )
        platform.sim.run_until(40_000)
        assert platform.network.link_failed(0, 1)
        assert platform.faults.recovered == []

    def test_overlapping_transients_extend_the_outage(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="overlap",
                events=(
                    FaultEvent(
                        at_us=10_000, victims=(5,), duration_us=20_000
                    ),
                    # Overlaps the first outage and ends later: node 5
                    # must stay down past the first recovery at 30_000.
                    FaultEvent(
                        at_us=20_000, victims=(5,), duration_us=20_000
                    ),
                ),
            )
        )
        platform.sim.run_until(35_000)
        assert platform.pes[5].halted
        platform.sim.run_until(40_000)
        assert not platform.pes[5].halted
        assert platform.faults.recovered == [(40_000, "node", 5)]

    def test_intermittent_fault_strikes_repeatedly(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="flaky",
                events=(
                    FaultEvent(
                        at_us=10_000, victims=(3,), duration_us=2_000,
                        repeats=3, period_us=10_000,
                    ),
                ),
            )
        )
        platform.run()
        assert platform.faults.victims == [3, 3, 3]
        assert [entry[0] for entry in platform.faults.recovered] == [
            12_000, 22_000, 32_000
        ]


class TestWaves:
    def test_waves_kill_in_instalments(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="waves",
                events=(
                    FaultEvent(
                        at_us=20_000, count=2, repeats=3, period_us=15_000
                    ),
                ),
            )
        )
        platform.sim.run_until(20_000)
        assert len(platform.faults.victims) == 2
        platform.sim.run_until(35_000)
        assert len(platform.faults.victims) == 4
        platform.sim.run_until(50_000)
        assert len(platform.faults.victims) == 6
        assert len(set(platform.faults.victims)) == 6  # fresh victims
        assert platform.faults.recovered == []  # permanent


class TestSpatialPatterns:
    def test_row_pattern_hits_only_that_row(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="row-kill",
                events=(
                    FaultEvent(at_us=10_000, pattern="row", row=2),
                ),
            )
        )
        platform.sim.run_until(10_000)
        topology = platform.network.topology
        expected = [n for n in topology.node_ids()
                    if topology.coords(n)[1] == 2]
        assert sorted(platform.faults.victims) == expected

    def test_column_pattern_with_count_subsets(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="col-kill",
                events=(
                    FaultEvent(
                        at_us=10_000, pattern="column", column=1, count=2
                    ),
                ),
            )
        )
        platform.sim.run_until(10_000)
        topology = platform.network.topology
        assert len(platform.faults.victims) == 2
        assert all(
            topology.coords(v)[0] == 1 for v in platform.faults.victims
        )

    def test_region_pattern(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="quadrant",
                events=(
                    FaultEvent(
                        at_us=10_000, pattern="region", region=(0, 0, 1, 1)
                    ),
                ),
            )
        )
        platform.sim.run_until(10_000)
        assert sorted(platform.faults.victims) == [0, 1, 4, 5]

    def test_neighborhood_pattern(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="blast",
                events=(
                    FaultEvent(
                        at_us=10_000, pattern="neighborhood", center=5,
                        radius=1,
                    ),
                ),
            )
        )
        platform.sim.run_until(10_000)
        # Manhattan ball of radius 1 around node 5 on the 4x4 mesh.
        assert sorted(platform.faults.victims) == [1, 4, 5, 6, 9]


class TestLinkFaults:
    def test_link_failure_detours_routing(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="cut",
                events=(
                    FaultEvent(at_us=10_000, kind="link",
                               victims=((0, 1),)),
                ),
            )
        )
        platform.sim.run_until(10_000)
        network = platform.network
        assert network.link_failed(0, 1)
        assert not network.link(0, 1).enabled
        assert not network.link(1, 0).enabled
        path = network.policy.path(0, 1)
        assert path[:2] != [0, 1]  # forced off the direct edge
        assert path[-1] == 1

    def test_link_recovery_restores_xy(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="cut-heal",
                events=(
                    FaultEvent(
                        at_us=10_000, kind="link", victims=((0, 1),),
                        duration_us=10_000,
                    ),
                ),
            )
        )
        platform.sim.run_until(30_000)
        network = platform.network
        assert not network.link_failed(0, 1)
        assert network.link(0, 1).enabled
        assert network.policy.path(0, 1) == [0, 1]
        assert platform.faults.recovered == [(20_000, "link", (0, 1))]

    def test_random_link_draw_is_deterministic(self):
        def failed_links_for(seed):
            platform = make_platform(seed=seed)
            platform.inject_scenario(
                FaultScenario(
                    name="cuts",
                    events=(
                        FaultEvent(at_us=10_000, kind="link", count=3),
                    ),
                )
            )
            platform.sim.run_until(10_000)
            return sorted(platform.network.failed_links)

        assert failed_links_for(3) == failed_links_for(3)
        assert len(failed_links_for(3)) == 3
        assert failed_links_for(3) != failed_links_for(4)

    def test_traffic_survives_link_cut(self):
        platform = make_platform(model="none", seed=11)
        platform.inject_scenario(
            FaultScenario(
                name="cuts",
                events=(
                    FaultEvent(at_us=50_000, kind="link", count=4),
                ),
            )
        )
        series = platform.run()
        assert series.joins[-1] > 0  # the colony keeps completing work


class TestEdgeCases:
    def test_count_beyond_alive_is_capped(self):
        platform = make_platform()
        platform.inject_scenario(
            FaultScenario(
                name="overkill",
                events=(FaultEvent(at_us=10_000, count=999),),
            )
        )
        platform.sim.run_until(10_000)
        assert len(platform.faults.victims) == 16

    def test_double_injection_of_dead_node_is_noop(self):
        platform = make_platform()
        platform.faults.schedule(1, at_us=10_000, victims=[5])
        platform.faults.schedule(1, at_us=20_000, victims=[5])
        platform.sim.run_until(30_000)
        assert platform.faults.victims == [5]  # second strike no-ops
        assert len(platform.controller.faults_injected) == 1

    def test_fault_at_exact_horizon(self):
        from repro.experiments.runner import run_single

        config = PlatformConfig.small(
            horizon_us=100_000, fault_time_us=100_000
        )
        result = run_single("none", seed=3, faults=2, config=config)
        # No post-fault window: recovery mirrors the settled state.
        assert result.recovery_time_ms == 0.0
        assert result.recovered_performance == result.settled_performance

    def test_scenario_fault_at_exact_horizon(self):
        from repro.experiments.runner import run_single

        config = PlatformConfig.small(horizon_us=100_000)
        scenario = FaultScenario.burst(2, 100_000)
        result = run_single("none", seed=3, config=config,
                            scenario=scenario)
        assert result.recovery_time_ms == 0.0
        assert result.scenario == scenario.name

    def test_scenario_fault_at_time_zero(self):
        from repro.experiments.runner import run_single

        config = PlatformConfig.small(horizon_us=100_000)
        result = run_single(
            "none", seed=3, config=config,
            scenario=FaultScenario.burst(2, 0),
        )
        # No pre-fault window: settling spans the whole faulted run.
        assert result.faults == 2
        assert result.settling_time_ms >= 0.0

    def test_inject_scenario_accepts_dict_and_path(self, tmp_path):
        import json

        payload = {
            "name": "blip",
            "events": [{"at_us": 10_000, "count": 1}],
        }
        from_dict = make_platform().inject_scenario(payload)
        assert from_dict.name == "blip"
        path = tmp_path / "blip.json"
        path.write_text(json.dumps(payload))
        from_file = make_platform().inject_scenario(str(path))
        assert from_file == from_dict

    def test_bad_pinned_victims_rejected_at_apply_time(self):
        import pytest

        platform = make_platform()
        with pytest.raises(ValueError):
            platform.inject_scenario(
                FaultScenario(
                    name="bad-node",
                    events=(FaultEvent(at_us=1000, victims=(99,)),),
                )
            )
        with pytest.raises(ValueError):
            platform.inject_scenario(
                FaultScenario(
                    name="bad-link",
                    events=(
                        FaultEvent(
                            at_us=1000, kind="link", victims=((0, 5),)
                        ),
                    ),
                )
            )
        # Rejected scenarios leave nothing scheduled.
        assert platform.faults.scenarios == []

    def test_mixed_scenario_runs_end_to_end(self):
        platform = make_platform(model="network_interaction", seed=5)
        platform.inject_scenario(
            FaultScenario(
                name="chaos",
                events=(
                    FaultEvent(at_us=30_000, count=1),
                    FaultEvent(at_us=60_000, kind="link", count=2,
                               duration_us=20_000),
                    FaultEvent(at_us=90_000, pattern="row", row=3,
                               count=2, duration_us=30_000),
                    FaultEvent(at_us=100_000, count=1, repeats=2,
                               period_us=40_000),
                ),
            )
        )
        series = platform.run()
        assert len(series.time_ms) > 0
        assert len(platform.faults.victims) >= 5
