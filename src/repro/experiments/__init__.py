"""Experiment harness.

Reproduces the paper's evaluation: independent seeded runs, settling- and
recovery-time detection, quartile statistics, and re-generators for Table I,
Table II and Figure 4.
"""

from repro.experiments.runner import (
    RunError,
    RunResult,
    run_batch,
    run_single,
)
from repro.experiments.settling import (
    recovery_analysis,
    settling_analysis,
    steady_state_time,
)
from repro.experiments.stats import quartiles, summarize
from repro.experiments.tables import (
    format_table,
    table1,
    table2,
)
from repro.experiments.figures import figure4, render_series

__all__ = [
    "RunError",
    "RunResult",
    "run_single",
    "run_batch",
    "steady_state_time",
    "settling_analysis",
    "recovery_analysis",
    "quartiles",
    "summarize",
    "table1",
    "table2",
    "format_table",
    "figure4",
    "render_series",
]
