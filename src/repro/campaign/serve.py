"""Multi-tenant campaign sweep daemon (stdlib-only HTTP front end).

:class:`CampaignServer` turns the CLI campaign engine into an always-on
service: tenants ``POST`` ordinary :class:`~repro.campaign.spec
.CampaignSpec` JSON to ``/campaigns``, the server expands the grid,
queues the pending cells to a pool of hash-sharded worker threads
draining one shared store root, and streams progress back over plain
HTTP.  Everything is standard library — ``http.server`` + ``threading``
+ ``queue`` — so the daemon adds zero runtime dependencies.

Endpoints
---------
``POST /campaigns``
    Body: a ``CampaignSpec`` dict (exactly what ``campaign --spec``
    loads).  Returns the campaign status (201 fresh, 200 resubmit).
    A malformed spec is rejected with **4xx and a structured error
    body** — validation and grid expansion complete *before* anything
    is registered, so a rejected submission never leaves a
    half-registered campaign behind.
``GET /campaigns``
    Status summaries of every registered campaign.
``GET /campaigns/{id}``
    One campaign's status: counters, state, per-cell errors.
``GET /campaigns/{id}/events``
    NDJSON progress stream (one JSON event per line); ``?follow=1``
    keeps the connection open until the campaign leaves ``running``.
``GET /healthz`` / ``GET /metrics``
    Liveness probe and server-wide counters.

Execution model
---------------
The queue is partitioned exactly like a store-v2 worker fleet: cell
keys route to worker ``shard_of(key, workers)``
(:func:`~repro.campaign.executor.shard_of`), so every cell key is owned
by one worker thread.  That ownership is what makes cross-tenant dedup
race-free *without locks around execution*: two tenants submitting the
same cell key enqueue it to the same worker, which executes the first
occurrence and resolves the second from the server's done map — every
shared cell executes **exactly once** per root, however many tenants
ask for it.  Cells a sibling campaign computed before this daemon
started resolve through the root's
:class:`~repro.campaign.index.StoreIndex` (refreshed once at startup),
so dedup spans daemon restarts too.

Byte contract
-------------
A cell executed here is appended through the exact writer path
``run_campaign`` uses — ``encode_result`` → ``ResultStore.save_record``
(one canonical ``encode_line`` serialisation) — so the record line for
a spec submitted over HTTP is **byte-identical** to the line the same
spec writes via ``campaign --spec`` (pinned by
``tests/integration/test_serve_determinism.py``).  Results land in each
campaign's ordinary ``results.jsonl``, so ``campaign
ls/gc/export/report`` and the streaming analysis work unchanged on a
root a daemon is (or was) serving.

Each campaign's store is opened exactly once, at registration — the
single-scan invariant ``tests/campaign/test_executor.py`` pins for
``run_campaign`` holds for the serve path as well (asserted inline in
:meth:`CampaignServer.submit` and pinned by the serve torture layer).
"""

import json
import os
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.campaign.executor import shard_of
from repro.campaign.index import StoreIndex
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    ResultStore,
    encode_result,
    record_satisfies,
)

#: Default TCP port of ``campaign serve`` (0 = ephemeral).
DEFAULT_PORT = 8642

#: Largest accepted request body (a campaign spec is a few KB; anything
#: near this bound is garbage, not a sweep).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Campaign lifecycle states reported by the status endpoints.
STATES = ("running", "completed", "failed")


class BadRequest(Exception):
    """A client error carrying the structured body the handler returns."""

    def __init__(self, status, kind, message):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.message = message

    def body(self):
        """The structured error payload (every 4xx uses this shape)."""
        return {"error": {"type": self.kind, "message": self.message}}


def default_run_fn(descriptor):
    """Execute one cell the way ``run_campaign`` does (``run_single``)."""
    from repro.experiments.runner import run_single

    return run_single(*descriptor.job())


class _Campaign:
    """Server-side registration of one submitted campaign.

    All mutable state (counters, events, the store append handle) is
    guarded by ``cond``'s lock; waiters (``/events?follow=1`` streams,
    ``wait`` clients polling status) are woken through the condition.
    """

    def __init__(self, name, store):
        self.name = name
        self.store = store
        self.spec = None
        self.total = 0
        self.cached = 0
        self.executed = 0
        self.deduped = 0
        self.failed = 0
        self.pending = 0
        self.errors = []
        self.events = []
        self.submissions = 0
        self.cond = threading.Condition()

    def state(self):
        """Lifecycle state (call with ``cond`` held)."""
        if self.pending:
            return "running"
        return "failed" if self.failed else "completed"

    def status(self):
        """The status payload (call with ``cond`` held)."""
        done = self.total - self.pending
        return {
            "id": self.name,
            "state": self.state(),
            "total": self.total,
            "done": done,
            "pending": self.pending,
            "cached": self.cached,
            "executed": self.executed,
            "deduped": self.deduped,
            "failed": self.failed,
            "submissions": self.submissions,
            "errors": list(self.errors),
        }

    def emit(self, event, **fields):
        """Append one progress event (call with ``cond`` held)."""
        entry = {"event": event, "campaign": self.name}
        entry.update(fields)
        self.events.append(entry)
        self.cond.notify_all()


class CampaignServer:
    """The sweep daemon: HTTP front end + hash-sharded worker pool.

    Parameters
    ----------
    root:
        Store root every tenant's campaigns land under.  One root =
        one dedup scope: a cell key computed for any campaign under the
        root is never executed again for any other.
    workers:
        Worker threads draining the cell queues.  Cells partition by
        ``shard_of(key, workers)``, so one worker owns each key.
    run_fn:
        ``run_fn(descriptor) -> RunResult`` executing one cell
        (default: :func:`default_run_fn`).  Tests inject fakes here;
        the byte contract only constrains how results are *encoded*.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port; the bound
        port is ``self.port`` either way.
    """

    def __init__(self, root, workers=2, run_fn=None, host="127.0.0.1",
                 port=0):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.workers = max(1, int(workers))
        self.run_fn = run_fn if run_fn is not None else default_run_fn
        self.started_at = time.time()
        self._registry = {}
        self._registry_lock = threading.Lock()
        #: Cross-tenant done map: cell key -> raw stored record.  Fed by
        #: every record loaded at registration or produced by a worker;
        #: the in-memory face of the root's dedup index.
        self._done = {}
        self._rejected = 0
        self._queues = [queue.Queue() for _ in range(self.workers)]
        self._threads = []
        self._running = False
        # Sibling campaigns written before this daemon started join the
        # dedup scope through the persistent index, refreshed once here
        # (workers only call the read-only, seek-and-verify lookup()).
        self._index = StoreIndex(root)
        self._index.refresh()
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.app = self
        self.host, self.port = self._httpd.server_address[:2]

    @property
    def url(self):
        """Base URL clients talk to."""
        return "http://{}:{}".format(self.host, self.port)

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Start the worker pool and the HTTP listener (non-blocking)."""
        if self._running:
            return self
        self._running = True
        for wid in range(self.workers):
            thread = threading.Thread(
                target=self._worker, args=(wid,),
                name="serve-worker-{}".format(wid), daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True
        )
        http_thread.start()
        self._threads.append(http_thread)
        return self

    def serve_forever(self):
        """Blocking variant for the CLI: start, then wait for shutdown."""
        self.start()
        try:
            while self._running:
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def shutdown(self, drain=True):
        """Stop the daemon.

        ``drain=True`` (the default) finishes every queued cell first —
        the clean shutdown; ``drain=False`` abandons queued cells (they
        were never registered anywhere but the queue, so a resubmission
        after restart re-queues exactly the unfinished ones).
        """
        if not self._running:
            return
        self._running = False
        if not drain:
            for cell_queue in self._queues:
                while True:
                    try:
                        cell_queue.get_nowait()
                    except queue.Empty:
                        break
        for cell_queue in self._queues:
            cell_queue.put(None)
        for thread in self._threads:
            if thread.name.startswith("serve-worker"):
                thread.join()
        self._httpd.shutdown()
        self._httpd.server_close()
        for campaign in list(self._registry.values()):
            campaign.store.close()
        if drain:
            # Persist the dedup entries for whoever opens the root next
            # (a restarted daemon, or plain `campaign --spec` sweeps).
            self._index.refresh()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.shutdown()

    # -- submission ----------------------------------------------------------

    def submit(self, payload):
        """Register (or resume) a campaign; returns ``(status, body)``.

        Validation and grid expansion run to completion before any
        registry or filesystem mutation, so a rejected spec leaves no
        trace.  Resubmitting a finished campaign re-queues exactly the
        cells its store does not hold (crash recovery / failure retry);
        resubmitting a running campaign is idempotent.
        """
        if not isinstance(payload, dict):
            raise BadRequest(
                400, "invalid-spec",
                "campaign spec must be a JSON object, got {}".format(
                    type(payload).__name__
                ),
            )
        try:
            spec = CampaignSpec.from_dict(payload)
            descriptors = spec.expand()
            keys = [descriptor.key() for descriptor in descriptors]
        except Exception as exc:
            raise BadRequest(400, "invalid-spec", str(exc))
        with self._registry_lock:
            campaign = self._registry.get(spec.name)
            fresh = campaign is None
            if fresh:
                store = ResultStore(os.path.join(self.root, spec.name))
                campaign = _Campaign(spec.name, store)
                self._registry[spec.name] = campaign
            pending = self._activate(campaign, spec, descriptors, keys)
            if pending is None:
                with campaign.cond:
                    return 200, campaign.status()
            for descriptor, key in pending:
                self._queues[shard_of(key, self.workers)].put(
                    (campaign, descriptor, key)
                )
            with campaign.cond:
                return (201 if fresh else 200), campaign.status()

    def _activate(self, campaign, spec, descriptors, keys):
        """Partition the grid against the store; returns cells to queue
        (``None`` when the campaign is already running)."""
        with campaign.cond:
            if campaign.pending:
                return None
            scans_before = campaign.store.scans
            campaign.spec = spec
            campaign.store.write_spec(spec)
            pending = []
            for descriptor, key in zip(descriptors, keys):
                if campaign.store.has_result(descriptor, key=key):
                    # Resumed cells join the cross-tenant done map so
                    # other tenants dedup against them live.
                    self._done.setdefault(key, campaign.store.get(key))
                else:
                    pending.append((descriptor, key))
            # The single-scan invariant: partitioning hits the store's
            # memoised key map only — never a per-key stream re-read.
            assert campaign.store.scans == scans_before
            campaign.total = len(descriptors)
            campaign.cached = len(descriptors) - len(pending)
            campaign.executed = 0
            campaign.deduped = 0
            campaign.failed = 0
            campaign.errors = []
            campaign.pending = len(pending)
            campaign.submissions += 1
            campaign.emit(
                "submitted", total=campaign.total, cached=campaign.cached,
                pending=campaign.pending, submission=campaign.submissions,
            )
            if not campaign.pending:
                campaign.emit("completed", state=campaign.state())
            return pending

    # -- worker pool ---------------------------------------------------------

    def _worker(self, wid):
        cell_queue = self._queues[wid]
        while True:
            item = cell_queue.get()
            if item is None:
                return
            campaign, descriptor, key = item
            self._resolve_cell(campaign, descriptor, key)

    def _resolve_cell(self, campaign, descriptor, key):
        """Dedup or execute one cell and checkpoint it.

        The shard routing guarantees this worker is the only thread
        resolving ``key`` anywhere on the root, so the done-map check
        and the execution are race-free without a per-key lock.
        """
        record = self._done.get(key)
        if not record_satisfies(record, descriptor):
            record = self._index.lookup(key)
            if not record_satisfies(record, descriptor):
                record = None
        if record is not None:
            self._done.setdefault(key, record)
            self._finish(campaign, descriptor, key, "deduped",
                         record=record)
            return
        try:
            result = self.run_fn(descriptor)
        except Exception as exc:
            self._finish(campaign, descriptor, key, "failed",
                         error="{}: {}".format(type(exc).__name__, exc))
            return
        record = encode_result(descriptor, result, key=key)
        self._done[key] = record
        self._finish(campaign, descriptor, key, "executed", record=record)

    def _finish(self, campaign, descriptor, key, outcome, record=None,
                error=None):
        """Checkpoint + count one resolved cell, waking any waiters."""
        with campaign.cond:
            if record is not None:
                # The one canonical writer path (encode_line under
                # save_record): executed and deduped lines are
                # byte-identical to run_campaign's.
                campaign.store.save_record(record)
            if outcome == "executed":
                campaign.executed += 1
            elif outcome == "deduped":
                campaign.deduped += 1
            else:
                campaign.failed += 1
                campaign.errors.append(
                    {"key": key, "cell": list(descriptor.cell()),
                     "error": error}
                )
            campaign.pending -= 1
            campaign.emit(
                "cell", key=key, cell=list(descriptor.cell()),
                status=outcome, done=campaign.total - campaign.pending,
                total=campaign.total,
            )
            if not campaign.pending:
                campaign.emit("completed", state=campaign.state())

    # -- read surface --------------------------------------------------------

    def campaign(self, name):
        """The registered campaign, or a 404 :class:`BadRequest`."""
        with self._registry_lock:
            campaign = self._registry.get(name)
        if campaign is None:
            raise BadRequest(
                404, "unknown-campaign",
                "no campaign {!r} on this server".format(name),
            )
        return campaign

    def status(self, name):
        """One campaign's status payload (404 on unknown names)."""
        campaign = self.campaign(name)
        with campaign.cond:
            return campaign.status()

    def statuses(self):
        """Status payloads of every registered campaign, sorted by id."""
        with self._registry_lock:
            campaigns = list(self._registry.values())
        out = []
        for campaign in campaigns:
            with campaign.cond:
                out.append(campaign.status())
        return sorted(out, key=lambda status: status["id"])

    def healthz(self):
        """The liveness payload (``GET /healthz``)."""
        return {
            "status": "ok",
            "root": self.root,
            "workers": self.workers,
            "campaigns": len(self._registry),
        }

    def metrics(self):
        """Server-wide counters (sums over the live registry)."""
        totals = {"executed": 0, "cached": 0, "deduped": 0, "failed": 0,
                  "pending": 0, "cells": 0}
        for status in self.statuses():
            totals["executed"] += status["executed"]
            totals["cached"] += status["cached"]
            totals["deduped"] += status["deduped"]
            totals["failed"] += status["failed"]
            totals["pending"] += status["pending"]
            totals["cells"] += status["total"]
        totals["campaigns"] = len(self._registry)
        totals["submissions_rejected"] = self._rejected
        totals["workers"] = self.workers
        totals["queue_depth"] = sum(q.qsize() for q in self._queues)
        totals["uptime_s"] = round(time.time() - self.started_at, 3)
        return totals

    def iter_events(self, name, follow=False, poll_s=0.2):
        """Yield a campaign's progress events as dicts.

        ``follow=True`` blocks for new events until the campaign leaves
        ``running`` — the server side of the NDJSON stream.
        """
        campaign = self.campaign(name)
        cursor = 0
        while True:
            with campaign.cond:
                while cursor >= len(campaign.events):
                    if not follow or campaign.state() != "running":
                        return
                    campaign.cond.wait(poll_s)
                fresh = campaign.events[cursor:]
                cursor = len(campaign.events)
            # Emit outside the lock: a slow consumer never stalls the
            # worker pool.
            for event in fresh:
                yield event


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Set by :class:`CampaignServer` right after construction.
    app = None


class _Handler(BaseHTTPRequestHandler):
    """Routes the endpoint table above onto the :class:`CampaignServer`."""

    server_version = "repro-campaign-serve"
    # HTTP/1.0: every response closes its connection, so the NDJSON
    # event stream needs no chunked framing — readers consume to EOF.
    protocol_version = "HTTP/1.0"

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        """Silence per-request logging (the CLI reports its own URL)."""

    @property
    def app(self):
        return self.server.app

    def _send_json(self, status, payload):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, exc):
        self._send_json(exc.status, exc.body())

    def _route(self):
        """``(path segments, query dict)`` of the request target."""
        path, _, query = self.path.partition("?")
        segments = [part for part in path.split("/") if part]
        params = {}
        for pair in query.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                params[key] = value
        return segments, params

    def do_GET(self):  # noqa: N802 (stdlib dispatch name)
        segments, params = self._route()
        try:
            if segments == ["healthz"]:
                return self._send_json(200, self.app.healthz())
            if segments == ["metrics"]:
                return self._send_json(200, self.app.metrics())
            if segments == ["campaigns"]:
                return self._send_json(
                    200, {"campaigns": self.app.statuses()}
                )
            if len(segments) == 2 and segments[0] == "campaigns":
                return self._send_json(200, self.app.status(segments[1]))
            if (
                len(segments) == 3
                and segments[0] == "campaigns"
                and segments[2] == "events"
            ):
                return self._stream_events(
                    segments[1],
                    follow=params.get("follow") not in (None, "", "0"),
                )
            raise BadRequest(
                404, "not-found", "no route {!r}".format(self.path)
            )
        except BadRequest as exc:
            self._send_error_json(exc)
        except Exception as exc:  # pragma: no cover - server bug surface
            self._send_json(
                500, {"error": {"type": "internal",
                                "message": str(exc)}},
            )

    def do_POST(self):  # noqa: N802 (stdlib dispatch name)
        segments, _params = self._route()
        try:
            if segments == ["campaigns"]:
                status, body = self.app.submit(self._read_json())
                return self._send_json(status, body)
            raise BadRequest(
                404, "not-found", "no route {!r}".format(self.path)
            )
        except BadRequest as exc:
            if exc.status == 400:
                self.app._rejected += 1
            self._send_error_json(exc)
        except Exception as exc:  # pragma: no cover - server bug surface
            self._send_json(
                500, {"error": {"type": "internal",
                                "message": str(exc)}},
            )

    def _read_json(self):
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise BadRequest(400, "invalid-request",
                             "unreadable Content-Length")
        if length <= 0:
            raise BadRequest(400, "invalid-request", "empty request body")
        if length > MAX_BODY_BYTES:
            raise BadRequest(
                413, "payload-too-large",
                "body of {} bytes exceeds the {} byte bound".format(
                    length, MAX_BODY_BYTES
                ),
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequest(
                400, "invalid-json", "request body is not JSON: {}".format(
                    exc
                ),
            )

    def _stream_events(self, name, follow):
        # Resolve the campaign *before* committing to a 200: the 404
        # must arrive as a structured error, not a torn event stream
        # (iter_events is a generator — it would not raise until after
        # the headers were already on the wire).
        self.app.campaign(name)
        iterator = self.app.iter_events(name, follow=follow)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for event in iterator:
                self.wfile.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode(
                        "utf-8"
                    )
                )
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # consumer hung up mid-stream; nothing to clean up
