"""Tests for time-unit helpers."""

from repro.sim.units import MICROSECONDS_PER_MILLISECOND, ms_to_us, us_to_ms


def test_ms_to_us_integer():
    assert ms_to_us(4) == 4000


def test_ms_to_us_fractional():
    assert ms_to_us(0.5) == 500


def test_ms_to_us_returns_int():
    assert isinstance(ms_to_us(1.25), int)


def test_us_to_ms_roundtrip():
    assert us_to_ms(ms_to_us(20)) == 20.0


def test_constant():
    assert MICROSECONDS_PER_MILLISECOND == 1000
