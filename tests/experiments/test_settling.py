"""Tests for settling/recovery detection."""

import pytest

from repro.experiments.settling import moving_average, steady_state_time


def make_series(values, window_ms=10.0):
    times = [window_ms * (i + 1) for i in range(len(values))]
    return times, values


class TestMovingAverage:
    def test_window_one_is_identity(self):
        assert moving_average([1, 5, 2], window=1) == [1, 5, 2]

    def test_smooths_spikes(self):
        smoothed = moving_average([0, 0, 9, 0, 0], window=3)
        assert smoothed[2] == 3.0

    def test_edges_shrink(self):
        smoothed = moving_average([6, 0, 0, 0, 6], window=3)
        assert smoothed[0] == 3.0  # average of first two only
        assert smoothed[-1] == 3.0

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            moving_average([1, 2], window=2)


class TestSteadyStateTime:
    def test_step_response_settles_at_step(self):
        values = [0] * 10 + [20] * 30
        times, values = make_series(values)
        settle, level = steady_state_time(times, values, smooth_window=1)
        # Settles at the step (sample 11 -> t=110ms).
        assert settle == 110.0
        assert level == 20.0

    def test_flat_series_settles_immediately(self):
        times, values = make_series([10] * 20)
        settle, level = steady_state_time(times, values, smooth_window=1)
        assert settle == 10.0
        assert level == 10.0

    def test_ramp_settles_when_inside_band(self):
        values = list(range(0, 40, 2)) + [40] * 20
        times, values = make_series(values)
        settle, level = steady_state_time(
            times, values, band_frac=0.1, band_floor=0.0, smooth_window=1
        )
        assert level == pytest.approx(40.0, rel=0.02)
        # Band is +-4 around 40: first value inside is 36 at sample 19.
        assert settle <= 200.0

    def test_never_settling_returns_interval(self):
        # Oscillates wildly forever.
        values = [0 if i % 2 else 100 for i in range(40)]
        times, values = make_series(values)
        settle, _level = steady_state_time(
            times, values, band_floor=1.0, smooth_window=1
        )
        assert settle == times[-1] - times[0]

    def test_start_offset_measures_relative_time(self):
        values = [5] * 50 + [0] * 5 + [5] * 45
        times, values = make_series(values)
        settle, level = steady_state_time(
            times, values, start_ms=500.0, smooth_window=1
        )
        # Dip at 510-550, settled back by 560 => 60ms after start.
        assert settle == 60.0
        assert level == 5.0

    def test_end_bound_excludes_later_samples(self):
        values = [5] * 30 + [500] * 20
        times, values = make_series(values)
        _settle, level = steady_state_time(
            times, values, end_ms=300.0, smooth_window=1
        )
        assert level == 5.0

    def test_band_floor_tolerates_integer_noise(self):
        values = [10, 11, 9, 10, 11, 10, 9, 10] * 5
        times, values = make_series(values)
        settle, level = steady_state_time(
            times, values, band_floor=2.0, smooth_window=1
        )
        assert settle == 10.0
        assert 9 <= level <= 11

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            steady_state_time([1, 2], [1])

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            steady_state_time([10.0], [5], start_ms=0)
