"""Tests for named RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream_is_deterministic():
    a = RngStreams(7).stream("mapping")
    b = RngStreams(7).stream("mapping")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_sequences():
    streams = RngStreams(7)
    a = streams.stream("mapping")
    b = streams.stream("faults")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_give_different_sequences():
    a = RngStreams(1).stream("mapping")
    b = RngStreams(2).stream("mapping")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached_not_recreated():
    streams = RngStreams(7)
    first = streams.stream("x")
    first.random()
    assert streams.stream("x") is first


def test_creation_order_does_not_change_sequences():
    forward = RngStreams(7)
    a1 = forward.stream("a")
    forward.stream("b")
    backward = RngStreams(7)
    backward.stream("b")
    a2 = backward.stream("a")
    assert [a1.random() for _ in range(5)] == [a2.random() for _ in range(5)]


def test_contains_reports_created_streams():
    streams = RngStreams(7)
    assert "x" not in streams
    streams.stream("x")
    assert "x" in streams
