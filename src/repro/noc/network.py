"""Network assembly and packet movement.

The :class:`Network` owns the routers, the directed links between adjacent
routers, the routing policy, the provider directory and the deadlock
recovery state, and drives packets hop by hop through simulator events.

Task-addressed delivery works like this:

1. ``send(packet, from_node)`` resolves the nearest healthy provider of the
   packet's destination task (minimised Manhattan distance) and stamps it as
   ``dest_node``;
2. each hop picks the next direction from the fault-aware routing policy,
   waits for the output channel (wormhole occupancy), and re-enters
   ``_arrive`` at the downstream router;
3. at the destination router the packet is checked against the directory —
   if the node switched task or died while the packet was in flight, the
   packet is re-resolved toward a new provider (counted as a reroute), which
   is how traffic follows the adapting task topology;
4. delivery hands the packet to the ``deliver_handler`` installed by the
   platform (the processing element's internal port).
"""

from repro.noc.deadlock import DeadlockRecovery
from repro.noc.link import Link
from repro.noc.packet import PacketStatus
from repro.noc.router import Router, RouterConfig
from repro.noc.routing import (
    ProviderDirectory,
    RoutingPolicy,
    UnroutableError,
)
from repro.noc.topology import MeshTopology


class Network:
    """The NoC: routers, links and packet transport.

    Parameters
    ----------
    sim:
        The discrete-event simulator.
    topology:
        A :class:`MeshTopology`; defaults to the Centurion 16×8 grid.
    flit_time / wire_latency:
        Link timing (µs per flit, µs propagation).
    router_config:
        Prototype :class:`RouterConfig` copied into every router.
    deadlock_wait_limit:
        Channel-wait bound for deadlock recovery (µs), or ``None``.
    max_reroutes:
        How many times a packet may be re-resolved to a new provider before
        being dropped (guards against pathological switch storms).
    trace:
        Optional :class:`repro.sim.trace.TraceRecorder`.
    """

    def __init__(self, sim, topology=None, flit_time=1, wire_latency=1,
                 router_config=None, deadlock_wait_limit=50_000,
                 max_reroutes=8, trace=None):
        self.sim = sim
        self.topology = topology if topology is not None else MeshTopology()
        self.policy = RoutingPolicy(self.topology)
        self.directory = ProviderDirectory(self.topology)
        self.deadlock = DeadlockRecovery(deadlock_wait_limit)
        self.max_reroutes = max_reroutes
        self.trace = trace
        prototype = router_config if router_config is not None else RouterConfig()
        self.routers = {
            node: Router(node, prototype.copy())
            for node in self.topology.node_ids()
        }
        self.links = {}
        for node in self.topology.node_ids():
            for direction, neighbor in self.topology.neighbors(node).items():
                self.links[(node, neighbor)] = Link(
                    node, neighbor, flit_time=flit_time,
                    wire_latency=wire_latency,
                )
        self.deliver_handler = None
        self.failed_nodes = set()
        self.stats = {
            "sent": 0,
            "delivered": 0,
            "dropped_deadlock": 0,
            "dropped_no_provider": 0,
            "dropped_fault": 0,
            "reroutes": 0,
            "hops": 0,
        }

    # -- wiring ----------------------------------------------------------------

    def set_deliver_handler(self, handler):
        """Install ``handler(packet, node_id)`` called on delivery."""
        self.deliver_handler = handler

    def router(self, node_id):
        """The router at ``node_id``."""
        return self.routers[node_id]

    def link(self, src, dst):
        """The directed link ``src -> dst`` (KeyError if not adjacent)."""
        return self.links[(src, dst)]

    # -- faults -------------------------------------------------------------------

    def fail_node(self, node_id):
        """Kill a router (and its node's provider entry); reroutes adapt."""
        if node_id in self.failed_nodes:
            return
        self.failed_nodes.add(node_id)
        self.routers[node_id].fail()
        self.directory.mark_failed(node_id)
        self.policy.set_failed(self.failed_nodes)
        if self.trace is not None:
            self.trace.record(self.sim.now, "node_failed", node=node_id)

    # -- sending ---------------------------------------------------------------------

    def send(self, packet, from_node):
        """Inject ``packet`` at ``from_node``'s router, resolving a provider.

        Returns True if the packet entered the network (or was delivered
        locally), False if it was dropped immediately for lack of provider
        or a failed source router.
        """
        self.stats["sent"] += 1
        packet.status = PacketStatus.IN_FLIGHT
        packet.delivered_at = None
        if from_node in self.failed_nodes:
            self._drop(packet, PacketStatus.DROPPED_FAULT)
            return False
        dest = self.directory.nearest_provider(from_node, packet.dest_task)
        if dest is None:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=from_node)
            return False
        packet.dest_node = dest
        self._arrive(packet, from_node)
        return True

    def send_multicast(self, packets, from_node):
        """Send sibling packets to *distinct* nearest providers.

        The paper's discussion names multicast routing as the extension
        that "exploits the inherent parallelism of a task graph": the fork
        branches of one instance leave together and must not all pile onto
        the same provider, so the k-th packet resolves to the k-th nearest
        provider of its task.  Falls back to reusing providers when fewer
        than ``len(packets)`` exist.  Returns the number of packets that
        entered the network.
        """
        chosen = set()
        entered = 0
        for packet in packets:
            self.stats["sent"] += 1
            packet.status = PacketStatus.IN_FLIGHT
            packet.delivered_at = None
            if from_node in self.failed_nodes:
                self._drop(packet, PacketStatus.DROPPED_FAULT)
                continue
            dest = self.directory.nearest_provider(
                from_node, packet.dest_task, exclude=chosen
            )
            if dest is None:
                # Fewer healthy providers than branches: reuse the nearest.
                dest = self.directory.nearest_provider(
                    from_node, packet.dest_task
                )
            if dest is None:
                self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                           at_node=from_node)
                continue
            chosen.add(dest)
            packet.dest_node = dest
            self._arrive(packet, from_node)
            entered += 1
        return entered

    def redirect(self, packet, from_node, exclude=()):
        """Divert an in-network packet toward another provider.

        Used by full processing-element buffers (backpressure): the packet
        is re-resolved from ``from_node`` excluding the given providers and
        re-enters the hop engine there.  Returns True unless the packet had
        to be dropped (no alternative provider or reroute budget exhausted).
        """
        packet.status = PacketStatus.IN_FLIGHT
        packet.delivered_at = None
        if packet.reroutes > self.max_reroutes:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=from_node)
            return False
        dest = self.directory.nearest_provider(
            from_node, packet.dest_task, exclude=exclude
        )
        if dest is None:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=from_node)
            return False
        self.stats["reroutes"] += 1
        packet.dest_node = dest
        self._arrive(packet, from_node)
        return True

    # -- hop engine ---------------------------------------------------------------------

    def _arrive(self, packet, node):
        """Packet is at ``node``'s router at the current simulation time."""
        if not packet.in_flight:
            return
        if node in self.failed_nodes:
            self._drop(packet, PacketStatus.DROPPED_FAULT)
            return
        router = self.routers[node]
        if node == packet.dest_node:
            if self.directory.task_of(node) == packet.dest_task:
                self._deliver(packet, node, router)
                return
            # Destination changed task while the packet was in flight:
            # re-resolve toward the task's new nearest provider.
            if not self._reresolve(packet, node):
                return
            if packet.dest_node == node:
                self._deliver(packet, node, router)
                return
        try:
            direction = self.policy.next_direction(node, packet.dest_node)
        except UnroutableError:
            if not self._reresolve(packet, node, exclude=(packet.dest_node,)):
                return
            if packet.dest_node == node:
                self._deliver(packet, node, router)
                return
            try:
                direction = self.policy.next_direction(node, packet.dest_node)
            except UnroutableError:
                self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                           at_node=node)
                return
        direction = self._adaptive_port(router, node, packet, direction)
        neighbor = self.topology.neighbor(node, direction)
        if neighbor is None:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=node)
            return
        link = self.links[(node, neighbor)]
        now = self.sim.now
        wait = link.queue_delay(now)
        if self.deadlock.should_drop(wait):
            self.deadlock.record_drop(now)
            self._drop(packet, PacketStatus.DROPPED_DEADLOCK, at_node=node)
            return
        router.notify_routed(packet, to_internal=False)
        router.record_port(direction, incoming=False)
        departure = now + router.config.router_latency
        arrival_time = link.transfer(packet, departure)
        packet.hops += 1
        self.stats["hops"] += 1
        from repro.noc.topology import opposite

        in_port = opposite(direction)
        self.sim.schedule_at(
            arrival_time,
            lambda p=packet, n=neighbor, d=in_port: self._hop_in(p, n, d),
        )

    def _hop_in(self, packet, node, in_port):
        if not packet.in_flight:
            return
        if node in self.failed_nodes:
            self._drop(packet, PacketStatus.DROPPED_FAULT)
            return
        self.routers[node].record_port(in_port, incoming=True)
        self._arrive(packet, node)

    def _adaptive_port(self, router, node, packet, policy_direction):
        """Congestion-aware minimal output-port choice (paper §V).

        When the router is in ``adaptive`` mode and more than one healthy
        *minimal* direction exists, pick the output whose channel is least
        busy right now; ties keep the dimension-ordered choice.  The
        override only applies when the policy's own direction is among the
        minimal candidates — when the policy is detouring around faults,
        its direction stands, which keeps detours loop-free.  Minimal
        adaptive routing can in principle deadlock; like the real
        Centurion, the deadlock-recovery timeout is the backstop.
        """
        if router.config.routing_mode != "adaptive":
            return policy_direction
        candidates = self.policy.minimal_directions(node, packet.dest_node)
        if len(candidates) < 2 or policy_direction not in candidates:
            return policy_direction
        now = self.sim.now
        best = policy_direction
        best_wait = None
        for direction in candidates:
            neighbor = self.topology.neighbor(node, direction)
            wait = self.links[(node, neighbor)].queue_delay(now)
            if best_wait is None or wait < best_wait:
                best = direction
                best_wait = wait
        return best

    # -- terminal outcomes --------------------------------------------------------

    def _deliver(self, packet, node, router):
        router.notify_routed(packet, to_internal=True)
        packet.status = PacketStatus.DELIVERED
        packet.delivered_at = self.sim.now
        self.stats["delivered"] += 1
        if self.trace is not None:
            self.trace.record(
                self.sim.now,
                "packet_delivered",
                packet=packet.packet_id,
                node=node,
                task=packet.dest_task,
                hops=packet.hops,
            )
        if self.deliver_handler is not None:
            self.deliver_handler(packet, node)

    def _reresolve(self, packet, node, exclude=()):
        """Pick a new provider for an in-flight packet; False if dropped."""
        packet.reroutes += 1
        self.stats["reroutes"] += 1
        if packet.reroutes > self.max_reroutes:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=node)
            return False
        dest = self.directory.nearest_provider(
            node, packet.dest_task, exclude=exclude
        )
        if dest is None:
            self._drop(packet, PacketStatus.DROPPED_NO_PROVIDER,
                       at_node=node)
            return False
        packet.dest_node = dest
        return True

    def _drop(self, packet, status, at_node=None):
        packet.status = status
        key = {
            PacketStatus.DROPPED_DEADLOCK: "dropped_deadlock",
            PacketStatus.DROPPED_NO_PROVIDER: "dropped_no_provider",
            PacketStatus.DROPPED_FAULT: "dropped_fault",
        }[status]
        self.stats[key] += 1
        if at_node is not None:
            router = self.routers.get(at_node)
            if router is not None:
                router.notify_dropped(packet)
        if self.trace is not None:
            self.trace.record(
                self.sim.now,
                "packet_dropped",
                packet=packet.packet_id,
                reason=status,
                task=packet.dest_task,
            )

    def __repr__(self):
        return "Network({} nodes, {} failed, stats={})".format(
            self.topology.num_nodes, len(self.failed_nodes), self.stats
        )
