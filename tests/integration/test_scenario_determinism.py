"""Scenario-engine determinism: legacy fault counts are bit-identical.

The FaultInjector is now an interpreter for declarative FaultScenarios;
the legacy surface — ``run_single(faults=n)`` and campaign
``fault_counts`` — must keep producing exactly the rows it produced
before the rework (mirroring test_fast_path_determinism.py and
test_campaign_determinism.py, which pin the same property for the
express hop engine and the campaign store).  Three angles:

* a hand-rolled replica of the *pre-rework* injection code (the PR 2
  ``FaultInjector._inject`` body scheduled directly on the kernel) must
  match today's ``run_single(faults=n)`` — this pins the RNG contract
  (stream name, alive-list order, ``min``-capped ``rng.sample``);
* ``run_single(faults=n)`` must equal ``run_single(scenario=burst)`` —
  the declarative spelling of the same fault;
* a campaign over ``fault_counts`` must equal the plain sequential seed
  path, cold and resumed, and scenario cells must hash apart from
  legacy cells.
"""

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec, RunDescriptor
from repro.experiments.runner import run_batch, run_single
from repro.experiments.settling import recovery_analysis, settling_analysis
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.platform.scenario import FaultScenario

_CONFIG = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)
_MODELS = ("none", "network_interaction", "foraging_for_work")


def _legacy_replica_row(model, seed, faults, config):
    """Run with the PR 2 injection code scheduled by hand.

    This is a line-for-line replica of the historic
    ``FaultInjector.schedule``/``_inject`` pair, bypassing today's
    injector entirely; any drift in the scenario engine's RNG usage or
    event priority shows up as a row mismatch.
    """
    platform = CenturionPlatform(config, model_name=model, seed=seed)
    sim = platform.sim

    def inject(count=faults):
        controller = platform.controller
        rng = sim.rng.stream("fault-injection")
        alive = controller.alive_nodes()
        count = min(count, len(alive))
        for node_id in rng.sample(alive, count):
            controller.inject_fault(node_id)

    sim.schedule_at(
        config.fault_time_us, inject, priority=sim.PRIORITY_CONTROL
    )
    series = platform.run()
    fault_time_ms = config.fault_time_us / 1000.0
    settling_time, settled_perf = settling_analysis(
        series, end_ms=fault_time_ms, metric="joins"
    )
    recovery_time, recovered_perf = recovery_analysis(
        series, fault_time_ms, metric="joins"
    )
    return {
        "model": platform.model_name,
        "seed": seed,
        "faults": faults,
        "settling_time_ms": settling_time,
        "settled_performance": settled_perf,
        "recovery_time_ms": recovery_time,
        "recovered_performance": recovered_perf,
        "total_switches": platform.total_task_switches(),
    }


@pytest.mark.parametrize("model", _MODELS)
def test_legacy_counts_match_pre_rework_injection(model):
    replica = _legacy_replica_row(model, seed=11, faults=4, config=_CONFIG)
    current = run_single(
        model, seed=11, faults=4, config=_CONFIG, keep_series=False
    )
    assert current.as_row() == replica


def test_zero_burst_scenario_matches_legacy_zero_faults():
    legacy = run_single(
        "none", seed=12, faults=0, config=_CONFIG, keep_series=False
    )
    declarative = run_single(
        "none", seed=12, config=_CONFIG, keep_series=False,
        scenario=FaultScenario.burst(0, _CONFIG.fault_time_us),
    )
    legacy_row = legacy.as_row()
    declarative_row = declarative.as_row()
    declarative_row.pop("scenario")
    assert declarative_row == legacy_row


@pytest.mark.parametrize("model", _MODELS)
@pytest.mark.parametrize("faults", [1, 5])
def test_burst_scenario_matches_legacy_counts(model, faults):
    legacy = run_single(
        model, seed=12, faults=faults, config=_CONFIG, keep_series=False
    )
    scenario = FaultScenario.burst(faults, _CONFIG.fault_time_us)
    declarative = run_single(
        model, seed=12, config=_CONFIG, keep_series=False,
        scenario=scenario,
    )
    legacy_row = legacy.as_row()
    declarative_row = declarative.as_row()
    # The scenario column is the only admissible difference.
    assert declarative_row.pop("scenario") == scenario.name
    assert declarative_row == legacy_row
    assert declarative.noc_stats == legacy.noc_stats
    assert declarative.app_stats == legacy.app_stats


def test_legacy_campaign_rows_bit_identical_to_seed_path(tmp_path):
    spec = CampaignSpec(
        name="legacy-determinism",
        models=("none", "foraging_for_work"),
        seeds=(11, 12),
        fault_counts=(0, 3),
        config=_CONFIG,
    )
    sequential = [
        result.as_row()
        for model in spec.models
        for faults in spec.fault_counts
        for result in run_batch(
            model, spec.seeds, faults=faults, config=_CONFIG, processes=0
        )
    ]
    cold = run_campaign(spec, store=str(tmp_path), processes=2)
    warm = run_campaign(spec, store=str(tmp_path), processes=2)
    assert warm.executed == 0
    assert [r.as_row() for r in cold.results] == sequential
    assert [r.as_row() for r in warm.results] == sequential


def test_scenario_axis_campaign_is_deterministic(tmp_path):
    scenario = FaultScenario(
        name="wave-then-cut",
        events=(
            {"at_us": 60_000, "count": 2, "repeats": 2,
             "period_us": 20_000},
            {"at_us": 70_000, "kind": "link", "count": 1,
             "duration_us": 20_000},
        ),
    )
    spec = CampaignSpec(
        name="scenario-determinism",
        models=("none",),
        seeds=(11, 12),
        fault_counts=(),
        scenarios=(scenario,),
        config=_CONFIG,
    )
    cold = run_campaign(spec, store=str(tmp_path), processes=2)
    warm = run_campaign(spec, store=str(tmp_path), processes=2)
    fresh = run_campaign(spec, processes=0)
    assert warm.executed == 0
    rows = [r.as_row() for r in cold.results]
    assert rows == [r.as_row() for r in warm.results]
    assert rows == [r.as_row() for r in fresh.results]
    assert all(row["scenario"] == "wave-then-cut" for row in rows)


def test_scenario_cells_hash_apart_from_legacy_cells():
    legacy = RunDescriptor("none", 11, 0, _CONFIG)
    burst = RunDescriptor(
        "none", 11, 0, _CONFIG,
        scenario=FaultScenario.burst(0, _CONFIG.fault_time_us),
    )
    other = RunDescriptor(
        "none", 11, 0, _CONFIG,
        scenario=FaultScenario.burst(1, _CONFIG.fault_time_us),
    )
    assert len({legacy.key(), burst.key(), other.key()}) == 3


def test_legacy_key_payload_unchanged_by_scenario_field():
    """The pre-scenario key recipe reproduces today's legacy keys."""
    import hashlib
    import json

    from repro.campaign.spec import HASH_SCHEMA_VERSION

    # Hand-rolled replica of the pre-dynamics config payload (the exact
    # field set PR 3 keys hashed); the canonical-optional dynamics
    # fields must stay absent at their defaults.
    from tests.integration.test_fault_v2_determinism import _v1_config_dict

    descriptor = RunDescriptor("ffw", 7, 3, _CONFIG)
    payload = {
        "schema": HASH_SCHEMA_VERSION,
        "model": "foraging_for_work",
        "seed": 7,
        "faults": 3,
        "metric": "joins",
        "config": _v1_config_dict(_CONFIG),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert descriptor.key() == hashlib.sha256(
        blob.encode("utf-8")
    ).hexdigest()
