"""Tests for the mesh topology."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.topology import (
    DIRECTIONS,
    EAST,
    NORTH,
    SOUTH,
    WEST,
    MeshTopology,
    opposite,
)


@pytest.fixture
def mesh():
    return MeshTopology(width=16, height=8)


class TestBasics:
    def test_centurion_dimensions(self, mesh):
        assert mesh.num_nodes == 128

    def test_node_id_roundtrip(self, mesh):
        for node in mesh.node_ids():
            x, y = mesh.coords(node)
            assert mesh.node_id(x, y) == node

    def test_row_major_layout(self, mesh):
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(15) == (15, 0)
        assert mesh.coords(16) == (0, 1)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            MeshTopology(width=0, height=4)

    def test_out_of_range_id_rejected(self, mesh):
        with pytest.raises(ValueError):
            mesh.coords(128)
        with pytest.raises(ValueError):
            mesh.coords(-1)

    def test_out_of_range_coords_rejected(self, mesh):
        with pytest.raises(ValueError):
            mesh.node_id(16, 0)


class TestNeighbours:
    def test_interior_node_has_four_neighbours(self, mesh):
        node = mesh.node_id(5, 4)
        neighbors = mesh.neighbors(node)
        assert set(neighbors) == set(DIRECTIONS)

    def test_corner_has_two_neighbours(self, mesh):
        assert len(mesh.neighbors(mesh.node_id(0, 0))) == 2

    def test_north_decreases_y(self, mesh):
        node = mesh.node_id(5, 4)
        assert mesh.coords(mesh.neighbor(node, NORTH)) == (5, 3)

    def test_edges_return_none(self, mesh):
        assert mesh.neighbor(mesh.node_id(0, 0), NORTH) is None
        assert mesh.neighbor(mesh.node_id(0, 0), WEST) is None
        assert mesh.neighbor(mesh.node_id(15, 7), SOUTH) is None
        assert mesh.neighbor(mesh.node_id(15, 7), EAST) is None

    def test_direction_to_adjacent(self, mesh):
        node = mesh.node_id(5, 4)
        east = mesh.neighbor(node, EAST)
        assert mesh.direction_to(node, east) == EAST

    def test_direction_to_non_adjacent_raises(self, mesh):
        with pytest.raises(ValueError):
            mesh.direction_to(0, 5)

    def test_opposite_directions(self):
        assert opposite(NORTH) == SOUTH
        assert opposite(EAST) == WEST
        assert opposite(opposite(EAST)) == EAST


class TestMetrics:
    def test_manhattan_examples(self, mesh):
        assert mesh.manhattan(0, 0) == 0
        assert mesh.manhattan(mesh.node_id(0, 0), mesh.node_id(15, 7)) == 22

    def test_top_row(self, mesh):
        row = mesh.top_row()
        assert len(row) == 16
        assert all(mesh.coords(n)[1] == 0 for n in row)


node_pairs = st.tuples(
    st.integers(min_value=0, max_value=127),
    st.integers(min_value=0, max_value=127),
)


@given(node_pairs)
def test_manhattan_symmetry(pair):
    mesh = MeshTopology(16, 8)
    a, b = pair
    assert mesh.manhattan(a, b) == mesh.manhattan(b, a)


@given(node_pairs, st.integers(min_value=0, max_value=127))
def test_manhattan_triangle_inequality(pair, c):
    mesh = MeshTopology(16, 8)
    a, b = pair
    assert mesh.manhattan(a, b) <= mesh.manhattan(a, c) + mesh.manhattan(c, b)


@given(st.integers(min_value=0, max_value=127))
def test_neighbors_are_mutual(node):
    mesh = MeshTopology(16, 8)
    for direction, other in mesh.neighbors(node).items():
        assert mesh.neighbor(other, opposite(direction)) == node
