"""Property tests for the mapping generators."""

import random

from hypothesis import given, settings, strategies as st

from repro.app.mapping import census, clustered_mapping, random_mapping
from repro.noc.topology import MeshTopology

weight_sets = st.dictionaries(
    keys=st.integers(min_value=1, max_value=5),
    values=st.integers(min_value=1, max_value=9),
    min_size=1,
    max_size=4,
)


@settings(max_examples=40)
@given(
    width=st.integers(min_value=4, max_value=20),
    height=st.integers(min_value=1, max_value=10),
    weights=weight_sets,
)
def test_clustered_mapping_total_and_membership(width, height, weights):
    topology = MeshTopology(width, height)
    mapping = clustered_mapping(topology, weights)
    assert len(mapping) == topology.num_nodes
    assert set(mapping.values()) <= set(weights)
    # Bands are contiguous in x: once the task changes along a row it never
    # returns to an earlier task.
    tasks_in_order = sorted(weights)
    for y in range(height):
        row = [mapping[topology.node_id(x, y)] for x in range(width)]
        indices = [tasks_in_order.index(t) for t in row]
        assert indices == sorted(indices)


@settings(max_examples=40)
@given(
    n=st.integers(min_value=1, max_value=400),
    weights=weight_sets,
    seed=st.integers(min_value=0, max_value=9999),
)
def test_random_mapping_assigns_all_with_known_tasks(n, weights, seed):
    mapping = random_mapping(range(n), weights, random.Random(seed))
    assert len(mapping) == n
    assert set(mapping.values()) <= set(weights)
    assert sum(census(mapping).values()) == n
