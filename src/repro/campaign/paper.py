"""The paper's artefacts expressed as campaigns.

Builders for the three canonical sweeps — Table I (zero-fault settling),
Table II (recovery vs fault count) and Figure 4 (time-series panels) —
plus :func:`artifact`, which turns a finished
:class:`~repro.campaign.executor.CampaignReport` back into the rows or
panel data the formatters consume.  The CLI's ``table1``/``table2``/
``figure4``/``campaign`` subcommands are thin shells over this module.
"""

from repro.campaign.spec import CampaignSpec
from repro.experiments.figures import FIGURE4_FAULTS, FIGURE4_MODELS
from repro.experiments.runner import default_seeds
from repro.experiments.tables import table1_from_runs, table2_from_runs
from repro.platform.config import PlatformConfig

#: Paper model set, in table order.
MODELS = ("none", "network_interaction", "foraging_for_work")

#: Paper fault counts for Table II.
TABLE2_FAULTS = (0, 2, 4, 8, 16, 32)


def table1_spec(runs=15, seed_base=1000, config=None, models=MODELS):
    """Table I as a campaign: zero-fault settling sweep."""
    return CampaignSpec(
        name="table1",
        models=tuple(models),
        seeds=tuple(default_seeds(runs, base=seed_base)),
        fault_counts=(0,),
        config=config if config is not None else PlatformConfig(),
        kind="table1",
    )


def table2_spec(runs=15, fault_counts=TABLE2_FAULTS, seed_base=1000,
                config=None, models=MODELS):
    """Table II as a campaign: recovery sweep over fault counts.

    Zero faults is always included — it is the normalisation reference
    (the table's highlighted case).
    """
    fault_counts = tuple(fault_counts)
    if 0 not in fault_counts:
        fault_counts = (0,) + fault_counts
    return CampaignSpec(
        name="table2",
        models=tuple(models),
        seeds=tuple(default_seeds(runs, base=seed_base)),
        fault_counts=fault_counts,
        config=config if config is not None else PlatformConfig(),
        kind="table2",
    )


def figure4_spec(seed=42, config=None, faults=FIGURE4_FAULTS,
                 models=FIGURE4_MODELS):
    """Figure 4 as a campaign: six full-series runs at one seed."""
    return CampaignSpec(
        name="figure4",
        models=tuple(models),
        seeds=(seed,),
        fault_counts=tuple(faults),
        config=config if config is not None else PlatformConfig(),
        keep_series=True,
        kind="figure4",
    )


#: Builders for the ``campaign --paper NAME`` CLI shortcut.
PAPER_SPECS = {
    "table1": table1_spec,
    "table2": table2_spec,
    "figure4": figure4_spec,
}


def figure4_data(report):
    """``{fault_count: {model: RunResult}}`` from a figure4 campaign."""
    data = {}
    for descriptor, result in report.pairs():
        data.setdefault(descriptor.faults, {})[descriptor.model] = result
    return data


def artifact(report):
    """The report's artefact, per its spec ``kind``.

    table1/table2 → row dicts; figure4 → panel data; grid → the flat
    scalar rows of every cell.  A sharded worker's report is partial by
    design (it holds only that worker's cells plus cache/dedup hits), so
    it is refused here — run a merge pass (no ``worker_id``) against the
    shared store once the fleet drains to assemble the artefact.
    """
    if getattr(report, "pending_elsewhere", 0):
        raise ValueError(
            "cannot assemble an artefact from worker {}'s partial report "
            "({} cells on other shards); rerun without --worker-id after "
            "the fleet drains".format(
                report.worker_id, report.pending_elsewhere
            )
        )
    kind = report.spec.kind
    if kind == "table1":
        return table1_from_runs(report.results)
    if kind == "table2":
        return table2_from_runs(report.results)
    if kind == "figure4":
        return figure4_data(report)
    return [result.as_row() for result in report.results]
