"""Behavioural tests for the generalised workload interpreter.

Exercises graph shapes the legacy fork-join class cannot express —
pipelines, fan-outs, all-to-all shuffles with fan-in 4 — plus the
time-varying arrival gates and stochastic service distributions.
"""

import pytest

from repro.app.workloads import (
    GraphWorkload,
    WorkloadGraphError,
    capacity_report,
    compile_workload,
    pipeline_spec,
    shuffle_spec,
)
from repro.noc.packet import Packet
from repro.sim.engine import Simulator


class FakePE:
    def __init__(self, node_id, task_id, gen_seq=0):
        self.node_id = node_id
        self.task_id = task_id
        self._gen_seq = gen_seq


def _workload(ref, seed=0):
    return GraphWorkload(Simulator(seed=seed), compile_workload(ref))


def _burst_spec(**arrival_overrides):
    arrival = {
        "period_us": 1_000, "shape": "burst",
        "burst_ticks": 2, "idle_ticks": 1,
    }
    arrival.update(arrival_overrides)
    return {
        "name": "burst-line",
        "tasks": [
            {"id": 1, "service_us": 100, "arrival": arrival,
             "downstream": [2]},
            {"id": 2, "service_us": 400},
        ],
    }


class TestPipeline:
    def test_stage_edges_preserve_branch_verbatim(self):
        workload = _workload(pipeline_spec(stages=3))
        pe = FakePE(3, 2)
        incoming = Packet(1, 2, instance=(1, 5), branch=0)
        (out,) = workload.packets_after_execution(pe, incoming)
        assert out.dest_task == 3
        assert out.instance == (1, 5)
        assert out.branch == 0

    def test_terminal_executions_count_as_joins(self):
        workload = _workload(pipeline_spec(stages=3))
        assert workload._terminal_joins
        assert list(workload.compiled.sink_ids) == [3]
        pe = FakePE(9, 3)
        assert workload.packets_after_execution(
            pe, Packet(3, 3, instance=(1, 0), branch=0)
        ) == []
        assert workload.joins == 1
        assert workload.sink_task_executions() == 1


class TestFanOutAndFanIn:
    def test_fanout_edge_expands_into_contiguous_branches(self):
        workload = _workload({
            "name": "fan4",
            "tasks": [
                {"id": 1, "service_us": 100, "arrival": 1_000,
                 "downstream": [{"task": 2, "fanout": 4}]},
                {"id": 2, "service_us": 400, "downstream": [3]},
                {"id": 3, "service_us": 100, "join": True},
            ],
        })
        pe = FakePE(7, 1)
        emitted = []
        for seq in range(8):
            pe._gen_seq = seq
            (packet,) = workload.packets_for_generation(pe)
            emitted.append((packet.instance, packet.branch))
        assert emitted == [
            ((7, 0), 0), ((7, 0), 1), ((7, 0), 2), ((7, 0), 3),
            ((7, 1), 0), ((7, 1), 1), ((7, 1), 2), ((7, 1), 3),
        ]
        assert workload.compiled.in_width[3] == 4

    def test_shuffle_join_waits_for_all_four_branches(self):
        workload = _workload(shuffle_spec(width=2))
        (join_id,) = workload.spec.join_ids()
        pe = FakePE(9, join_id)
        for branch in range(3):
            assert workload.packets_after_execution(
                pe, Packet(3, join_id, instance=(1, 0), branch=branch)
            ) == []
            assert workload.joins == 0
        workload.packets_after_execution(
            pe, Packet(3, join_id, instance=(1, 0), branch=3)
        )
        assert workload.joins == 1
        assert workload.pending_join_count == 0

    def test_shuffle_reducers_renumber_branches_for_the_join(self):
        compiled = compile_workload(shuffle_spec(width=2))
        workload = GraphWorkload(Simulator(seed=0), compiled)
        (join_id,) = compiled.spec.join_ids()
        reducer_ids = sorted(
            tid for tid, edges in compiled.out_edges.items()
            if any(e.dest == join_id for e in edges)
        )
        seen = set()
        for reducer in reducer_ids:
            for old_branch in range(compiled.in_width[reducer]):
                (out,) = workload.packets_after_execution(
                    FakePE(5, reducer),
                    Packet(2, reducer, instance=(1, 0), branch=old_branch),
                )
                assert out.dest_task == join_id
                seen.add(out.branch)
        assert seen == {0, 1, 2, 3}


class TestArrivalGating:
    def test_burst_gates_ticks_but_keeps_instances_dense(self):
        workload = _workload(_burst_spec())
        pe = FakePE(4, 1)
        emitted = []
        for _tick in range(6):
            packets = workload.packets_for_generation(pe)
            if packets:
                # The real PE bumps its sequence only on emitting ticks.
                pe._gen_seq += 1
            emitted.append([p.instance for p in packets])
        assert emitted == [
            [(4, 0)], [(4, 1)], [], [(4, 2)], [(4, 3)], [],
        ]

    def test_burst_makes_no_rng_draws(self):
        workload = _workload(_burst_spec())
        pe = FakePE(4, 1)
        for _tick in range(6):
            if workload.packets_for_generation(pe):
                pe._gen_seq += 1
        assert workload._arrival_rng is None
        assert workload._service_rng is None

    def test_diurnal_gate_is_seeded_and_deterministic(self):
        spec = _burst_spec()
        spec["tasks"][0]["arrival"] = {
            "period_us": 1_000, "shape": "diurnal", "cycle_us": 50_000,
        }
        gates = []
        for _repeat in range(2):
            workload = _workload(spec, seed=11)
            pe = FakePE(4, 1)
            run = []
            for _tick in range(40):
                packets = workload.packets_for_generation(pe)
                if packets:
                    pe._gen_seq += 1
                run.append(bool(packets))
            gates.append(run)
        assert gates[0] == gates[1]
        assert any(gates[0]) and not all(gates[0])


class TestServiceDistributions:
    def _line(self, **task_fields):
        tasks = [
            {"id": 1, "service_us": 100, "arrival": 1_000,
             "downstream": [2]},
            {"id": 2, "service_us": 4_000},
        ]
        tasks[1].update(task_fields)
        return _workload({"name": "dist", "tasks": tasks}, seed=3)

    def test_fixed_service_draws_nothing(self):
        workload = self._line()
        assert workload.service_time(2) == 4_000
        assert workload._service_rng is None

    def test_uniform_service_stays_within_spread(self):
        workload = self._line(service_dist="uniform", service_spread=0.25)
        for _ in range(50):
            value = workload.service_time(2)
            assert 3_000 <= value <= 5_000

    def test_exponential_service_is_positive(self):
        workload = self._line(service_dist="exponential")
        values = [workload.service_time(2) for _ in range(50)]
        assert all(v >= 1.0 for v in values)
        assert len(set(values)) > 1


class TestCompileErrors:
    def test_pass_through_cycle_rejected(self):
        with pytest.raises(WorkloadGraphError, match="cycle"):
            compile_workload({
                "name": "loop",
                "tasks": [
                    {"id": 1, "service_us": 100, "arrival": 1_000,
                     "downstream": [2]},
                    {"id": 2, "service_us": 100, "downstream": [3]},
                    {"id": 3, "service_us": 100, "downstream": [2]},
                ],
            })

    def test_join_fed_by_two_sources_rejected(self):
        with pytest.raises(WorkloadGraphError, match="source"):
            compile_workload({
                "name": "mixed",
                "tasks": [
                    {"id": 1, "service_us": 100, "arrival": 1_000,
                     "downstream": [3]},
                    {"id": 2, "service_us": 100, "arrival": 2_000,
                     "downstream": [3]},
                    {"id": 3, "service_us": 100, "join": True},
                ],
            })


class TestCapacityReport:
    def test_over_capacity_task_flagged(self):
        compiled = compile_workload({
            "name": "hot",
            "tasks": [
                {"id": 1, "service_us": 100, "arrival": 1_000,
                 "downstream": [2]},
                {"id": 2, "service_us": 50_000},
            ],
        })
        _rows, warnings = capacity_report(compiled, num_nodes=16)
        assert any("over capacity" in w for w in warnings)

    def test_unreachable_task_flagged(self):
        compiled = compile_workload({
            "name": "island",
            "tasks": [
                {"id": 1, "service_us": 100, "arrival": 1_000},
                {"id": 2, "service_us": 100},
            ],
        })
        _rows, warnings = capacity_report(compiled, num_nodes=16)
        assert any("never receives work" in w for w in warnings)

    def test_transient_burst_peak_flagged(self):
        compiled = compile_workload({
            "name": "spiky",
            "tasks": [
                {"id": 1, "service_us": 100,
                 "arrival": {"period_us": 1_000, "shape": "burst",
                             "burst_ticks": 1, "idle_ticks": 3},
                 "downstream": [2]},
                {"id": 2, "service_us": 16_000},
            ],
        })
        rows, warnings = capacity_report(compiled, num_nodes=16)
        by_task = {row["task"]: row for row in rows}
        assert by_task[2]["utilization"] <= 1.0
        assert by_task[2]["peak_utilization"] > 1.0
        assert any("transiently over capacity" in w for w in warnings)

    def test_clean_spec_has_no_warnings(self):
        compiled = compile_workload("fork_join")
        _rows, warnings = capacity_report(compiled, num_nodes=16)
        assert warnings == []
