"""Persistent campaign result store (append-only JSONL).

One :class:`ResultStore` wraps a campaign directory.  Finished cells are
appended to ``results.jsonl`` as they complete — the checkpoint stream —
and loaded back into memory on open (last record per key wins, so a
truncated final line from a crash costs only itself).  Records are keyed
by :meth:`RunDescriptor.key`; see the package docstring for the
stability contract.
"""

import json
import os

from repro.experiments.runner import RunResult

RESULTS_FILE = "results.jsonl"
SPEC_FILE = "spec.json"


class StoredSeries:
    """Attribute view over a JSON-decoded metrics series.

    Exposes the same read surface the figures use on a live
    :class:`~repro.app.metrics.MetricsSeries`: the column attributes,
    ``census``, ``task_ids``, ``len()`` and ``as_dict()``.
    """

    def __init__(self, data):
        self._data = {
            key: value for key, value in data.items() if key != "census"
        }
        for key, value in self._data.items():
            setattr(self, key, value)
        self.census = _int_keys(data.get("census", {}))
        self.task_ids = tuple(sorted(self.census))

    def __len__(self):
        return len(getattr(self, "time_ms", ()))

    def as_dict(self):
        """Plain-dict export, mirroring ``MetricsSeries.as_dict``."""
        data = dict(self._data)
        data["census"] = {tid: list(v) for tid, v in self.census.items()}
        return data


def _int_keys(mapping):
    """Undo JSON's str-keying of int-keyed dicts (census, per-task stats)."""
    restored = {}
    for key, value in mapping.items():
        if isinstance(key, str):
            try:
                key = int(key)
            except ValueError:
                pass
        restored[key] = value
    return restored


def encode_result(descriptor, result, key=None):
    """JSON-friendly record for one finished cell."""
    return {
        "key": key if key is not None else descriptor.key(),
        "model": result.model,
        "seed": result.seed,
        "faults": result.faults,
        "row": result.as_row(),
        "app_stats": result.app_stats,
        "noc_stats": result.noc_stats,
        "total_switches": result.total_switches,
        "series": (
            result.series.as_dict() if result.series is not None else None
        ),
    }


def decode_result(record):
    """Rebuild a :class:`RunResult` from a stored record.

    Scalar row fields are restored verbatim (JSON round-trips Python
    ints and floats exactly), so table rows built from cached cells are
    bit-identical to freshly computed ones.
    """
    row = record["row"]
    app_stats = dict(record["app_stats"])
    if "executions_by_task" in app_stats:
        app_stats["executions_by_task"] = _int_keys(
            app_stats["executions_by_task"]
        )
    series = record.get("series")
    return RunResult(
        model=row["model"],
        seed=row["seed"],
        faults=row["faults"],
        settling_time_ms=row["settling_time_ms"],
        settled_performance=row["settled_performance"],
        recovery_time_ms=row["recovery_time_ms"],
        recovered_performance=row["recovered_performance"],
        series=StoredSeries(series) if series is not None else None,
        app_stats=app_stats,
        noc_stats=dict(record["noc_stats"]),
        total_switches=row["total_switches"],
        scenario=row.get("scenario"),
    )


class ResultStore:
    """Keyed, append-only store of finished campaign cells."""

    def __init__(self, directory):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, RESULTS_FILE)
        self._records = {}
        self._handle = None
        self._load()

    def _load(self):
        if not os.path.exists(self.path):
            return
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn final line from an interrupted append
                key = record.get("key")
                if key:
                    self._records[key] = record

    def __len__(self):
        return len(self._records)

    def __contains__(self, key):
        return key in self._records

    def keys(self):
        """The stored cell keys."""
        return self._records.keys()

    def get(self, key):
        """The raw stored record for ``key`` (or None)."""
        return self._records.get(key)

    def has_result(self, descriptor, key=None):
        """True when a usable cached result exists for ``descriptor``.

        A record without a series does not satisfy a descriptor that
        asks for one (``keep_series`` is not part of the key).  Pass a
        precomputed ``key`` to skip re-hashing the descriptor.
        """
        record = self._records.get(
            key if key is not None else descriptor.key()
        )
        if record is None:
            return False
        if descriptor.keep_series and record.get("series") is None:
            return False
        return True

    def load_result(self, descriptor, key=None):
        """The cached :class:`RunResult` for ``descriptor``."""
        return decode_result(
            self._records[key if key is not None else descriptor.key()]
        )

    def save_result(self, descriptor, result, key=None):
        """Append one finished cell and flush (the resume checkpoint)."""
        record = encode_result(descriptor, result, key=key)
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
        )
        self._handle.write("\n")
        self._handle.flush()
        self._records[record["key"]] = record
        return record

    def write_spec(self, spec):
        """Record provenance: the spec that last wrote to this store."""
        with open(os.path.join(self.directory, SPEC_FILE), "w") as handle:
            json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def close(self):
        """Close the append handle (records stay loaded)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
