"""Persistent campaign result store (append-only JSONL, v2).

One :class:`ResultStore` wraps a campaign directory.  Finished cells are
appended to ``results.jsonl`` as they complete — the checkpoint stream —
and loaded back into memory once on open (last record per key wins, so a
truncated final line from a crash costs only itself).  Records are keyed
by :meth:`RunDescriptor.key`; see the package docstring for the
stability contract.

Store v2 adds multi-writer sharding: a store opened with ``worker=K``
appends to its own ``results.worker-K.jsonl`` instead of the shared
``results.jsonl``, so independent worker processes — or machines sharing
a filesystem — can drain one campaign without write contention or file
locks.  Every reader merges the main stream plus all worker streams
(main first, then workers in sorted name order; shards are key-disjoint
so the order is immaterial), and :meth:`ResultStore.reconcile` folds the
worker streams back into ``results.jsonl`` verbatim — byte-identical
lines — and removes them.  Because records are keyed and last-write-wins,
reconciliation needs no lock: a line duplicated by a rare race is merely
superseded by itself.

The completed-key set is memoised: each stream is scanned exactly once,
on open, and every ``has_result``/``__contains__`` check afterwards is a
dict lookup — resume paths never re-read ``results.jsonl`` per key
(pinned by ``tests/campaign/test_executor.py``).  The per-instance
``scans`` counter records how many stream files were read.
"""

import fnmatch
import json
import os

from repro.experiments.runner import RunResult

RESULTS_FILE = "results.jsonl"
SPEC_FILE = "spec.json"

#: Glob matching per-worker append streams (see ``worker_results_file``).
WORKER_RESULTS_PATTERN = "results.worker-*.jsonl"


def worker_results_file(worker):
    """Name of worker ``K``'s private append stream."""
    return "results.worker-{}.jsonl".format(worker)


def worker_files(directory):
    """Sorted paths of the worker streams present in ``directory``."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return [
        os.path.join(directory, name)
        for name in sorted(fnmatch.filter(names, WORKER_RESULTS_PATTERN))
    ]


def encode_line(record):
    """The canonical, byte-stable JSONL serialisation of one record.

    Every writer (checkpoint append, dedup copy, gc compaction, JSONL
    export) uses this exact form, which is what makes cross-campaign
    reuse *byte*-identical, not merely value-identical.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class StoredSeries:
    """Attribute view over a JSON-decoded metrics series.

    Exposes the same read surface the figures use on a live
    :class:`~repro.app.metrics.MetricsSeries`: the column attributes,
    ``census``, ``task_ids``, ``len()`` and ``as_dict()``.
    """

    def __init__(self, data):
        self._data = {
            key: value for key, value in data.items()
            if key not in ("census", "task_executions")
        }
        for key, value in self._data.items():
            setattr(self, key, value)
        self.census = _int_keys(data.get("census", {}))
        self.task_ids = tuple(sorted(self.census))
        # Per-task execution columns (present only on workloads that
        # opted in via ``per_task_series``) are int-keyed like census.
        self.task_executions = _int_keys(data.get("task_executions", {}))

    def __len__(self):
        return len(getattr(self, "time_ms", ()))

    def as_dict(self):
        """Plain-dict export, mirroring ``MetricsSeries.as_dict``."""
        data = dict(self._data)
        if self.task_executions:
            data["task_executions"] = {
                tid: list(v) for tid, v in self.task_executions.items()
            }
        data["census"] = {tid: list(v) for tid, v in self.census.items()}
        return data


def _int_keys(mapping):
    """Undo JSON's str-keying of int-keyed dicts (census, per-task stats)."""
    restored = {}
    for key, value in mapping.items():
        if isinstance(key, str):
            try:
                key = int(key)
            except ValueError:
                pass
        restored[key] = value
    return restored


def encode_result(descriptor, result, key=None):
    """JSON-friendly record for one finished cell."""
    return {
        "key": key if key is not None else descriptor.key(),
        "model": result.model,
        "seed": result.seed,
        "faults": result.faults,
        "row": result.as_row(),
        "app_stats": result.app_stats,
        "noc_stats": result.noc_stats,
        "total_switches": result.total_switches,
        "series": (
            result.series.as_dict() if result.series is not None else None
        ),
    }


def decode_result(record):
    """Rebuild a :class:`RunResult` from a stored record.

    Scalar row fields are restored verbatim (JSON round-trips Python
    ints and floats exactly), so table rows built from cached cells are
    bit-identical to freshly computed ones.
    """
    row = record["row"]
    app_stats = dict(record["app_stats"])
    if "executions_by_task" in app_stats:
        app_stats["executions_by_task"] = _int_keys(
            app_stats["executions_by_task"]
        )
    series = record.get("series")
    return RunResult(
        model=row["model"],
        seed=row["seed"],
        faults=row["faults"],
        settling_time_ms=row["settling_time_ms"],
        settled_performance=row["settled_performance"],
        recovery_time_ms=row["recovery_time_ms"],
        recovered_performance=row["recovered_performance"],
        series=StoredSeries(series) if series is not None else None,
        app_stats=app_stats,
        noc_stats=dict(record["noc_stats"]),
        total_switches=row["total_switches"],
        scenario=row.get("scenario"),
        throttle_events=row.get("throttle_events", 0),
        autonomous_recoveries=row.get("autonomous_recoveries", 0),
        deadlock_drops=row.get("deadlock_drops", 0),
        governor=row.get("governor"),
        workload=row.get("workload"),
    )


def record_satisfies(record, descriptor):
    """True when a stored record is usable for ``descriptor``.

    A record without a series does not satisfy a descriptor that asks
    for one (``keep_series`` is not part of the key).  Shared between
    the store's own cache checks and cross-campaign dedup lookups.
    """
    if record is None:
        return False
    if descriptor.keep_series and record.get("series") is None:
        return False
    return True


class ResultStore:
    """Keyed, append-only store of finished campaign cells.

    ``worker=K`` opens the store in shard mode: reads still merge every
    stream, but appends go to this worker's private
    ``results.worker-K.jsonl`` so concurrent workers never share a write
    handle.
    """

    def __init__(self, directory, worker=None):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, RESULTS_FILE)
        self.worker = worker
        self.write_path = (
            self.path if worker is None
            else os.path.join(directory, worker_results_file(worker))
        )
        self._records = {}
        self._handle = None
        #: Stream files scanned since open (the memoisation invariant:
        #: this never grows after ``__init__``).
        self.scans = 0
        self._load()

    def _load(self):
        for path in [self.path] + worker_files(self.directory):
            if os.path.exists(path):
                self._scan_file(path)

    def _scan_file(self, path):
        """Fold one JSONL stream into the memoised record map."""
        self.scans += 1
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn final line from an interrupted append
                if not isinstance(record, dict):
                    continue  # valid JSON, but not a record
                key = record.get("key")
                if key:
                    self._records[key] = record

    def __len__(self):
        return len(self._records)

    def __contains__(self, key):
        return key in self._records

    def keys(self):
        """Memoised set view of the completed cell keys (no file access:
        the streams were scanned once, at open)."""
        return self._records.keys()

    def get(self, key):
        """The raw stored record for ``key`` (or None)."""
        return self._records.get(key)

    def has_result(self, descriptor, key=None):
        """True when a usable cached result exists for ``descriptor``.

        A record without a series does not satisfy a descriptor that
        asks for one (``keep_series`` is not part of the key).  Pass a
        precomputed ``key`` to skip re-hashing the descriptor.
        """
        record = self._records.get(
            key if key is not None else descriptor.key()
        )
        return record_satisfies(record, descriptor)

    def load_result(self, descriptor, key=None):
        """The cached :class:`RunResult` for ``descriptor``."""
        return decode_result(
            self._records[key if key is not None else descriptor.key()]
        )

    def save_record(self, record):
        """Append one raw record line (canonical form) and flush.

        The path dedup copies and gc rewrites go through: the line
        written is byte-identical to what any other store writes for the
        same record.
        """
        if not record.get("key"):
            raise ValueError("store records need a non-empty 'key'")
        if self._handle is None:
            self._handle = open(self.write_path, "a")
        self._handle.write(encode_line(record))
        self._handle.write("\n")
        self._handle.flush()
        self._records[record["key"]] = record
        return record

    def save_result(self, descriptor, result, key=None):
        """Append one finished cell and flush (the resume checkpoint)."""
        return self.save_record(encode_result(descriptor, result, key=key))

    def reconcile(self):
        """Fold every worker stream into ``results.jsonl`` and drop them.

        Lock-free: complete lines are appended verbatim (byte-identical)
        and keyed records make any racy duplicate merely self-superseding.
        Each stream is re-read until its size is stable, so a worker that
        finished flushing moments ago loses nothing — but reconcile is a
        *post-fleet* operation: rows a still-running worker appends after
        the final read are dropped with its stream.  Losing such a row
        never corrupts data (results are deterministic; a later resume
        simply re-executes the cell), it only discards work.  ``campaign
        gc --apply`` runs this too.  Returns the number of lines folded.
        """
        paths = worker_files(self.directory)
        if not paths:
            return 0
        self.close()
        folded = 0
        with open(self.path, "a") as out:
            for path in paths:
                consumed = 0
                while True:
                    with open(path, "rb") as handle:
                        handle.seek(consumed)
                        data = handle.read()
                    progressed = 0
                    for line in data.splitlines(keepends=True):
                        if not line.endswith(b"\n"):
                            break  # torn tail: an append still in flight
                        progressed += len(line)
                        if not line.strip():
                            continue
                        try:
                            record = json.loads(line.decode("utf-8"))
                        except (ValueError, UnicodeDecodeError):
                            continue
                        if not isinstance(record, dict) or not record.get(
                                "key"):
                            continue
                        out.write(line.decode("utf-8"))
                        folded += 1
                    consumed += progressed
                    if not progressed:
                        break  # size stable (or only a torn tail left)
                    out.flush()
                os.remove(path)
            out.flush()
        return folded

    def write_spec(self, spec):
        """Record provenance: the spec that last wrote to this store.

        Atomic (write-then-replace) because concurrent worker shards all
        record the same provenance at startup.
        """
        path = os.path.join(self.directory, SPEC_FILE)
        tmp = "{}.tmp.{}".format(path, os.getpid())
        with open(tmp, "w") as handle:
            json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def close(self):
        """Close the append handle (records stay loaded)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
