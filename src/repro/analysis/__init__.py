"""Analysis toolkit: spatial maps, latency statistics and data export.

The paper's experiments are evaluated through the time series of Figure 4
and the quartile tables; this package adds the inspection tools a user of
the platform needs beyond those headline artefacts:

* :mod:`repro.analysis.heatmap` — ASCII spatial maps of the grid (task
  topology, activity, temperature, queue depth, failures) at any instant;
* :mod:`repro.analysis.latency` — streaming packet-latency statistics
  (mean, quantiles, histogram) collected per task;
* :mod:`repro.analysis.export` — CSV/JSON export of metric series and
  batch results for external plotting.
"""

from repro.analysis.export import (
    results_to_csv,
    results_to_json,
    series_to_csv,
)
from repro.analysis.heatmap import (
    activity_map,
    render_grid,
    task_map,
    temperature_map,
)
from repro.analysis.latency import LatencyCollector, LatencyStats

__all__ = [
    "LatencyCollector",
    "LatencyStats",
    "activity_map",
    "render_grid",
    "results_to_csv",
    "results_to_json",
    "series_to_csv",
    "task_map",
    "temperature_map",
]
