"""Integrated information transfer model (Figure 1 class 2).

"Integrated information transfer [adds] information exchange between
individuals to response threshold" (paper §II-A).  On top of the leaky
stimulus-threshold machinery of :class:`ResponseThresholdModel`, each tick
the node reads the neighbour-task monitor (the sideband between adjacent
AIMs) and applies inhibition to the stimulus of every task a neighbour is
already performing: a nestmate visibly working task *T* is information that
*T*'s demand is being met nearby, so the local individual needs a stronger
stimulus before it also takes *T* up.  This spreads providers apart
spatially instead of clumping them on the same corridor.
"""

from repro.core.models.base import FACTORS
from repro.core.models.response_threshold import ResponseThresholdModel


class InformationTransferModel(ResponseThresholdModel):
    """Response thresholds + neighbour-task inhibition.

    Parameters
    ----------
    neighbor_inhibition:
        Inhibition applied per neighbouring provider per tick.
    """

    name = "information_transfer"
    model_number = 2
    factors = frozenset(
        {FACTORS.STIMULUS, FACTORS.TASK_NEEDS, FACTORS.NESTMATES,
         FACTORS.INNATE_THRESHOLD, FACTORS.GENES}
    )

    def __init__(self, task_ids, threshold_low=12, threshold_high=36,
                 leak_per_tick=1, neighbor_inhibition=1):
        super().__init__(
            task_ids,
            threshold_low=threshold_low,
            threshold_high=threshold_high,
            leak_per_tick=leak_per_tick,
        )
        if neighbor_inhibition < 0:
            raise ValueError("neighbor_inhibition must be >= 0")
        self.neighbor_inhibition = neighbor_inhibition

    def on_tick(self, aim, now):
        """Leak stimulus, then apply neighbour-provider inhibition."""
        super().on_tick(aim, now)
        if self.neighbor_inhibition <= 0:
            return
        neighbor_tasks = aim.monitors.read("neighbor_tasks")
        for task in neighbor_tasks.values():
            if task is None:
                continue
            key = "task-{}".format(task)
            unit = self.pathway.thresholds.get(key)
            if unit is not None:
                unit.inhibit(amount=self.neighbor_inhibition)
