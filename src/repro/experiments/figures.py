"""Figure 4 re-generator.

Figure 4 shows, for 5-fault and 42-fault injections and each of the three
models, two time-series panels over 0–1000 ms: application throughput
(nodes active) and the task distribution (nodes per task, whose settled
levels are the ≈ 25/75/25 of the 1:3:1 census).  ``figure4`` runs the six
simulations and returns the series; ``render_series`` draws any series as
an ASCII strip chart so the benches can display the reproduced shapes in a
terminal.
"""

from repro.core.models.registry import resolve_model_name

#: The paper's two fault scenarios for Figure 4.
FIGURE4_FAULTS = (5, 42)
FIGURE4_MODELS = ("none", "network_interaction", "foraging_for_work")


def figure4(config=None, seed=42, faults=FIGURE4_FAULTS,
            models=FIGURE4_MODELS, processes=None, store=None):
    """Run the Figure 4 scenarios (as a campaign under the hood).

    Returns ``{fault_count: {model: RunResult}}`` with full series kept,
    keyed by the model names *as passed* (aliases preserved).  ``store``
    (a directory path) checkpoints the six runs and skips completed
    ones on re-runs; ``processes`` fans them out across workers.
    """
    # Imported lazily: repro.campaign.paper imports this module's
    # constants at load time.
    from repro.campaign.executor import run_campaign
    from repro.campaign.paper import figure4_data, figure4_spec

    spec = figure4_spec(
        seed=seed, config=config, faults=faults, models=models
    )
    report = run_campaign(spec, store=store, processes=processes)
    canonical = figure4_data(report)
    requested = {model: resolve_model_name(model) for model in models}
    return {
        fault_count: {
            model: canonical[fault_count][requested[model]]
            for model in models
        }
        for fault_count in faults
    }


def render_series(times_ms, values, height=8, width=72, title="",
                  marker="*"):
    """ASCII strip chart of one time series."""
    if not values:
        return "(empty series: {})".format(title)
    lo = min(values)
    hi = max(values)
    span = (hi - lo) or 1.0
    # Downsample columns.
    columns = []
    n = len(values)
    for c in range(width):
        i = int(c * n / width)
        columns.append(values[i])
    grid = [[" "] * width for _ in range(height)]
    for c, value in enumerate(columns):
        row = int((value - lo) / span * (height - 1))
        grid[height - 1 - row][c] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append("{:>7.1f} +{}".format(hi, "-" * width))
    for row in grid:
        lines.append("        |{}".format("".join(row)))
    lines.append("{:>7.1f} +{}".format(lo, "-" * width))
    lines.append(
        "         t: {:.0f} .. {:.0f} ms".format(times_ms[0], times_ms[-1])
    )
    return "\n".join(lines)


def render_figure4(data, metric="active_nodes"):
    """Render the whole figure as text panels, paper layout."""
    blocks = []
    for fault_count in sorted(data):
        for model, result in data[fault_count].items():
            series = result.series
            blocks.append(
                render_series(
                    series.time_ms,
                    getattr(series, metric),
                    title="[{} faults] {} - {}".format(
                        fault_count, model, metric
                    ),
                )
            )
            census_lines = [
                "[{} faults] {} - census per task:".format(fault_count, model)
            ]
            for task_id, counts in sorted(series.census.items()):
                tail = counts[-5:]
                census_lines.append(
                    "  task {}: start={} end={} (last 5: {})".format(
                        task_id,
                        counts[0] if counts else "-",
                        counts[-1] if counts else "-",
                        tail,
                    )
                )
            blocks.append("\n".join(census_lines))
    return "\n\n".join(blocks)
