"""Initial task mappings.

The paper's experiments start "from a random task-mapping" — every node gets
a task drawn with probability proportional to the graph's 1:3:1 weights, so
the realised census fluctuates run to run (that fluctuation is part of what
the intelligence models then optimise away).  Two further mappings support
ablations: an exactly-proportional shuffled mapping and a clustered
heuristic placement.
"""


def random_mapping(node_ids, weights, rng):
    """Weighted-random task per node (the paper's initial condition).

    Parameters
    ----------
    node_ids:
        Iterable of node ids to map.
    weights:
        Mapping task id -> relative weight (e.g. ``{1: 1, 2: 3, 3: 1}``).
    rng:
        A ``random.Random``-compatible stream.

    Returns a dict node id -> task id.
    """
    tasks, task_weights = _unpack_weights(weights)
    return {
        node: rng.choices(tasks, weights=task_weights, k=1)[0]
        for node in node_ids
    }


def balanced_mapping(node_ids, weights, rng):
    """Exactly weight-proportional census, randomly placed.

    Used by the mapping ablation: removes the census noise of
    :func:`random_mapping` while keeping placement random, isolating how
    much of the intelligence models' advantage comes from census repair
    versus spatial reorganisation.
    """
    nodes = list(node_ids)
    tasks, task_weights = _unpack_weights(weights)
    total_weight = sum(task_weights)
    assignment = []
    remainders = []
    assigned = 0
    for task, weight in zip(tasks, task_weights):
        exact = len(nodes) * weight / total_weight
        count = int(exact)
        assignment.extend([task] * count)
        assigned += count
        remainders.append((exact - count, task))
    remainders.sort(reverse=True)
    for _frac, task in remainders[: len(nodes) - assigned]:
        assignment.append(task)
    rng.shuffle(assignment)
    return dict(zip(nodes, assignment))


def clustered_mapping(topology, weights, rng=None):
    """Deterministic clustered placement (heuristic ablation).

    Tasks are laid out in contiguous column bands proportional to their
    weights — sources on the West edge, sinks on the East — approximating a
    designer's pipeline floorplan.  ``rng`` is accepted for interface
    uniformity but unused.
    """
    tasks, task_weights = _unpack_weights(weights)
    total_weight = sum(task_weights)
    mapping = {}
    boundaries = []
    acc = 0.0
    for weight in task_weights:
        acc += topology.width * weight / total_weight
        boundaries.append(acc)
    for node in topology.node_ids():
        x, _y = topology.coords(node)
        for task, boundary in zip(tasks, boundaries):
            if x < boundary or boundary == boundaries[-1]:
                mapping[node] = task
                break
    return mapping


def census(mapping):
    """Task census of a mapping: task id -> node count."""
    counts = {}
    for task in mapping.values():
        counts[task] = counts.get(task, 0) + 1
    return counts


def _unpack_weights(weights):
    if not weights:
        raise ValueError("weights must not be empty")
    tasks = sorted(weights)
    task_weights = [weights[t] for t in tasks]
    if any(w < 0 for w in task_weights) or sum(task_weights) <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    return tasks, task_weights
