"""Tests for impulse lines and spike/binary conversion."""

import pytest

from repro.core.spikes import ImpulseLine, SpikeIntegrator, VectorToSpikes


class TestImpulseLine:
    def test_fire_reaches_all_listeners(self):
        line = ImpulseLine("x")
        seen = []
        line.connect(lambda p: seen.append(("a", p)))
        line.connect(lambda p: seen.append(("b", p)))
        line.fire(42)
        assert seen == [("a", 42), ("b", 42)]

    def test_fire_counts(self):
        line = ImpulseLine("x")
        line.fire()
        line.fire()
        assert line.fires == 2

    def test_disconnect(self):
        line = ImpulseLine("x")
        seen = []
        listener = lambda p: seen.append(p)
        line.connect(listener)
        line.disconnect(listener)
        line.fire(1)
        assert seen == []

    def test_non_callable_listener_rejected(self):
        with pytest.raises(TypeError):
            ImpulseLine("x").connect("not-callable")

    def test_connect_chains(self):
        line = ImpulseLine("x")
        assert line.connect(lambda p: None) is line


class TestSpikeIntegrator:
    def test_counts_spikes(self):
        integrator = SpikeIntegrator()
        for _ in range(5):
            integrator.spike()
        assert integrator.count == 5

    def test_destructive_read(self):
        integrator = SpikeIntegrator(clear_on_read=True)
        integrator.spike()
        assert integrator.read() == 1
        assert integrator.read() == 0

    def test_non_destructive_read(self):
        integrator = SpikeIntegrator(clear_on_read=False)
        integrator.spike()
        assert integrator.read() == 1
        assert integrator.read() == 1

    def test_connects_to_line(self):
        line = ImpulseLine("x")
        integrator = SpikeIntegrator()
        line.connect(integrator.spike)
        line.fire()
        line.fire()
        assert integrator.count == 2


class TestVectorToSpikes:
    def test_emits_value_as_burst(self):
        line = ImpulseLine("out")
        converter = VectorToSpikes(line)
        assert converter.emit(5) == 5
        assert line.fires == 5

    def test_burst_capped(self):
        line = ImpulseLine("out")
        converter = VectorToSpikes(line, max_burst=3)
        assert converter.emit(100) == 3

    def test_negative_value_emits_nothing(self):
        line = ImpulseLine("out")
        assert VectorToSpikes(line).emit(-4) == 0

    def test_roundtrip_with_integrator(self):
        line = ImpulseLine("loop")
        integrator = SpikeIntegrator()
        line.connect(integrator.spike)
        VectorToSpikes(line).emit(7)
        assert integrator.read() == 7

    def test_invalid_max_burst(self):
        with pytest.raises(ValueError):
            VectorToSpikes(ImpulseLine("x"), max_burst=0)
