PYTHON ?= python

# Tier-1 test suite (the CI gate).
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Microbenchmarks + short sweep; exits non-zero if the gated benchmark
# (test_small_platform_run) regresses >25% against BENCH_micro.json.
bench:
	$(PYTHON) -m benchmarks.harness --micro

# Refresh the checked-in perf baseline after an intentional change.
bench-baseline:
	$(PYTHON) -m benchmarks.harness --micro --update-baseline

.PHONY: test bench bench-baseline
