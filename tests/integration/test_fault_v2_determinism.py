"""Fault-taxonomy-v2 determinism pins.

Two properties guard the new fault kinds (degraded links, corrupting
links, controller attach-point failures, hazard-rate storms):

* **bit-identical repeats** — every new kind, alone and composed, must
  reproduce the identical row, statistics and metrics series when run
  twice at a fixed seed (same contract the express hop engine and the
  campaign store are held to);
* **v1 conservation** — scenarios (and legacy fault counts) that avoid
  the new kinds must produce byte-identical stored records and mint the
  exact store keys the PR 3 engine minted, which is pinned here by
  hand-rolled replicas of the PR 3 canonicalisation and key recipes.
"""

import hashlib
import json

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.spec import HASH_SCHEMA_VERSION, CampaignSpec, RunDescriptor
from repro.campaign.store import encode_result
from repro.experiments.runner import run_single
from repro.platform.config import PlatformConfig
from repro.platform.scenario import FaultScenario

_CONFIG = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)

#: One scenario per new fault kind, plus a composition of all four.
V2_SCENARIOS = {
    "link_degrade": FaultScenario(
        name="degrade-det",
        events=(
            {"at_us": 40_000, "kind": "link_degrade", "count": 3,
             "factor": 6.0, "duration_us": 30_000},
        ),
    ),
    "corrupt": FaultScenario(
        name="corrupt-det",
        events=(
            {"at_us": 40_000, "kind": "corrupt", "count": 4,
             "duration_us": 40_000},
        ),
    ),
    "controller": FaultScenario(
        name="controller-det",
        events=(
            {"at_us": 40_000, "kind": "controller", "count": 2,
             "duration_us": 30_000},
        ),
    ),
    "storm": FaultScenario(
        name="storm-det",
        events=(
            {"at_us": 30_000, "kind": "node", "count": 1,
             "hazard_per_us": 0.00008, "horizon_us": 100_000,
             "duration_us": 8_000},
        ),
    ),
    "composed": FaultScenario(
        name="v2-composed",
        events=(
            {"at_us": 30_000, "kind": "link_degrade", "count": 2,
             "factor": 4, "duration_us": 20_000},
            {"at_us": 35_000, "kind": "corrupt", "count": 2,
             "duration_us": 25_000},
            {"at_us": 40_000, "kind": "controller", "count": 1,
             "duration_us": 20_000},
            {"at_us": 25_000, "kind": "link", "count": 1,
             "hazard_per_us": 0.00005, "horizon_us": 90_000,
             "duration_us": 6_000},
        ),
    ),
}


@pytest.mark.parametrize("kind", sorted(V2_SCENARIOS))
@pytest.mark.parametrize("model", ("none", "foraging_for_work"))
def test_new_kinds_are_bit_identical_across_repeats(kind, model):
    scenario = V2_SCENARIOS[kind]
    first = run_single(
        model, seed=21, config=_CONFIG, scenario=scenario, keep_series=True
    )
    second = run_single(
        model, seed=21, config=_CONFIG, scenario=scenario, keep_series=True
    )
    assert first.as_row() == second.as_row()
    assert first.noc_stats == second.noc_stats
    assert first.app_stats == second.app_stats
    assert first.series.as_dict() == second.series.as_dict()
    # The whole stored record — the bytes a campaign store would keep —
    # is identical too.
    descriptor = RunDescriptor(
        model, 21, 0, _CONFIG, keep_series=True, scenario=scenario
    )
    blob = lambda result: json.dumps(  # noqa: E731
        encode_result(descriptor, result), sort_keys=True
    )
    assert blob(first) == blob(second)


def test_v2_scenarios_actually_fire():
    """The determinism fixtures must exercise their kind, not no-op."""
    from repro.platform.centurion import CenturionPlatform

    injected = {}
    for kind in ("link_degrade", "corrupt", "controller", "storm"):
        platform = CenturionPlatform(_CONFIG, model_name="none", seed=21)
        platform.inject_scenario(V2_SCENARIOS[kind])
        platform.run()
        injected[kind] = platform
    assert injected["link_degrade"].faults.degraded_victims
    assert injected["corrupt"].faults.corrupted_victims
    assert injected["corrupt"].network.stats.get("delivered_corrupted", 0) > 0
    assert injected["controller"].faults.controller_victims
    assert injected["storm"].faults.victims  # storm killed nodes
    # Every transient recovered by the horizon.
    for kind, platform in injected.items():
        assert platform.faults.recovered, kind


# -- v1 conservation --------------------------------------------------------

#: The exact event-field set the PR 3 schema canonicalised.  If this
#: test ever needs updating because a *new* field leaked into v1
#: canonical dicts, stored scenario keys have been silently invalidated.
V1_FIELDS = (
    "kind", "count", "victims", "pattern", "row", "column", "region",
    "center", "radius", "duration_us", "repeats", "period_us",
)

_V1_DEFAULTS = {
    "kind": "node", "count": None, "victims": None, "pattern": "uniform",
    "row": None, "column": None, "region": None, "center": None,
    "radius": 1, "duration_us": None, "repeats": 1, "period_us": None,
}


def _v1_canonical_event(**fields):
    """The PR 3 canonical dict recipe, replicated by hand."""
    data = {"at_us": fields.pop("at_us")}
    for name in V1_FIELDS:
        data[name] = fields.pop(name, _V1_DEFAULTS[name])
    assert not fields
    return data


#: The exact config-field set PR 3 keys hashed (every pre-dynamics
#: ``PlatformConfig`` field).  If this list ever needs a new entry to
#: make the replica test pass, a post-v1 field has leaked into
#: canonical dicts and every stored key has been silently invalidated.
V1_CONFIG_FIELDS = (
    "width", "height", "flit_time_us", "wire_latency_us",
    "router_latency_us", "packet_flits", "deadlock_wait_limit_us",
    "max_reroutes", "recent_queue_depth", "routing_mode", "fast_path",
    "queue_capacity", "service_jitter", "overflow_hold_us", "fork_width",
    "generation_period_us", "source_service_us", "branch_service_us",
    "sink_service_us", "packet_deadline_us", "multicast_fork",
    "aim_tick_us", "ni_threshold", "ffw_timeout_us",
    "ffw_deadline_margin_us", "initial_mapping", "metrics_window_us",
    "horizon_us", "fault_time_us",
)


def _v1_config_dict(config):
    """The PR 3 config-payload recipe, replicated by hand."""
    return {name: getattr(config, name) for name in V1_CONFIG_FIELDS}


V1_SCENARIO = FaultScenario(
    name="pre-v2",
    events=(
        {"at_us": 60_000, "count": 3},
        {"at_us": 60_000, "count": 2, "pattern": "row", "row": 1,
         "duration_us": 20_000},
        {"at_us": 70_000, "kind": "link", "victims": [[0, 1]],
         "repeats": 2, "period_us": 15_000, "duration_us": 5_000},
    ),
)


def test_v1_scenario_canonical_bytes_unchanged():
    expected = {
        "name": "pre-v2",
        "events": [
            _v1_canonical_event(at_us=60_000, count=3),
            _v1_canonical_event(
                at_us=60_000, count=2, pattern="row", row=1,
                duration_us=20_000,
            ),
            _v1_canonical_event(
                at_us=70_000, kind="link", victims=[[0, 1]], repeats=2,
                period_us=15_000, duration_us=5_000,
            ),
        ],
    }
    assert V1_SCENARIO.canonical() == expected
    blob = json.dumps(expected, sort_keys=True, separators=(",", ":"))
    assert V1_SCENARIO.key() == hashlib.sha256(
        blob.encode("utf-8")
    ).hexdigest()


def test_v1_scenario_cell_key_replicates_pr3_recipe():
    descriptor = RunDescriptor(
        "ffw", 7, 0, _CONFIG, scenario=V1_SCENARIO
    )
    payload = {
        "schema": HASH_SCHEMA_VERSION,
        "model": "foraging_for_work",
        "seed": 7,
        "faults": 0,
        "metric": "joins",
        "config": _v1_config_dict(_CONFIG),
        "scenario": V1_SCENARIO.canonical(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert descriptor.key() == hashlib.sha256(
        blob.encode("utf-8")
    ).hexdigest()


def test_v2_fields_mint_distinct_keys():
    base = FaultScenario(
        name="k", events=({"at_us": 1_000, "kind": "link", "count": 1},)
    )
    degrade = FaultScenario(
        name="k", events=(
            {"at_us": 1_000, "kind": "link_degrade", "count": 1,
             "factor": 2},
        ),
    )
    degrade_harder = FaultScenario(
        name="k", events=(
            {"at_us": 1_000, "kind": "link_degrade", "count": 1,
             "factor": 3},
        ),
    )
    storm = FaultScenario(
        name="k", events=(
            {"at_us": 1_000, "kind": "link", "count": 1,
             "hazard_per_us": 0.001, "horizon_us": 5_000},
        ),
    )
    keys = {s.key() for s in (base, degrade, degrade_harder, storm)}
    assert len(keys) == 4


def test_legacy_run_records_carry_no_v2_surface():
    """A v1 run's stored record exposes exactly the PR 3 key set."""
    result = run_single(
        "none", seed=11, faults=3, config=_CONFIG, keep_series=True
    )
    record = encode_result(
        RunDescriptor("none", 11, 3, _CONFIG, keep_series=True), result
    )
    assert sorted(record["noc_stats"]) == sorted(
        ("sent", "delivered", "dropped_deadlock", "dropped_no_provider",
         "dropped_fault", "reroutes", "hops")
    )
    assert "corrupted_deliveries" not in record["series"]
    assert sorted(record["series"]) == sorted(
        ("time_ms", "active_nodes", "executions", "sink_executions",
         "joins", "task_switches", "alive_nodes", "census")
    )


def test_v2_scenario_campaign_cold_warm_fresh_identical(tmp_path):
    spec = CampaignSpec(
        name="v2-campaign-det",
        models=("none",),
        seeds=(21, 22),
        fault_counts=(),
        scenarios=(V2_SCENARIOS["composed"],),
        config=_CONFIG,
    )
    cold = run_campaign(spec, store=str(tmp_path), processes=2)
    warm = run_campaign(spec, store=str(tmp_path), processes=2)
    fresh = run_campaign(spec, processes=0)
    assert warm.executed == 0
    rows = [r.as_row() for r in cold.results]
    assert rows == [r.as_row() for r in warm.results]
    assert rows == [r.as_row() for r in fresh.results]
    assert all(row["scenario"] == "v2-composed" for row in rows)
