"""Constant-memory streaming aggregation over campaign roots.

The paper's claims live in aggregate tables (mean settling/recovery per
model × fault condition), but :mod:`repro.analysis.export` and the table
builders operate on in-memory result lists — unusable against a
sweep-scale store root (~10⁶ cells, series attached).  This module
aggregates *rows as they stream* off
:func:`repro.campaign.rows.iter_merged_rows`: memory is O(groups), never
O(rows) — no list of rows exists anywhere in the aggregation path.

Each row lands in one group keyed by **model × scenario-family ×
workload** (:func:`group_key`): the scenario-family is the scenario name
for scenario-driven rows and ``faults=N`` for legacy uniform bursts, the
workload is the declarative spec name or ``-`` for the legacy fork-join
application.  Per group, every metric column keeps a
:class:`StreamStats` — count, Welford mean/variance, exact min/max and a
bounded :class:`StreamingHistogram` quantile sketch (Ben-Haim/Yom-Tov
style centroid merging: exact below ``max_bins`` samples, bounded-error
interpolation beyond) — and the closed-loop dynamics counters
(``throttle_events``, ``autonomous_recoveries``, ``deadlock_drops``) are
summed, surfacing in summaries only when non-zero, mirroring the row
contract.

The result, a :class:`RootAggregate`, is what ``campaign report``
renders (:mod:`repro.analysis.report`) and what cross-campaign
:func:`~repro.analysis.report.compare` diffs.
"""

import bisect
import os

from repro.campaign.index import campaign_dirs
from repro.campaign.rows import iter_merged_rows

#: Scalar row columns aggregated per group (makespan/latency-style
#: summaries: the settling/recovery clocks, the throughput levels and
#: the reconfiguration volume).
METRIC_COLUMNS = (
    "settling_time_ms",
    "settled_performance",
    "recovery_time_ms",
    "recovered_performance",
    "total_switches",
)

#: Only-when-nonzero dynamics counters (summed, never sketched).
DYNAMICS_COLUMNS = (
    "throttle_events",
    "autonomous_recoveries",
    "deadlock_drops",
)

#: Quantiles reported by every summary.
QUANTILES = (0.5, 0.95, 0.99)


class StreamingHistogram:
    """Bounded quantile sketch (centroid-merging streaming histogram).

    Maintains at most ``max_bins`` ``(value, count)`` centroids sorted
    by value; adding a sample inserts a unit centroid and, past the
    bound, merges the closest adjacent pair (count-weighted mean).
    Below ``max_bins`` distinct values the sketch is *exact*: every
    sample is its own centroid and :meth:`quantile` interpolates order
    statistics directly.  Beyond, error is bounded by the largest merged
    gap — the Ben-Haim/Yom-Tov construction.  Deterministic for a given
    insertion order, so repeated aggregation of the same root yields
    bit-identical summaries.
    """

    def __init__(self, max_bins=64):
        if max_bins < 2:
            raise ValueError("a quantile sketch needs at least 2 bins")
        self.max_bins = max_bins
        self.count = 0
        self._values = []
        self._counts = []

    def add(self, value):
        """Fold one sample into the sketch."""
        value = float(value)
        self.count += 1
        index = bisect.bisect_left(self._values, value)
        if index < len(self._values) and self._values[index] == value:
            self._counts[index] += 1
            return
        self._values.insert(index, value)
        self._counts.insert(index, 1)
        if len(self._values) > self.max_bins:
            self._merge_closest()

    def _merge_closest(self):
        """Merge the closest adjacent centroid pair (weighted mean)."""
        gaps = self._values
        best = min(
            range(len(gaps) - 1), key=lambda i: gaps[i + 1] - gaps[i]
        )
        ca, cb = self._counts[best], self._counts[best + 1]
        merged = ca + cb
        self._values[best] = (
            self._values[best] * ca + self._values[best + 1] * cb
        ) / merged
        self._counts[best] = merged
        del self._values[best + 1]
        del self._counts[best + 1]

    def quantile(self, fraction):
        """Approximate quantile via midpoint-rank interpolation.

        Each centroid's mass is centred on its cumulative midpoint;
        target ranks between midpoints interpolate linearly, and ranks
        outside the first/last midpoint clamp to the extreme centroids
        — so the estimate always lies within the observed value range.
        Returns ``None`` on an empty sketch.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.count == 0:
            return None
        target = fraction * self.count
        cumulative = 0.0
        previous_mid = None
        previous_value = None
        for value, count in zip(self._values, self._counts):
            mid = cumulative + count / 2.0
            if target <= mid:
                if previous_mid is None:
                    return value
                span = mid - previous_mid
                weight = (target - previous_mid) / span if span else 0.0
                return previous_value + weight * (value - previous_value)
            cumulative += count
            previous_mid = mid
            previous_value = value
        return self._values[-1]

    def __len__(self):
        return len(self._values)


class StreamStats:
    """Streaming summary of one metric column (O(1) memory).

    Count, Welford mean/variance, exact min/max, and a
    :class:`StreamingHistogram` for the :data:`QUANTILES`.
    """

    def __init__(self, max_bins=64):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = None
        self.maximum = None
        self.sketch = StreamingHistogram(max_bins=max_bins)

    def add(self, value):
        """Fold one sample in."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self.sketch.add(value)

    @property
    def variance(self):
        """Sample variance (0 below two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def quantile(self, fraction):
        """Sketched quantile (``None`` when empty)."""
        return self.sketch.quantile(fraction)

    def summary(self):
        """JSON-friendly dict (count/mean/min/max + quantiles)."""
        data = {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        for fraction in QUANTILES:
            data["p{:g}".format(fraction * 100)] = self.quantile(fraction)
        return data


def group_key(row):
    """The ``(model, family, workload)`` group of one scalar row.

    The *family* collapses the fault axis the way the paper's tables
    do: scenario-driven rows group under their scenario name, legacy
    uniform bursts under ``faults=N``.  The workload is the declarative
    spec name, ``-`` for the legacy fork-join application.
    """
    scenario = row.get("scenario")
    family = (
        scenario if scenario is not None
        else "faults={}".format(row.get("faults", 0))
    )
    return (str(row.get("model", "?")), family, row.get("workload") or "-")


class GroupStats:
    """One group's streaming state: metric stats + dynamics sums."""

    def __init__(self, max_bins=64):
        self.rows = 0
        self.metrics = {
            column: StreamStats(max_bins=max_bins)
            for column in METRIC_COLUMNS
        }
        self.dynamics = dict.fromkeys(DYNAMICS_COLUMNS, 0)
        self.campaigns = set()

    def add_row(self, row, campaign=None):
        """Fold one scalar row into the group."""
        self.rows += 1
        if campaign is not None:
            self.campaigns.add(campaign)
        for column, stats in self.metrics.items():
            value = row.get(column)
            if value is not None:
                stats.add(value)
        for column in DYNAMICS_COLUMNS:
            self.dynamics[column] += int(row.get(column, 0) or 0)

    def summary(self):
        """JSON-friendly dict; dynamics counters only when non-zero."""
        data = {
            "rows": self.rows,
            "campaigns": sorted(self.campaigns),
            "metrics": {
                column: stats.summary()
                for column, stats in self.metrics.items()
            },
        }
        dynamics = {
            column: total
            for column, total in self.dynamics.items() if total
        }
        if dynamics:
            data["dynamics"] = dynamics
        return data


class RootAggregate:
    """Streaming aggregate of a campaign root (O(groups) memory).

    Built row-by-row via :meth:`add_row` — callers hand it an iterator,
    never a list — and read back as sorted per-group summaries, per-axis
    rollups and heatmap matrices.
    """

    def __init__(self, max_bins=64):
        self.max_bins = max_bins
        self.groups = {}
        self.rows = 0
        self.campaigns = set()

    def add_row(self, row, campaign=None):
        """Fold one scalar row into its group."""
        key = group_key(row)
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = GroupStats(max_bins=self.max_bins)
        group.add_row(row, campaign=campaign)
        self.rows += 1
        if campaign is not None:
            self.campaigns.add(campaign)

    def consume(self, triples):
        """Drain a ``(campaign, key, row)`` iterator; returns self."""
        for campaign, _key, row in triples:
            self.add_row(row, campaign=campaign)
        return self

    def group_items(self):
        """``(key, GroupStats)`` pairs in sorted key order."""
        return sorted(self.groups.items())

    def axis_values(self, axis):
        """Sorted distinct values of one group axis (0=model,
        1=family, 2=workload)."""
        return sorted({key[axis] for key in self.groups})

    def axis_rollup(self, axis):
        """Re-aggregate the groups' rows along one axis.

        Returns ``{axis value -> {"rows": n, "means": {metric: m}}}``
        where each mean is the row-count-weighted combination of the
        member groups' means — computed from the O(groups) state, not
        from rows.
        """
        rollup = {}
        for key, group in self.groups.items():
            entry = rollup.setdefault(
                key[axis],
                {"rows": 0, "sums": dict.fromkeys(METRIC_COLUMNS, 0.0)},
            )
            entry["rows"] += group.rows
            for column, stats in group.metrics.items():
                entry["sums"][column] += stats.mean * stats.count
        for entry in rollup.values():
            entry["means"] = {
                column: (total / entry["rows"] if entry["rows"] else None)
                for column, total in entry.pop("sums").items()
            }
        return rollup

    def matrix(self, metric, row_axis=0, col_axis=1):
        """``(row_labels, col_labels, cells)`` mean-matrix for a metric.

        ``cells[r][c]`` is the row-weighted mean of ``metric`` over the
        groups at that (row, column) coordinate, ``None`` where the
        grid has no cells — the heatmap-panel input.
        """
        row_labels = self.axis_values(row_axis)
        col_labels = self.axis_values(col_axis)
        sums = {}
        counts = {}
        for key, group in self.groups.items():
            coordinate = (key[row_axis], key[col_axis])
            stats = group.metrics[metric]
            sums[coordinate] = (
                sums.get(coordinate, 0.0) + stats.mean * stats.count
            )
            counts[coordinate] = counts.get(coordinate, 0) + stats.count
        cells = [
            [
                (sums[(r, c)] / counts[(r, c)]
                 if counts.get((r, c)) else None)
                for c in col_labels
            ]
            for r in row_labels
        ]
        return row_labels, col_labels, cells

    def summary(self):
        """JSON-friendly dump: totals plus sorted per-group summaries."""
        return {
            "rows": self.rows,
            "campaigns": sorted(self.campaigns),
            "groups": [
                {
                    "model": key[0],
                    "family": key[1],
                    "workload": key[2],
                    **group.summary(),
                }
                for key, group in self.group_items()
            ],
        }


def aggregate_dirs(dirs, max_bins=64):
    """Stream-aggregate explicit campaign directories."""
    return RootAggregate(max_bins=max_bins).consume(iter_merged_rows(dirs))


def aggregate_root(root, dirs=None, max_bins=64):
    """Stream-aggregate every campaign under a store root.

    ``dirs`` (explicit directories) restricts the pass; the default is
    every campaign directory under ``root`` in sorted name order.  Rows
    stream off :func:`repro.campaign.rows.iter_merged_rows` — the
    cross-campaign first-holder-wins merge — and memory stays O(groups)
    plus the iterator's key set.
    """
    if dirs is None:
        dirs = [os.path.join(root, name) for name in campaign_dirs(root)]
    return aggregate_dirs(dirs, max_bins=max_bins)
