"""Network-on-chip substrate.

A packet-granularity model of the Centurion NoC: an 8×16 mesh of five-port
wormhole routers (North/East/South/West + internal port to the processing
element) with a sixth Router Configuration Access Port (RCAP) for remote
reconfiguration, exactly the arrangement of Figure 2a of the paper.

Packets are *task-addressed*: a packet names the task that must consume it,
and the provider directory resolves which node currently performs that task
(minimised Manhattan distance, the paper's heuristic baseline).  Wormhole
transmission is modelled by per-link channel occupancy: a packet of ``n``
flits holds a link for ``n`` flit-times, later packets queue behind it.
"""

from repro.noc.deadlock import DeadlockRecovery
from repro.noc.link import Link
from repro.noc.packet import Packet, PacketStatus
from repro.noc.router import Port, Router, RouterConfig
from repro.noc.routing import ProviderDirectory, RoutingPolicy, XYRouting
from repro.noc.topology import MeshTopology
from repro.noc.network import Network

__all__ = [
    "DeadlockRecovery",
    "Link",
    "MeshTopology",
    "Network",
    "Packet",
    "PacketStatus",
    "Port",
    "ProviderDirectory",
    "Router",
    "RouterConfig",
    "RoutingPolicy",
    "XYRouting",
]
