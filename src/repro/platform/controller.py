"""The Experiment Controller.

Paper §III: "A larger processor, the Experiment Controller, is connected to
the NoC via the North ports of four of the (otherwise unconnected) routers
in the top row ... The experiment controller can also access the nodes
separately to the NoC via a dedicated debug interface.  This allows
experiment data to be downloaded and parameters to be set at runtime (e.g.
for fault injection) without interfering with the NoC traffic of active
experiments."

Accordingly this class has two faces:

* a NoC face — four attachment points on top-row North ports through which
  it can inject packets into the network (used by the injection examples
  and tests);
* a debug face — direct, zero-time access to any node for state readout,
  parameter upload (model/RCAP settings) and fault injection, which by
  construction does not touch the NoC.

Attach-point failures (fault taxonomy v2): each node is covered by its
nearest attach point (ties to the lower index), and severing an attach
point takes both faces down for the nodes it covers — packets can no
longer be injected through it, and the debug-face monitors/knobs for the
covered nodes go dark (:class:`ControllerDetachedError`) until the attach
point is restored.  Fault injection and recovery themselves are exempt:
they model physical faults striking the die, not controller commands, so
a scenario can keep evolving while the controller is partially blind.
"""


class ControllerDetachedError(RuntimeError):
    """A controller operation needed a severed attach point."""


class ExperimentController:
    """PC-side management processor for a Centurion platform.

    Parameters
    ----------
    platform:
        The :class:`~repro.platform.centurion.CenturionPlatform` to manage.
    attach_columns:
        Grid columns of the four top-row routers whose North ports carry
        the controller's NoC interfaces; defaults to four columns spread
        evenly across the top row.
    """

    def __init__(self, platform, attach_columns=None):
        self.platform = platform
        topology = platform.network.topology
        if attach_columns is None:
            quarter = max(1, topology.width // 4)
            attach_columns = tuple(
                min(topology.width - 1, quarter // 2 + i * quarter)
                for i in range(min(4, topology.width))
            )
        self.attach_points = tuple(
            topology.node_id(x, 0) for x in attach_columns
        )
        #: Indices of currently-severed attach points.
        self.severed = set()
        #: Per-node covering attach index: nearest attach column, ties to
        #: the lower index (precomputed once; the mesh never changes).
        self._covering = {
            node: min(
                range(len(self.attach_points)),
                key=lambda i: (
                    abs(
                        topology.coords(node)[0]
                        - topology.coords(self.attach_points[i])[0]
                    ),
                    i,
                ),
            )
            for node in topology.node_ids()
        }
        self.injected = 0
        self.faults_injected = []
        self.faults_recovered = []
        #: ``(time_us, attach_index)`` sever / restore logs.
        self.attach_severed_log = []
        self.attach_restored_log = []
        #: Broadcast-knob writes skipped because the target was dark.
        self.dark_skips = 0

    # -- NoC face --------------------------------------------------------------

    def inject_packet(self, packet, attach_index=0):
        """Inject a packet through one of the four North-port interfaces.

        A severed attach point cannot inject; the packet fails over to
        the next healthy interface (round-robin), and with every attach
        point severed the controller is fully detached from the NoC —
        :class:`ControllerDetachedError`.
        """
        count = len(self.attach_points)
        for probe in range(count):
            index = (attach_index + probe) % count
            if index not in self.severed:
                self.injected += 1
                return self.platform.network.send(
                    packet, self.attach_points[index]
                )
        raise ControllerDetachedError(
            "all controller attach points are severed"
        )

    # -- attach-point fabric ---------------------------------------------------

    def attach_index_of(self, node_id):
        """Index of the attach point covering ``node_id``."""
        return self._covering[node_id]

    def healthy_attach_indices(self):
        """Attach-point indices that are not currently severed."""
        return [
            i for i in range(len(self.attach_points))
            if i not in self.severed
        ]

    def is_dark(self, node_id):
        """True while the attach point covering ``node_id`` is severed."""
        return self._covering[node_id] in self.severed

    def sever_attach(self, index):
        """Sever one attach point: its covered nodes go dark.

        The NoC interface at that attach point stops injecting and the
        debug-face monitors/knobs for every covered node raise
        :class:`ControllerDetachedError` until :meth:`restore_attach`.
        """
        if not 0 <= index < len(self.attach_points):
            raise ValueError(
                "attach index {} outside 0..{}".format(
                    index, len(self.attach_points) - 1
                )
            )
        if index in self.severed:
            return
        self.severed.add(index)
        platform = self.platform
        self.attach_severed_log.append((platform.sim.now, index))
        if platform.trace is not None:
            platform.trace.record(
                platform.sim.now, "controller_severed", attach=index,
                node=self.attach_points[index],
            )

    def restore_attach(self, index):
        """Re-attach a severed attach point; its nodes light back up."""
        if index not in self.severed:
            return
        self.severed.discard(index)
        platform = self.platform
        self.attach_restored_log.append((platform.sim.now, index))
        if platform.trace is not None:
            platform.trace.record(
                platform.sim.now, "controller_restored", attach=index,
                node=self.attach_points[index],
            )

    def _require_light(self, node_id):
        if self._covering[node_id] in self.severed:
            raise ControllerDetachedError(
                "node {} is dark: controller attach point {} is "
                "severed".format(node_id, self._covering[node_id])
            )

    # -- debug face -------------------------------------------------------------

    def debug_read(self, node_id):
        """Out-of-band node state snapshot (no NoC traffic).

        Dark nodes (covered by a severed attach point) cannot be read:
        :class:`ControllerDetachedError`.
        """
        self._require_light(node_id)
        pe = self.platform.pes[node_id]
        router = self.platform.network.router(node_id)
        return {
            "node": node_id,
            "task": pe.task_id,
            "halted": pe.halted,
            "queue_length": len(pe.queue),
            "completions": pe.completions,
            "task_switches": pe.task_switches,
            "frequency_mhz": pe.frequency.current_mhz,
            "temperature_c": pe.thermal.temperature(self.platform.sim.now),
            "router_failed": router.failed,
            "packets_forwarded": router.packets_forwarded,
            "packets_sunk": router.packets_sunk,
        }

    def debug_set_task(self, node_id, task_id):
        """Force a node's task assignment (experiment setup).

        The task-select knob of a dark node is unreachable:
        :class:`ControllerDetachedError`.
        """
        self._require_light(node_id)
        self.platform.pes[node_id].set_task(task_id, reason="controller")

    def upload_model_params(self, params, node_ids=None):
        """Retune hosted models at runtime via the RCAP path.

        A broadcast (default) silently skips dark nodes — they are
        unreachable, exactly like a real partial-fabric outage — and
        counts the skips in :attr:`dark_skips`; an explicitly targeted
        dark node raises :class:`ControllerDetachedError` instead.
        Returns the node ids actually written.
        """
        broadcast = node_ids is None
        targets = node_ids if not broadcast else list(self.platform.aims)
        written = []
        for node_id in targets:
            if self.is_dark(node_id):
                if not broadcast:
                    self._require_light(node_id)
                self.dark_skips += 1
                continue
            self.platform.aims[node_id].rcap_write_params(params)
            written.append(node_id)
        return written

    def rcap_write(self, node_id, settings):
        """Remote router reconfiguration (dark nodes are unreachable)."""
        self._require_light(node_id)
        self.platform.network.router(node_id).rcap_write(settings)

    # -- fault injection ------------------------------------------------------------

    def inject_fault(self, node_id):
        """Kill one node: processor halts, router dies, AIM silenced.

        Uses the debug interface, so injection itself produces no NoC
        traffic — matching the paper's setup.
        """
        platform = self.platform
        pe = platform.pes[node_id]
        if pe.halted:
            return
        pe.halt()
        aim = platform.aims.get(node_id)
        if aim is not None:
            aim.shutdown()
        platform.network.fail_node(node_id)
        self.faults_injected.append((platform.sim.now, node_id))
        dynamics = getattr(platform, "dynamics", None)
        if dynamics is not None:
            dynamics.note_node_killed(node_id)

    def recover_node(self, node_id):
        """Un-fail one node: processor restarts blank, router revives.

        The transient-fault back edge.  Like injection this rides the
        debug interface — recovery itself produces no NoC traffic.  The
        recovered node holds no task until the intelligence layer (or a
        :meth:`debug_set_task`) re-allocates work to it.
        """
        platform = self.platform
        pe = platform.pes[node_id]
        if not pe.halted:
            return
        pe.restart()
        aim = platform.aims.get(node_id)
        if aim is not None:
            aim.restart()
        platform.network.recover_node(node_id)
        self.faults_recovered.append((platform.sim.now, node_id))
        dynamics = getattr(platform, "dynamics", None)
        if dynamics is not None:
            dynamics.note_node_recovered(node_id)

    def alive_nodes(self):
        """Node ids that have not been fault-injected."""
        return [
            node_id
            for node_id, pe in self.platform.pes.items()
            if not pe.halted
        ]

    def __repr__(self):
        return (
            "ExperimentController(attach={}, severed={}, faults={}, "
            "recovered={})".format(
                self.attach_points, sorted(self.severed),
                len(self.faults_injected), len(self.faults_recovered),
            )
        )
