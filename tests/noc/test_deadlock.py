"""Tests for the deadlock recovery mechanism."""

import pytest

from repro.noc.deadlock import DeadlockRecovery


def test_waits_below_limit_pass():
    recovery = DeadlockRecovery(wait_limit=100)
    assert not recovery.should_drop(100)
    assert not recovery.should_drop(0)


def test_waits_above_limit_drop():
    recovery = DeadlockRecovery(wait_limit=100)
    assert recovery.should_drop(101)


def test_disabled_never_drops():
    recovery = DeadlockRecovery(wait_limit=None)
    assert not recovery.should_drop(10**9)


def test_drop_accounting():
    recovery = DeadlockRecovery(wait_limit=1)
    recovery.record_drop(now=500)
    recovery.record_drop(now=900)
    assert recovery.drops == 2
    assert recovery.last_drop_time == 900


def test_non_positive_limit_rejected():
    with pytest.raises(ValueError):
        DeadlockRecovery(wait_limit=0)
