"""Declarative fault scenarios.

The seed reproduced one fault shape — "N random nodes fail permanently at
one instant" (paper §IV-B).  A :class:`FaultScenario` generalises that into
a JSON-loadable composition of :class:`FaultEvent` injections:

* **permanent node kills** — the paper's shape (``kind="node"``);
* **link failures** — a mesh edge dies and routing detours around it
  (``kind="link"``);
* **transient / intermittent faults** — ``duration_us`` recovers the
  victims after an outage, ``repeats``/``period_us`` make the outage
  strike again and again;
* **timed waves** — ``repeats`` occurrences spaced ``period_us`` apart
  with no ``duration_us``: k fresh victims per wave instead of one burst;
* **spatial patterns** — victims drawn from a row, column, rectangular
  region or Manhattan neighbourhood instead of uniformly from the mesh.

The :class:`~repro.platform.faults.FaultInjector` interprets scenarios at
runtime; campaigns carry them as a first-class axis whose content hash
(:meth:`FaultScenario.key`) joins the cell key, so stores invalidate
exactly when the injected faults change.

Event schema (JSON)
-------------------
Every event is a dict; unknown keys are rejected.  Fields:

``kind``
    ``"node"`` (default) or ``"link"``.
``at_us``
    Injection time of the first occurrence (µs, required).
``count``
    Victims per occurrence.  Drawn from the pattern's candidate set at
    injection time (faults hit the *running* system).  ``None`` with a
    spatial pattern means "the whole set".
``victims``
    Pinned victim list instead of a draw: node ids, or ``[src, dst]``
    pairs for links.  When ``count`` is also given the two must agree.
``pattern`` / ``row`` / ``column`` / ``region`` / ``center`` / ``radius``
    Victim-selection shape for node events: ``"uniform"`` (default),
    ``"row"`` (needs ``row``), ``"column"`` (needs ``column``),
    ``"region"`` (needs ``region = [x0, y0, x1, y1]``, inclusive) or
    ``"neighborhood"`` (needs ``center``; ``radius`` defaults to 1).
``duration_us``
    Outage length; victims recover that long after each occurrence.
    ``None`` means permanent.
``repeats`` / ``period_us``
    Total number of occurrences (default 1) and their spacing.
"""

import dataclasses
import hashlib
import json

NODE = "node"
LINK = "link"
KINDS = (NODE, LINK)

UNIFORM = "uniform"
PATTERNS = (UNIFORM, "row", "column", "region", "neighborhood")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One injection (possibly repeating) within a scenario."""

    at_us: int
    kind: str = NODE
    count: int = None
    victims: tuple = None
    pattern: str = UNIFORM
    row: int = None
    column: int = None
    region: tuple = None
    center: int = None
    radius: int = 1
    duration_us: int = None
    repeats: int = 1
    period_us: int = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError("unknown fault kind {!r}".format(self.kind))
        if self.at_us < 0:
            raise ValueError("fault time must be >= 0")
        if self.pattern not in PATTERNS:
            raise ValueError(
                "unknown victim pattern {!r}; known: {}".format(
                    self.pattern, PATTERNS
                )
            )
        if self.kind == LINK and self.pattern != UNIFORM:
            raise ValueError(
                "link events support only uniform draws or pinned victims"
            )
        if self.victims is not None:
            if self.pattern != UNIFORM:
                raise ValueError(
                    "pinned victims cannot be combined with a spatial "
                    "pattern (the pattern would be silently ignored)"
                )
            victims = tuple(
                tuple(v) if isinstance(v, (list, tuple)) else v
                for v in self.victims
            )
            object.__setattr__(self, "victims", victims)
            if self.count is not None and self.count != len(victims):
                raise ValueError(
                    "count={} disagrees with {} pinned victims".format(
                        self.count, len(victims)
                    )
                )
            if self.kind == LINK and any(
                not (isinstance(v, tuple) and len(v) == 2) for v in victims
            ):
                raise ValueError(
                    "link victims must be [src, dst] endpoint pairs"
                )
        else:
            if self.count is None and self.pattern == UNIFORM:
                raise ValueError(
                    "uniform events need a count (or pinned victims)"
                )
            if self.count is not None and self.count <= 0:
                # A zero-count event injects nothing but would still set
                # the settling/recovery boundary; omit it instead.
                raise ValueError(
                    "fault count must be positive (drop the event for "
                    "a no-op)"
                )
        needs = {
            "row": self.row,
            "column": self.column,
            "region": self.region,
            "neighborhood": self.center,
        }
        if self.pattern in needs and needs[self.pattern] is None:
            raise ValueError(
                "pattern {!r} needs its {!r} parameter".format(
                    self.pattern,
                    "center" if self.pattern == "neighborhood"
                    else self.pattern,
                )
            )
        if self.region is not None:
            region = tuple(int(c) for c in self.region)
            if len(region) != 4:
                raise ValueError("region must be [x0, y0, x1, y1]")
            object.__setattr__(self, "region", region)
        if self.radius < 0:
            raise ValueError("neighbourhood radius must be >= 0")
        if self.duration_us is not None and self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.repeats > 1 and (
            self.period_us is None or self.period_us <= 0
        ):
            raise ValueError("repeating events need a positive period_us")

    # -- timing ------------------------------------------------------------

    def occurrence_times(self):
        """Injection timestamps of every occurrence, in order."""
        if self.repeats == 1:
            return [self.at_us]
        return [
            self.at_us + i * self.period_us for i in range(self.repeats)
        ]

    def nominal_victims(self):
        """Victims per occurrence as declared (None = pattern-sized)."""
        if self.victims is not None:
            return len(self.victims)
        return self.count

    # -- serialisation -----------------------------------------------------

    #: Field-name -> default for every optional field, derived from the
    #: dataclass itself (below the class body) so a field added later is
    #: automatically serialised and content-hashed.
    _DEFAULTS = None

    def to_dict(self):
        """Compact JSON dict: defaulted fields are omitted."""
        data = {"at_us": self.at_us}
        for field, default in self._DEFAULTS.items():
            value = getattr(self, field)
            if value != default:
                if field in ("victims", "region"):
                    value = [
                        list(v) if isinstance(v, tuple) else v
                        for v in value
                    ]
                data[field] = value
        return data

    def canonical(self):
        """Fully explicit dict (every field) for content hashing."""
        data = {"at_us": self.at_us}
        for field in self._DEFAULTS:
            value = getattr(self, field)
            if field in ("victims", "region") and value is not None:
                value = [
                    list(v) if isinstance(v, tuple) else v for v in value
                ]
            data[field] = value
        return data

    @classmethod
    def from_dict(cls, data):
        """Build an event from a plain dict; unknown keys are rejected."""
        data = dict(data)
        if "at_us" not in data:
            raise ValueError("fault event needs 'at_us'")
        kwargs = {"at_us": int(data.pop("at_us"))}
        for field in cls._DEFAULTS:
            if field in data:
                kwargs[field] = data.pop(field)
        if data:
            raise ValueError(
                "unknown fault event keys: {}".format(sorted(data))
            )
        return cls(**kwargs)


FaultEvent._DEFAULTS = {
    field.name: field.default
    for field in dataclasses.fields(FaultEvent)
    if field.name != "at_us"
}


@dataclasses.dataclass(frozen=True)
class FaultScenario:
    """A named, ordered composition of fault events."""

    name: str
    events: tuple = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("fault scenario needs a name")
        events = tuple(
            event if isinstance(event, FaultEvent)
            else FaultEvent.from_dict(event)
            for event in self.events
        )
        object.__setattr__(self, "events", events)

    # -- queries -----------------------------------------------------------

    def first_fault_us(self):
        """Time of the earliest injection, or ``None`` with no events."""
        if not self.events:
            return None
        return min(event.at_us for event in self.events)

    def occurrence_count(self):
        """Total scheduled occurrences across all events."""
        return sum(event.repeats for event in self.events)

    # -- serialisation -----------------------------------------------------

    def to_dict(self):
        """JSON-friendly dict; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }

    def canonical(self):
        """Fully explicit dict used for content hashing."""
        return {
            "name": self.name,
            "events": [event.canonical() for event in self.events],
        }

    def key(self):
        """Stable SHA-256 content hash of the scenario."""
        blob = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data):
        """Build a scenario from a plain dict (e.g. a loaded JSON file)."""
        data = dict(data)
        name = data.pop("name", None)
        if not name:
            raise ValueError("fault scenario needs a 'name'")
        events = data.pop("events", ())
        if data:
            raise ValueError(
                "unknown fault scenario keys: {}".format(sorted(data))
            )
        return cls(name=name, events=tuple(events))

    @classmethod
    def from_json_file(cls, path):
        """Load a scenario from a JSON file."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def burst(cls, count, at_us, name=None):
        """The legacy shape: ``count`` uniform permanent kills at one
        instant.  Interpreting this scenario draws from the same RNG
        stream in the same order as the historic ``FaultInjector``
        fast path, so results are bit-identical — including
        ``count=0``, which is the legacy no-op (an empty scenario, so
        it sets no settling/recovery boundary).
        """
        events = (
            (FaultEvent(at_us=at_us, count=count),) if count else ()
        )
        return cls(
            name=name or "burst-{}x@{}".format(count, at_us),
            events=events,
        )

    def __repr__(self):
        return "FaultScenario({!r}, {} events)".format(
            self.name, len(self.events)
        )
