"""Tests for the node watchdog."""

import pytest

from repro.node.watchdog import Watchdog
from repro.noc.network import Network
from repro.noc.topology import MeshTopology
from repro.node.processor import ProcessingElement
from repro.sim.engine import Simulator


def test_fresh_watchdog_not_expired():
    dog = Watchdog(timeout_us=100)
    assert not dog.expired(100)


def test_expiry_after_silence():
    dog = Watchdog(timeout_us=100)
    assert dog.expired(101)


def test_kick_defers_expiry():
    dog = Watchdog(timeout_us=100)
    dog.kick(now=90)
    assert not dog.expired(150)
    assert dog.expired(191)


def test_kick_counting():
    dog = Watchdog()
    dog.kick(1)
    dog.kick(2)
    assert dog.kicks == 2
    assert dog.last_kick == 2


def test_check_and_count_increments_only_when_expired():
    dog = Watchdog(timeout_us=100)
    assert not dog.check_and_count(50)
    assert dog.check_and_count(200)
    assert dog.expirations == 1


def test_invalid_timeout_rejected():
    with pytest.raises(ValueError):
        Watchdog(timeout_us=0)


# -- processing-element integration pins ------------------------------------


def _pe(sim, node=0, **kwargs):
    network = Network(sim, topology=MeshTopology(2, 2))
    return ProcessingElement(sim, node, network, **kwargs)


def test_pe_boot_kicks_watchdog_at_construction_time():
    """A PE built at nonzero sim time must not be born already expired.

    The watchdog window opens when the node comes up — without the boot
    kick, ``last_kick`` stays at the epoch and any node constructed (or
    checked) later than the timeout reads as dead on arrival.
    """
    sim = Simulator(seed=0)
    sim.run_until(50_000)
    pe = _pe(sim, watchdog_timeout_us=10_000)
    assert pe.watchdog.last_kick == 50_000
    assert not pe.watchdog.expired(60_000)
    assert pe.watchdog.expired(60_001)


def test_idle_pe_expires_after_boot_plus_timeout():
    """An idle node's watchdog expires exactly one timeout after boot."""
    sim = Simulator(seed=0)
    pe = _pe(sim, watchdog_timeout_us=10_000)
    assert not pe.watchdog.expired(10_000)
    assert pe.watchdog.expired(10_001)


def test_pe_restart_kicks_watchdog():
    """A freshly-recovered node reads healthy, not instantly expired.

    Without the restart kick, a node that sat halted for longer than
    its timeout comes back with a stale ``last_kick`` and the watchdog
    observation path would immediately re-fire on a live node.
    """
    sim = Simulator(seed=0)
    pe = _pe(sim, watchdog_timeout_us=10_000)
    pe.halt()
    sim.run_until(40_000)
    pe.restart()
    assert pe.watchdog.last_kick == 40_000
    assert not pe.watchdog.expired(50_000)
    assert pe.watchdog.kicks == 2  # boot + restart


def test_pe_watchdog_timeout_is_configurable():
    sim = Simulator(seed=0)
    pe = _pe(sim, watchdog_timeout_us=123)
    assert pe.watchdog.timeout_us == 123
