"""Table II reproduction: recovery time and performance after faults.

Paper (DATE 2020, Table II, 100 runs, faults at 500 ms, Q2 values):

    Faults:                0     2     4     8    16    32
    No Intelligence      100    98    96    93    84    69  %
    Network Interaction  108   104   102    97    85    64  %
    Foraging For Work    129   125   124   118   107    89  %

Reproduction targets: performance degrades with fault count for every
model; FFW holds the highest relative performance at every fault count;
NI loses its edge and crosses below the baseline at large fault counts
(it cannot re-recruit source nodes, and its switching flux follows the
packet mix rather than the damage).
"""

import pytest

from benchmarks.harness import TABLE2_FAULTS, gather_faulted, runs_per_cell
from repro.experiments.tables import format_table, table2
from repro.platform.config import PlatformConfig


@pytest.fixture(scope="module")
def table2_rows():
    results = gather_faulted(PlatformConfig(), fault_counts=TABLE2_FAULTS)
    return table2(results)


def test_table2_reproduction(benchmark, table2_rows):
    rows = benchmark.pedantic(lambda: table2_rows, rounds=1, iterations=1)
    print()
    print("Table II - recovery time (ms) and relative performance after")
    print("fault injection at 500 ms, {} runs per cell (paper: 100):".format(
        runs_per_cell()))
    print(format_table(rows, "table2"))

    cell = {(r["model"], r["faults"]): r for r in rows}

    # Normalisation: baseline at zero faults is the 100 % reference.
    assert cell[("none", 0)]["perf_q2"] == pytest.approx(100.0)

    # Degradation with fault count: strict across the full span, with
    # sampling slack in the middle (small fault counts barely dent a
    # 128-node machine, so medians over tens of runs wobble).
    for model in ("none", "network_interaction", "foraging_for_work"):
        perfs = [cell[(model, f)]["perf_q2"] for f in TABLE2_FAULTS]
        assert perfs[-1] < perfs[0], (
            "{}: no degradation across fault span".format(model)
        )
        for perf in perfs[1:]:
            assert perf <= perfs[0] * 1.15, (
                "{}: faulted performance above the unfaulted level".format(
                    model)
            )

    # FFW wins at every fault count (the paper's headline).
    for faults in TABLE2_FAULTS:
        assert (
            cell[("foraging_for_work", faults)]["perf_q2"]
            >= cell[("none", faults)]["perf_q2"]
        )
        assert (
            cell[("foraging_for_work", faults)]["perf_q2"]
            >= cell[("network_interaction", faults)]["perf_q2"]
        )

    # FFW's zero-fault advantage is in the paper's ballpark (129 %).
    assert cell[("foraging_for_work", 0)]["perf_q2"] > 110.0

    # The NI crossover: at the largest fault count NI is no better than
    # the baseline (paper: 64 % vs 69 %).
    assert (
        cell[("network_interaction", 32)]["perf_q2"]
        <= cell[("none", 32)]["perf_q2"] * 1.05
    )
