"""CSV/JSON export of metric series and batch results.

Everything the experiments produce is plain Python data; these helpers
flatten it into the two formats external plotting pipelines consume.  CSV
writing uses the standard library ``csv`` module; JSON export is plain
``json`` with deterministic key ordering, so exported artefacts diff
cleanly across runs.

Row schema
----------
Every exporter here flattens :class:`~repro.experiments.runner.RunResult`
objects through :meth:`~repro.experiments.runner.RunResult.as_row`, the
**scalar row** that also lives under ``"row"`` in campaign store records
(:func:`repro.campaign.store.encode_result`) — one schema end to end,
whether a result came from a live run or streamed off a store:

``model``, ``seed``, ``faults``
    The cell coordinates (``faults`` is the number of node kills
    actually injected, also for scenario-driven runs).
``settling_time_ms``, ``settled_performance``
    Cold-start settling clock and the throughput level it reached.
``recovery_time_ms``, ``recovered_performance``
    Post-fault recovery clock and level (mirror the settled values on
    fault-free runs).
``total_switches``
    Intelligence-driven task switches over the run.
``scenario``, ``workload``, ``governor`` *(only when present)*
    Names of the fault scenario, declarative workload and DVFS governor
    driving the run; legacy runs omit the keys entirely so historic
    exports stay byte-identical.
``throttle_events``, ``autonomous_recoveries``, ``deadlock_drops``
    *(only when non-zero)* closed-loop dynamics counters.

``results_to_json`` entries add ``app_stats`` and ``noc_stats`` (plain
stat dicts) and — with ``include_series=True`` — ``series``, the full
:meth:`~repro.app.metrics.MetricsSeries.as_dict` time-series payload.
Campaign-shaped consumers that only need rows should prefer the
streaming surface (:mod:`repro.analysis.streaming` over
:func:`repro.campaign.rows.iter_merged_rows`) instead of materialised
result lists.
"""

import csv
import json


def series_to_csv(series, path):
    """Write a :class:`~repro.app.metrics.MetricsSeries` to CSV.

    One row per sampling window; census columns are expanded to
    ``census_task_<id>``.  Returns the number of data rows written.
    """
    census_columns = [
        "census_task_{}".format(task) for task in series.task_ids
    ]
    header = list(series.COLUMNS) + census_columns
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for i in range(len(series)):
            row = [getattr(series, column)[i] for column in series.COLUMNS]
            row += [series.census[task][i] for task in series.task_ids]
            writer.writerow(row)
    return len(series)


def results_to_csv(results, path):
    """Write :class:`RunResult` summaries to CSV (row schema above).

    ``results`` may be any iterable — rows are written as they arrive,
    one at a time.  The header is fixed by the *first* result's row (the
    only-when-present columns are uniform within one batch), so a lazily
    generated sweep streams straight to disk.  Returns the row count.
    """
    writer = None
    count = 0
    with open(path, "w", newline="") as handle:
        for result in results:
            row = result.as_row()
            if writer is None:
                writer = csv.DictWriter(handle, fieldnames=list(row))
                writer.writeheader()
            writer.writerow(row)
            count += 1
    if count == 0:
        raise ValueError("no results to export")
    return count


def results_to_json(results, path, include_series=False):
    """Write results (optionally with full series) to a JSON file.

    Each entry is the scalar row (schema above) plus ``app_stats`` and
    ``noc_stats``; ``include_series=True`` adds the full time series
    under ``series`` for results that kept one.  ``results`` may be any
    iterable of :class:`~repro.experiments.runner.RunResult`.  Values
    round-trip exactly (JSON preserves Python ints and floats), so a
    reloaded file compares equal to the original rows:

    >>> import os, tempfile
    >>> from repro.experiments.runner import RunResult
    >>> result = RunResult(
    ...     model="none", seed=7, faults=0, settling_time_ms=12.5,
    ...     settled_performance=3.25, recovery_time_ms=0.0,
    ...     recovered_performance=3.25, series=None,
    ...     app_stats={"joins": 42}, noc_stats={"delivered": 99},
    ...     total_switches=0)
    >>> path = os.path.join(tempfile.mkdtemp(), "results.json")
    >>> results_to_json([result], path)
    1
    >>> loaded = load_results_json(path)
    >>> loaded[0]["model"], loaded[0]["settled_performance"]
    ('none', 3.25)
    >>> {k: v for k, v in loaded[0].items()
    ...  if k not in ("app_stats", "noc_stats")} == result.as_row()
    True
    """
    payload = []
    for result in results:
        entry = result.as_row()
        entry["app_stats"] = result.app_stats
        entry["noc_stats"] = result.noc_stats
        if include_series and result.series is not None:
            entry["series"] = result.series.as_dict()
        payload.append(entry)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
    return len(payload)


def load_results_json(path):
    """Load a ``results_to_json`` file back as a list of row dicts.

    Inverse of :func:`results_to_json` (see its round-trip doctest);
    entries carry the scalar row schema plus ``app_stats``/``noc_stats``
    and, when exported with ``include_series=True``, ``series``.
    """
    with open(path) as handle:
        return json.load(handle)
