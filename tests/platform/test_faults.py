"""Tests for the fault injector."""

import pytest

from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


@pytest.fixture
def platform():
    return CenturionPlatform(PlatformConfig.small(), model_name="none",
                             seed=21)


def test_faults_land_at_scheduled_time(platform):
    platform.faults.schedule(3, at_us=50_000)
    platform.sim.run_until(49_999)
    assert len(platform.faults.victims) == 0
    platform.sim.run_until(50_000)
    assert len(platform.faults.victims) == 3


def test_victims_are_unique_and_halted(platform):
    platform.faults.schedule(5, at_us=10_000)
    platform.sim.run_until(20_000)
    victims = platform.faults.victims
    assert len(set(victims)) == 5
    assert all(platform.pes[v].halted for v in victims)


def test_victims_deterministic_per_seed():
    def victims_for(seed):
        p = CenturionPlatform(PlatformConfig.small(), model_name="none",
                              seed=seed)
        p.faults.schedule(4, at_us=10_000)
        p.sim.run_until(20_000)
        return p.faults.victims

    assert victims_for(3) == victims_for(3)
    assert victims_for(3) != victims_for(4)


def test_explicit_victims_pinned(platform):
    platform.faults.schedule(2, at_us=10_000, victims=[3, 7])
    platform.sim.run_until(20_000)
    assert platform.faults.victims == [3, 7]


def test_count_and_victims_must_agree(platform):
    with pytest.raises(ValueError):
        platform.faults.schedule(2, at_us=10_000, victims=[3, 7, 9])
    with pytest.raises(ValueError):
        platform.faults.schedule(4, at_us=10_000, victims=[3])
    # Nothing was scheduled by the rejected calls.
    assert platform.faults.scheduled == []


def test_scheduled_records_pinned_victims(platform):
    platform.faults.schedule(2, at_us=10_000, victims=[3, 7])
    platform.faults.schedule(1, at_us=20_000)
    assert platform.faults.scheduled == [
        (10_000, 2, (3, 7)),
        (20_000, 1, None),
    ]


def test_zero_faults_is_noop(platform):
    platform.faults.schedule(0, at_us=10_000)
    platform.sim.run_until(20_000)
    assert platform.faults.victims == []
    assert platform.faults.scheduled == []


def test_negative_count_rejected(platform):
    with pytest.raises(ValueError):
        platform.faults.schedule(-1, at_us=10_000)


def test_count_capped_at_alive_nodes(platform):
    platform.faults.schedule(999, at_us=10_000)
    platform.sim.run_until(20_000)
    assert len(platform.faults.victims) == 16


def test_fault_event_traced(platform):
    platform.faults.schedule(1, at_us=10_000)
    platform.sim.run_until(20_000)
    assert platform.trace.count("node_failed") == 1
