"""Tests for routing policies and the provider directory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.routing import (
    ProviderDirectory,
    RoutingPolicy,
    UnroutableError,
    XYRouting,
)
from repro.noc.topology import EAST, NORTH, SOUTH, WEST, MeshTopology


@pytest.fixture
def mesh():
    return MeshTopology(8, 8)


@pytest.fixture
def directory(mesh):
    return ProviderDirectory(mesh)


class TestProviderDirectory:
    def test_set_task_registers_provider(self, directory):
        directory.set_task(5, 2)
        assert directory.providers(2) == [5]
        assert directory.task_of(5) == 2

    def test_reassignment_moves_provider(self, directory):
        directory.set_task(5, 2)
        directory.set_task(5, 3)
        assert directory.providers(2) == []
        assert directory.providers(3) == [5]

    def test_set_same_task_is_noop_for_version(self, directory):
        directory.set_task(5, 2)
        version = directory.version
        directory.set_task(5, 2)
        assert directory.version == version

    def test_mark_failed_removes_from_providers(self, directory):
        directory.set_task(5, 2)
        directory.mark_failed(5)
        assert directory.providers(2) == []
        assert directory.is_failed(5)
        assert directory.task_of(5) is None

    def test_census(self, directory):
        for node, task in ((0, 1), (1, 2), (2, 2), (3, 3)):
            directory.set_task(node, task)
        assert directory.task_census() == {1: 1, 2: 2, 3: 1}

    def test_nearest_provider_minimises_manhattan(self, directory, mesh):
        directory.set_task(mesh.node_id(0, 0), 2)
        directory.set_task(mesh.node_id(4, 4), 2)
        origin = mesh.node_id(5, 5)
        assert directory.nearest_provider(origin, 2) == mesh.node_id(4, 4)

    def test_nearest_provider_tie_breaks_lowest_id(self, directory, mesh):
        left = mesh.node_id(2, 4)
        right = mesh.node_id(6, 4)
        directory.set_task(left, 2)
        directory.set_task(right, 2)
        origin = mesh.node_id(4, 4)
        assert directory.nearest_provider(origin, 2) == min(left, right)

    def test_nearest_provider_honours_exclude(self, directory, mesh):
        near = mesh.node_id(4, 4)
        far = mesh.node_id(0, 0)
        directory.set_task(near, 2)
        directory.set_task(far, 2)
        origin = mesh.node_id(5, 5)
        assert directory.nearest_provider(origin, 2, exclude={near}) == far

    def test_nearest_provider_none_when_absent(self, directory):
        assert directory.nearest_provider(0, 9) is None

    def test_ranked_cache_invalidated_by_updates(self, directory, mesh):
        directory.set_task(mesh.node_id(0, 0), 2)
        origin = mesh.node_id(5, 5)
        assert directory.nearest_provider(origin, 2) == mesh.node_id(0, 0)
        # A nearer provider appears; the cached ranking must refresh.
        directory.set_task(mesh.node_id(5, 4), 2)
        assert directory.nearest_provider(origin, 2) == mesh.node_id(5, 4)

    def test_ranked_cache_invalidated_by_failure(self, directory, mesh):
        near = mesh.node_id(5, 4)
        far = mesh.node_id(0, 0)
        directory.set_task(near, 2)
        directory.set_task(far, 2)
        origin = mesh.node_id(5, 5)
        assert directory.nearest_provider(origin, 2) == near
        directory.mark_failed(near)
        assert directory.nearest_provider(origin, 2) == far


class TestXYRouting:
    def test_x_resolved_first(self, mesh):
        xy = XYRouting(mesh)
        src = mesh.node_id(1, 1)
        dst = mesh.node_id(4, 5)
        assert xy.next_direction(src, dst) == EAST

    def test_then_y(self, mesh):
        xy = XYRouting(mesh)
        src = mesh.node_id(4, 1)
        dst = mesh.node_id(4, 5)
        assert xy.next_direction(src, dst) == SOUTH

    def test_north_and_west(self, mesh):
        xy = XYRouting(mesh)
        assert xy.next_direction(mesh.node_id(4, 4), mesh.node_id(2, 4)) == WEST
        assert xy.next_direction(mesh.node_id(4, 4), mesh.node_id(4, 2)) == NORTH

    def test_arrival_returns_none(self, mesh):
        xy = XYRouting(mesh)
        assert xy.next_direction(9, 9) is None


class TestRoutingPolicy:
    def test_healthy_mesh_uses_xy(self, mesh):
        policy = RoutingPolicy(mesh)
        src = mesh.node_id(0, 0)
        dst = mesh.node_id(3, 3)
        path = policy.path(src, dst)
        assert len(path) == mesh.manhattan(src, dst) + 1
        # XY: all east moves before south moves.
        xs = [mesh.coords(n)[0] for n in path]
        assert xs == sorted(xs)

    def test_detour_around_failed_router(self, mesh):
        policy = RoutingPolicy(mesh)
        src = mesh.node_id(0, 0)
        dst = mesh.node_id(4, 0)
        blocker = mesh.node_id(2, 0)
        policy.set_failed({blocker})
        path = policy.path(src, dst)
        assert blocker not in path
        assert path[0] == src and path[-1] == dst

    def test_failed_destination_unroutable(self, mesh):
        policy = RoutingPolicy(mesh)
        dead = mesh.node_id(3, 3)
        policy.set_failed({dead})
        with pytest.raises(UnroutableError):
            policy.next_direction(mesh.node_id(0, 0), dead)

    def test_disconnected_region_unroutable(self):
        mesh = MeshTopology(3, 1)  # a line: 0 - 1 - 2
        policy = RoutingPolicy(mesh)
        policy.set_failed({1})
        with pytest.raises(UnroutableError):
            policy.next_direction(0, 2)

    def test_clearing_faults_restores_xy(self, mesh):
        policy = RoutingPolicy(mesh)
        blocker = mesh.node_id(2, 0)
        policy.set_failed({blocker})
        policy.set_failed(set())
        path = policy.path(mesh.node_id(0, 0), mesh.node_id(4, 0))
        assert blocker in path  # straight line again

    def test_arrived_returns_none(self, mesh):
        policy = RoutingPolicy(mesh)
        assert policy.next_direction(5, 5) is None


class TestFailedLinks:
    def test_detour_around_failed_link(self, mesh):
        policy = RoutingPolicy(mesh)
        a, b = mesh.node_id(0, 0), mesh.node_id(1, 0)
        policy.set_failed_links({(a, b)})
        path = policy.path(a, mesh.node_id(4, 0))
        assert path[1] != b  # forced off the direct edge
        assert path[-1] == mesh.node_id(4, 0)

    def test_edge_normalisation_both_orders(self, mesh):
        policy = RoutingPolicy(mesh)
        a, b = mesh.node_id(1, 0), mesh.node_id(0, 0)
        policy.set_failed_links({(a, b)})  # high-low order
        assert not policy._edge_ok(b, a)
        assert not policy._edge_ok(a, b)

    def test_link_recovery_restores_xy(self, mesh):
        policy = RoutingPolicy(mesh)
        a, b = mesh.node_id(0, 0), mesh.node_id(1, 0)
        policy.set_failed_links({(a, b)})
        policy.set_failed_links(set())
        assert policy.path(a, mesh.node_id(4, 0))[1] == b

    def test_fully_cut_node_unroutable(self):
        mesh = MeshTopology(3, 1)  # a line: 0 - 1 - 2
        policy = RoutingPolicy(mesh)
        policy.set_failed_links({(0, 1)})
        with pytest.raises(UnroutableError):
            policy.next_direction(0, 2)

    def test_minimal_directions_avoid_failed_links(self, mesh):
        policy = RoutingPolicy(mesh)
        src = mesh.node_id(1, 1)
        dest = mesh.node_id(3, 3)
        east = mesh.node_id(2, 1)
        assert policy.minimal_directions(src, dest) == [EAST, SOUTH]
        policy.set_failed_links({(src, east)})
        assert policy.minimal_directions(src, dest) == [SOUTH]


@settings(max_examples=30)
@given(
    src=st.integers(min_value=0, max_value=63),
    dst=st.integers(min_value=0, max_value=63),
    faults=st.sets(st.integers(min_value=0, max_value=63), max_size=6),
)
def test_policy_paths_avoid_failed_nodes(src, dst, faults):
    """Whenever a path exists it must not cross failed routers."""
    mesh = MeshTopology(8, 8)
    faults = faults - {src, dst}
    policy = RoutingPolicy(mesh)
    policy.set_failed(faults)
    try:
        path = policy.path(src, dst)
    except UnroutableError:
        return  # disconnected is an acceptable outcome
    assert not (set(path) & faults)
    assert path[0] == src
    assert path[-1] == dst
    assert len(path) >= mesh.manhattan(src, dst) + 1


@settings(max_examples=30)
@given(
    src=st.integers(min_value=0, max_value=63),
    dst=st.integers(min_value=0, max_value=63),
    cuts=st.sets(st.integers(min_value=0, max_value=63), max_size=6),
)
def test_policy_paths_avoid_failed_links(src, dst, cuts):
    """Whenever a path exists it must not cross failed edges."""
    mesh = MeshTopology(8, 8)
    edges = set()
    for node in cuts:
        neighbor = mesh.neighbor(node, EAST) or mesh.neighbor(node, WEST)
        edges.add((min(node, neighbor), max(node, neighbor)))
    policy = RoutingPolicy(mesh)
    policy.set_failed_links(edges)
    try:
        path = policy.path(src, dst)
    except UnroutableError:
        return  # disconnected is an acceptable outcome
    hops = {
        (min(a, b), max(a, b)) for a, b in zip(path, path[1:])
    }
    assert not (hops & edges)
    assert path[0] == src
    assert path[-1] == dst
