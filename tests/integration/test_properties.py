"""System-level property tests (hypothesis).

These check invariants that must hold for *any* traffic pattern, provider
layout or fault set — the kind of guarantees a downstream user relies on
without reading the implementation.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.noc.network import Network
from repro.noc.packet import Packet, PacketStatus
from repro.noc.topology import MeshTopology
from repro.sim.engine import Simulator

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(
    provider_nodes=st.sets(
        st.integers(min_value=0, max_value=15), min_size=1, max_size=8
    ),
    sends=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),  # source node
            st.integers(min_value=1, max_value=3),   # task
        ),
        min_size=1,
        max_size=30,
    ),
    faults=st.sets(
        st.integers(min_value=0, max_value=15), max_size=4
    ),
)
def test_every_packet_reaches_a_terminal_state(provider_nodes, sends,
                                               faults):
    """After the queue drains, no packet is still 'in flight'."""
    sim = Simulator(seed=1)
    net = Network(sim, topology=MeshTopology(4, 4))
    sink_log = []
    net.set_deliver_handler(lambda pkt, node: sink_log.append((pkt, node)))
    for node in provider_nodes:
        net.directory.set_task(node, (node % 3) + 1)
    for node in faults:
        net.fail_node(node)
    packets = []
    for source, task in sends:
        packet = Packet(source, dest_task=task, created_at=sim.now)
        packets.append(packet)
        net.send(packet, source)
    sim.run_until(10**9)
    for packet in packets:
        assert packet.status != PacketStatus.IN_FLIGHT
    # Deliveries only ever land on live providers of the packet's task.
    for packet, node in sink_log:
        assert node not in faults
        assert net.directory.task_of(node) == packet.dest_task


@SETTINGS
@given(
    sink_events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # instance seq
            st.integers(min_value=0, max_value=2),  # branch
        ),
        max_size=40,
    )
)
def test_join_bookkeeping_invariants(sink_events):
    """Joins never exceed the number of fully-branched instances."""
    from repro.app.taskgraph import TASK_SINK, fork_join_graph
    from repro.app.workload import ForkJoinWorkload

    sim = Simulator(seed=1)
    workload = ForkJoinWorkload(sim, fork_join_graph())

    class FakePE:
        node_id = 9
        task_id = TASK_SINK

    pe = FakePE()
    seen = {}
    for seq, branch in sink_events:
        seen.setdefault(seq, set()).add(branch)
        packet = Packet(3, TASK_SINK, instance=(7, seq), branch=branch)
        workload.packets_after_execution(pe, packet)
    complete = sum(1 for branches in seen.values() if len(branches) == 3)
    assert workload.joins == complete
    assert workload.pending_join_count == sum(
        1 for branches in seen.values() if 0 < len(branches) < 3
    )


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_run_is_a_pure_function_of_seed(seed):
    """Identical seeds give identical runs, across separate builds."""
    from repro.platform.centurion import CenturionPlatform
    from repro.platform.config import PlatformConfig

    def signature():
        platform = CenturionPlatform(
            PlatformConfig.small(horizon_us=40_000),
            model_name="ffw",
            seed=seed,
        )
        platform.run()
        return (
            platform.workload.stats()["generated"],
            platform.workload.joins,
            dict(platform.network.stats),
        )

    assert signature() == signature()


@SETTINGS
@given(
    faults=st.sets(st.integers(min_value=0, max_value=15), max_size=10),
    seed=st.integers(min_value=0, max_value=100),
)
def test_census_never_counts_dead_nodes(faults, seed):
    from repro.platform.centurion import CenturionPlatform
    from repro.platform.config import PlatformConfig

    platform = CenturionPlatform(
        PlatformConfig.small(horizon_us=30_000, fault_time_us=10_000),
        model_name="none",
        seed=seed,
    )
    platform.inject_faults(len(faults), victims=sorted(faults))
    platform.run()
    census_total = sum(platform.task_census().values())
    assert census_total == 16 - len(faults)
