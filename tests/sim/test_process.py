"""Tests for periodic processes and delayed calls."""

import pytest

from repro.sim.process import PeriodicProcess, delayed_call


def test_ticks_at_fixed_period(sim):
    times = []
    process = PeriodicProcess(sim, 100, lambda p: times.append(sim.now))
    process.start()
    sim.run_until(350)
    assert times == [100, 200, 300]


def test_initial_delay_overrides_first_tick(sim):
    times = []
    process = PeriodicProcess(sim, 100, lambda p: times.append(sim.now))
    process.start(initial_delay=10)
    sim.run_until(250)
    assert times == [10, 110, 210]


def test_stop_halts_ticking(sim):
    times = []
    process = PeriodicProcess(sim, 100, lambda p: times.append(sim.now))
    process.start()
    sim.schedule(250, process.stop)
    sim.run_until(1000)
    assert times == [100, 200]


def test_stop_from_within_callback(sim):
    times = []

    def callback(process):
        times.append(sim.now)
        if len(times) == 2:
            process.stop()

    PeriodicProcess(sim, 50, callback).start()
    sim.run_until(1000)
    assert times == [50, 100]


def test_restart_realigns_phase(sim):
    times = []
    process = PeriodicProcess(sim, 100, lambda p: times.append(sim.now))
    process.start()
    sim.run_until(150)
    process.start()  # restart at t=150
    sim.run_until(400)
    assert times == [100, 250, 350]


def test_tick_counter(sim):
    process = PeriodicProcess(sim, 10, lambda p: None)
    process.start()
    sim.run_until(55)
    assert process.ticks == 5


def test_invalid_period_rejected(sim):
    with pytest.raises(ValueError):
        PeriodicProcess(sim, 0, lambda p: None)


def test_jitter_stays_within_bounds(sim):
    times = []
    rng = sim.rng.stream("jitter-test")
    process = PeriodicProcess(
        sim, 100, lambda p: times.append(sim.now), jitter_rng=rng, jitter=20
    )
    process.start()
    sim.run_until(2000)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert gaps, "expected several ticks"
    assert all(100 <= gap <= 120 for gap in gaps)


def test_running_property(sim):
    process = PeriodicProcess(sim, 100, lambda p: None)
    assert not process.running
    process.start()
    assert process.running
    process.stop()
    assert not process.running


def test_delayed_call_fires_once(sim):
    seen = []
    delayed_call(sim, 42, lambda: seen.append(sim.now))
    sim.run_until(1000)
    assert seen == [42]


def test_delayed_call_cancellable(sim):
    seen = []
    handle = delayed_call(sim, 42, lambda: seen.append(sim.now))
    handle.cancel()
    sim.run_until(1000)
    assert seen == []
