"""Fault tolerance on the full 128-core Centurion (the paper's headline).

Reproduces the Figure 4 scenario: the system settles from a random task
mapping, 42 nodes (one third of the machine) fail at 500 ms, and the
social-insect intelligence re-forms the task topology around the damage.
Compares Foraging-for-Work against the no-intelligence baseline and prints
ASCII strip charts of the two time series panels.

Run:  python examples/fault_tolerance.py        (about 10 s)
"""

from repro import CenturionPlatform, PlatformConfig
from repro.experiments.figures import render_series

FAULTS = 42
SEED = 2026


def run_model(model_name):
    platform = CenturionPlatform(
        PlatformConfig(), model_name=model_name, seed=SEED
    )
    platform.inject_faults(FAULTS)
    series = platform.run()
    return platform, series


def mean(values):
    return sum(values) / max(1, len(values))


def main():
    print("Injecting {} faults (1/3 of Centurion) at 500 ms...".format(
        FAULTS))
    for model_name in ("none", "foraging_for_work"):
        platform, series = run_model(model_name)
        pre = series.window_slice(300, 500)
        post = series.window_slice(800, 1000)
        pre_joins = mean([series.joins[i] for i in pre])
        post_joins = mean([series.joins[i] for i in post])
        print("\n=== model: {} ===".format(model_name))
        print(render_series(
            series.time_ms, series.active_nodes,
            title="Application throughput (nodes active)",
        ))
        print(render_series(
            series.time_ms, series.joins,
            title="Completed fork-join instances per 10 ms window",
        ))
        print("pre-fault joins/window : {:6.2f}".format(pre_joins))
        print("post-fault joins/window: {:6.2f}  ({:.0f}% retained)".format(
            post_joins, 100.0 * post_joins / max(pre_joins, 1e-9)))
        print("task switches          : {}".format(
            platform.total_task_switches()))
        print("final census           : {}".format(platform.task_census()))
        print("surviving nodes        : {}/128".format(
            len(platform.controller.alive_nodes())))


if __name__ == "__main__":
    main()
