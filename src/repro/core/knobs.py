"""Knobs — the actuating half of the Figure 2a surface.

"The intelligence module can also affect several aspects of the router and
processor, referred to as 'knobs'": task select, clock enable, reset and
node-level frequency scaling.  Each knob wraps the underlying action with
uniform ``set()`` semantics and an actuation counter, so experiments can
report how often each model pulled each lever.
"""


class Knob:
    """Base knob: counts actuations, delegates to ``_apply``."""

    def __init__(self, name):
        self.name = name
        self.actuations = 0

    def set(self, *args, **kwargs):
        """Actuate the knob (counted); returns the applied state."""
        self.actuations += 1
        return self._apply(*args, **kwargs)

    def _apply(self, *args, **kwargs):
        raise NotImplementedError

    def __repr__(self):
        return "{}(actuations={})".format(type(self).__name__, self.actuations)


class TaskSelectKnob(Knob):
    """"The task the processor node should be running"."""

    def __init__(self, pe, reason="aim"):
        super().__init__("task_select")
        self._pe = pe
        self.reason = reason

    def _apply(self, task_id):
        self._pe.set_task(task_id, reason=self.reason)
        return self._pe.task_id


class ClockEnableKnob(Knob):
    """"Clock Enable for the processor node"."""

    def __init__(self, pe):
        super().__init__("clock_enable")
        self._pe = pe

    def _apply(self, enabled):
        self._pe.set_clock_enabled(enabled)
        return self._pe.clock_enabled


class ResetKnob(Knob):
    """"Reset of the processor node"."""

    def __init__(self, pe):
        super().__init__("reset")
        self._pe = pe

    def _apply(self):
        self._pe.reset()
        return True


class FrequencyKnob(Knob):
    """"Node-level frequency scaling (10MHz - 300MHz)"."""

    def __init__(self, pe):
        super().__init__("frequency")
        self._pe = pe

    def _apply(self, mhz):
        return self._pe.frequency.set_frequency(mhz)


class RouterConfigKnob(Knob):
    """RCAP writes to the local router's settings."""

    def __init__(self, router):
        super().__init__("router_config")
        self._router = router

    def _apply(self, settings):
        self._router.rcap_write(settings)
        return self._router.rcap_read()


class KnobBank:
    """All knobs of one node, keyed by name."""

    def __init__(self, knobs):
        self._knobs = dict(knobs)

    def __getitem__(self, name):
        return self._knobs[name]

    def __contains__(self, name):
        return name in self._knobs

    def names(self):
        """Sorted knob names."""
        return sorted(self._knobs)

    def actuation_counts(self):
        """Mapping knob name -> number of actuations."""
        return {name: knob.actuations for name, knob in self._knobs.items()}


def standard_knob_bank(pe, router, reason="aim"):
    """Build the full Figure 2a knob set for one node."""
    return KnobBank(
        {
            "task_select": TaskSelectKnob(pe, reason=reason),
            "clock_enable": ClockEnableKnob(pe),
            "reset": ResetKnob(pe),
            "frequency": FrequencyKnob(pe),
            "router_config": RouterConfigKnob(router),
        }
    )
