"""Tests for the run harness (on the small fast config)."""

import pytest

from repro.experiments.runner import default_seeds, run_batch, run_single
from repro.platform.config import PlatformConfig


@pytest.fixture(scope="module")
def small_config():
    return PlatformConfig.small()


def test_run_single_populates_fields(small_config):
    result = run_single("none", seed=5, config=small_config)
    assert result.model == "none"
    assert result.seed == 5
    assert result.faults == 0
    assert result.settling_time_ms > 0
    assert result.settled_performance >= 0
    assert result.recovery_time_ms == 0.0
    assert result.recovered_performance == result.settled_performance
    assert result.series is not None
    assert result.app_stats["generated"] > 0


def test_run_single_with_faults_measures_recovery(small_config):
    result = run_single("none", seed=5, faults=4, config=small_config)
    assert result.faults == 4
    # Zero means the metric was already inside the post-fault steady band
    # at injection time (the paper's Q1 = 3 ms rows are the same effect).
    assert result.recovery_time_ms >= 0
    assert result.noc_stats["sent"] > 0


def test_run_single_deterministic(small_config):
    a = run_single("ffw", seed=9, config=small_config, keep_series=False)
    b = run_single("ffw", seed=9, config=small_config, keep_series=False)
    assert a.settled_performance == b.settled_performance
    assert a.app_stats == b.app_stats


def test_keep_series_false_drops_series(small_config):
    result = run_single("none", seed=5, config=small_config,
                        keep_series=False)
    assert result.series is None


def test_run_batch_sequential(small_config):
    results = run_batch("none", seeds=[1, 2], config=small_config)
    assert [r.seed for r in results] == [1, 2]
    assert len({r.settled_performance for r in results}) >= 1


def test_run_batch_resolves_alias(small_config):
    (result,) = run_batch("ffw", seeds=[1], config=small_config)
    assert result.model == "foraging_for_work"


def test_as_row_export(small_config):
    result = run_single("none", seed=5, config=small_config)
    row = result.as_row()
    assert row["model"] == "none"
    assert "settled_performance" in row


def test_default_seeds():
    assert default_seeds(3) == [1000, 1001, 1002]
    assert default_seeds(2, base=5) == [5, 6]
