"""Mapping-strategy registry and recovery-remap policies.

The three legacy mapping functions in :mod:`repro.app.mapping` have two
different signatures (``clustered_mapping`` wants the topology, the
other two want node ids). The registry normalises them behind one
policy shape::

    policy(topology, weights, rng, workload=None) -> {node_id: task_id}

so strategies are drop-in interchangeable, selected by
``PlatformConfig.initial_mapping``. Two policies go beyond the static
legacy trio:

``load_aware``
    Balances the *steady-state compute demand* of the compiled workload
    (packet rate x service time per task, from
    :meth:`~repro.app.workloads.compiler.CompiledWorkload.demand_weights`)
    instead of the static ratio weights — a burst-heavy branch task gets
    the nodes its traffic actually needs. Falls back to the static
    weights for the legacy application, which carries no rate model.

``fault-aware`` recovery remap (``PlatformConfig.recovery_remap``)
    Hooked on the dynamics seam: when a node recovers (scripted or
    watchdog-driven) and comes back blank, it is assigned the task with
    the largest census deficit against its weight-proportional target —
    closing the loop between the fault engine and the mapping layer
    instead of leaving repair entirely to the intelligence models.
"""

from repro.app.mapping import (
    balanced_mapping,
    clustered_mapping,
    random_mapping,
)


def _random(topology, weights, rng, workload=None):
    return random_mapping(topology.node_ids(), weights, rng)


def _balanced(topology, weights, rng, workload=None):
    return balanced_mapping(topology.node_ids(), weights, rng)


def _clustered(topology, weights, rng, workload=None):
    return clustered_mapping(topology, weights, rng)


def _load_aware(topology, weights, rng, workload=None):
    demand = None
    if workload is not None:
        getter = getattr(workload, "demand_weights", None)
        if getter is not None:
            demand = getter()
    if not demand or not any(demand.values()):
        demand = weights
    return balanced_mapping(topology.node_ids(), demand, rng)


MAPPING_POLICIES = {
    "random": _random,
    "balanced": _balanced,
    "clustered": _clustered,
    "load_aware": _load_aware,
}

#: Recovery-remap modes for ``PlatformConfig.recovery_remap``.
RECOVERY_REMAPS = ("none", "fault-aware")


def mapping_policy(name):
    """Look up a mapping policy by name (ValueError on unknown)."""
    try:
        return MAPPING_POLICIES[name]
    except KeyError:
        raise ValueError(
            "unknown mapping policy {!r} (known: {})".format(
                name, ", ".join(sorted(MAPPING_POLICIES))
            )
        ) from None


def apply_mapping(name, topology, weights, rng, workload=None):
    """Run the named policy with the normalised signature."""
    return mapping_policy(name)(topology, weights, rng, workload=workload)


def remap_for_recovery(platform, node_id):
    """Pick the task a just-recovered blank node should adopt.

    The fault-aware policy: compare the healthy census against each
    task's weight-proportional share of the currently alive nodes and
    return the task with the largest deficit (ties to the smallest task
    id — deterministic, no RNG draw). Returns ``None`` when the graph
    carries no weight.
    """
    weights = platform.workload.graph.weights()
    total = sum(weights.values())
    if total <= 0:
        return None
    census = platform.network.directory.task_census()
    alive = sum(1 for pe in platform.pes.values() if not pe.halted)
    best_task, best_deficit = None, None
    for task_id in sorted(weights):
        target = alive * weights[task_id] / total
        deficit = target - census.get(task_id, 0)
        if best_deficit is None or deficit > best_deficit:
            best_task, best_deficit = task_id, deficit
    return best_task
