"""Tests for the mapping-policy registry and recovery remapping."""

import random

import pytest

from repro.app.mapping import (
    balanced_mapping,
    census,
    clustered_mapping,
    random_mapping,
)
from repro.app.workloads import (
    MAPPING_POLICIES,
    apply_mapping,
    compile_workload,
    mapping_policy,
    remap_for_recovery,
)
from repro.noc.topology import MeshTopology
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig

WEIGHTS = {1: 1, 2: 3, 3: 1}


@pytest.fixture
def topology():
    return MeshTopology(4, 4)


class TestRegistry:
    def test_registry_names(self):
        assert set(MAPPING_POLICIES) == {
            "random", "balanced", "clustered", "load_aware",
        }

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown mapping policy"):
            mapping_policy("spiral")

    @pytest.mark.parametrize("name,legacy", [
        ("random", random_mapping),
        ("balanced", balanced_mapping),
    ])
    def test_node_id_policies_match_legacy_functions(
        self, topology, name, legacy
    ):
        via_registry = apply_mapping(
            name, topology, WEIGHTS, random.Random(42)
        )
        direct = legacy(topology.node_ids(), WEIGHTS, random.Random(42))
        assert via_registry == direct

    def test_clustered_matches_legacy_function(self, topology):
        assert apply_mapping(
            "clustered", topology, WEIGHTS, random.Random(42)
        ) == clustered_mapping(topology, WEIGHTS)


class TestLoadAware:
    def test_balances_compiled_demand_not_static_weights(self, topology):
        # All static weights equal, but task 2 carries 25x the compute
        # demand — load_aware must give it most of the nodes.
        compiled = compile_workload({
            "name": "skewed",
            "tasks": [
                {"id": 1, "service_us": 100, "arrival": 1_000,
                 "downstream": [2]},
                {"id": 2, "service_us": 10_000, "downstream": [3]},
                {"id": 3, "service_us": 400},
            ],
        })
        mapping = apply_mapping(
            "load_aware", topology, {1: 1, 2: 1, 3: 1},
            random.Random(42), workload=compiled,
        )
        counts = census(mapping)
        assert counts[2] > counts.get(1, 0)
        assert counts[2] > counts.get(3, 0)
        assert counts[2] >= 12  # ~ 10/10.5 of the 16 nodes

    def test_falls_back_to_static_weights_without_workload(self, topology):
        assert apply_mapping(
            "load_aware", topology, WEIGHTS, random.Random(42)
        ) == balanced_mapping(topology.node_ids(), WEIGHTS, random.Random(42))


class TestRecoveryRemap:
    def _platform(self, **config_overrides):
        config = PlatformConfig.small(**config_overrides)
        return CenturionPlatform(config, model_name="none", seed=7)

    def test_picks_the_task_with_the_largest_deficit(self):
        platform = self._platform()
        # Blank out every node running task 2: it now has the largest
        # deficit against its 3/5 weight share.
        for pe in platform.pes.values():
            if pe.task_id == 2:
                pe.set_task(None, reason="test")
        assert remap_for_recovery(platform, node_id=0) == 2

    def test_ties_break_to_the_smallest_task_id(self):
        platform = self._platform()
        for pe in platform.pes.values():
            pe.set_task(None, reason="test")
        # All deficits now equal their weight-proportional targets;
        # task 2's (weight 3) is largest, so a full blank-out picks it —
        # then with census rebuilt equal to targets, ties go low.
        assert remap_for_recovery(platform, node_id=0) == 2

    def test_config_validates_recovery_remap(self):
        with pytest.raises(ValueError):
            PlatformConfig.small(recovery_remap="aggressive")

    def test_recovered_node_readopts_a_task_end_to_end(self):
        config = PlatformConfig.small(
            horizon_us=120_000, fault_time_us=60_000,
            recovery_remap="fault-aware",
        )
        platform = CenturionPlatform(config, model_name="none", seed=7)
        platform.inject_scenario({
            "name": "blip",
            "events": [
                {"kind": "node", "at_us": 60_000, "victims": [5],
                 "duration_us": 20_000},
            ],
        })
        platform.run()
        assert platform.dynamics.recovery_remaps == 1
        assert platform.pes[5].task_id is not None

    def test_remap_off_by_default(self):
        config = PlatformConfig.small(
            horizon_us=120_000, fault_time_us=60_000,
        )
        platform = CenturionPlatform(config, model_name="none", seed=7)
        platform.inject_scenario({
            "name": "blip",
            "events": [
                {"kind": "node", "at_us": 60_000, "victims": [5],
                 "duration_us": 20_000},
            ],
        })
        platform.run()
        assert platform.dynamics.recovery_remaps == 0
        # The "none" model never reassigns, so the node stays blank.
        assert platform.pes[5].task_id is None
