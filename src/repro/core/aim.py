"""The Artificial Intelligence Module (AIM).

One AIM per node, as in Figure 2a: a PicoBlaze-class controller wired
between the node's monitors and knobs, hosting an uploaded intelligence
program (a :class:`repro.core.models.base.IntelligenceModel`).  The AIM

* subscribes to the router (routing-event impulses) and the processing
  element (internal-sink / execution / task-change impulses),
* runs a periodic timer tick (the "Timer Tick" input of Figure 2b) that
  drives time-based model logic such as the Foraging-for-Work timeout,
* exposes the knob bank to the model, and
* accepts RCAP-style parameter writes so the Experiment Controller can
  retune models remotely at runtime.
"""

from repro.core.knobs import standard_knob_bank
from repro.core.monitors import standard_monitor_bank
from repro.sim.process import PeriodicProcess


class AimTickBank:
    """One shared timer-tick event train for all AIMs on a platform.

    Every AIM ticks at the same period and they are all started together
    at platform construction, so the per-node tick events land on the same
    timestamps and dispatch in node order.  The bank collapses them into a
    *single* periodic event that relays the tick to each registered AIM in
    registration (node) order — observably identical to per-AIM tick
    events, at a fraction of the kernel traffic: 128 heap events per
    period become one.  This is the biggest single event-count reduction
    in a platform run (timer ticks outnumber packet events several-fold).
    """

    def __init__(self, sim, period_us):
        self.sim = sim
        self._aims = []
        self._process = PeriodicProcess(
            sim, period_us, self._tick_all, priority=sim.PRIORITY_SAMPLE
        )

    def register(self, aim):
        """Add an AIM to the shared train (starts it on first use)."""
        self._aims.append(aim)
        if not self._process.running:
            self._process.start()

    def _tick_all(self, _process):
        # Dispatches straight to the models (one frame per node instead of
        # three); mirrors the checks in ArtificialIntelligenceModule._on_tick.
        now = self.sim.now
        for aim in self._aims:
            model = aim.model
            if aim._ticking and model is not None and not aim.pe.halted:
                model.on_tick(aim, now)


class ArtificialIntelligenceModule:
    """Embedded intelligence for one node.

    Parameters
    ----------
    sim, pe, router, network:
        The node's simulator, processing element, router and the NoC.
    model:
        The intelligence program to host (may be ``None`` for an
        unmanaged node; a model can also be uploaded later through
        :meth:`upload_model`, like the Experiment Controller uploading
        PicoBlaze code).
    tick_period_us:
        Timer-tick period for the model's ``on_tick``.
    tick_bank:
        Optional shared :class:`AimTickBank`.  When given, this AIM rides
        the platform-wide tick event instead of owning a periodic process;
        standalone AIMs (``None``) keep their own train.
    """

    def __init__(self, sim, pe, router, network, model=None,
                 tick_period_us=1000, tick_bank=None):
        self.sim = sim
        self.pe = pe
        self.router = router
        self.network = network
        self.node_id = pe.node_id
        self._monitors = None
        self.knobs = standard_knob_bank(pe, router)
        self.model = None
        self._ticking = False
        if tick_bank is None:
            self._tick = PeriodicProcess(
                sim, tick_period_us, self._on_tick,
                priority=sim.PRIORITY_SAMPLE,
            )
        else:
            self._tick = None
            tick_bank.register(self)
        router.add_observer(self)
        pe.add_observer(self)
        if model is not None:
            self.upload_model(model)

    @property
    def monitors(self):
        """The node's monitor bank, built on first access.

        Only a minority of models read monitors directly (most subscribe
        to impulses instead), and platform construction is on the
        benchmark hot path, so the eight monitor objects are lazy.
        """
        monitors = self._monitors
        if monitors is None:
            monitors = self._monitors = standard_monitor_bank(
                self.sim, self.pe, self.router, self.network
            )
        return monitors

    # -- program upload ------------------------------------------------------

    def upload_model(self, model):
        """Install (or replace) the hosted intelligence program."""
        self.model = model
        if model is not None:
            model.bind(self)
            self.knobs["task_select"].reason = model.name
            self._ticking = True
            if self._tick is not None and not self._tick.running:
                self._tick.start()
        else:
            self._ticking = False
            if self._tick is not None:
                self._tick.stop()

    def shutdown(self):
        """Stop the timer tick (used when the node dies)."""
        self._ticking = False
        if self._tick is not None:
            self._tick.stop()

    def restart(self):
        """Resume the timer tick after node recovery.

        Tick-bank AIMs just flip their gate back on (the shared train
        never stopped); standalone AIMs restart their own process.  An
        AIM with no model stays silent, exactly as at construction.
        """
        if self.model is None:
            return
        self._ticking = True
        if self._tick is not None and not self._tick.running:
            self._tick.start()

    # -- router monitor relay ---------------------------------------------------

    def on_packet_routed(self, router, packet, to_internal):
        """Router monitor relay (filters locally-injected packets)."""
        if self.model is None or self.pe.halted:
            return
        # Locally-injected packets (hop count still zero) are the node's own
        # emissions, not observed traffic; monitors sit on the mesh input
        # ports so they do not see them.
        injected = packet.hops == 0 and not to_internal
        self.model.on_packet_routed(
            self, packet, to_internal=to_internal, injected=injected
        )

    def on_packet_dropped(self, router, packet):
        """Router drop-event relay."""
        if self.model is None or self.pe.halted:
            return
        self.model.on_packet_dropped(self, packet)

    # -- processing element monitor relay -----------------------------------------

    def on_internal_sink(self, pe, packet):
        """PE internal-sink monitor relay."""
        if self.model is not None and not pe.halted:
            self.model.on_internal_sink(self, packet)

    def on_execution_complete(self, pe, task_id):
        """PE execution-complete monitor relay."""
        if self.model is not None and not pe.halted:
            self.model.on_execution_complete(self, task_id)

    def on_task_changed(self, pe, old, new):
        """PE task-change monitor relay."""
        if self.model is not None and not pe.halted:
            self.model.on_task_changed(self, old, new)

    # -- timer tick -----------------------------------------------------------------

    def _on_tick(self, _process):
        if self.model is None or self.pe.halted:
            return
        self.model.on_tick(self, self.sim.now)

    # -- knob helpers used by models ---------------------------------------------------

    def switch_task(self, task_id):
        """Pull the task-select knob; returns the resulting task."""
        return self.knobs["task_select"].set(task_id)

    def current_task(self):
        """The node's current task (monitor view)."""
        return self.pe.task_id

    def set_frequency(self, mhz):
        """Pull the DVFS knob; returns the applied frequency."""
        return self.knobs["frequency"].set(mhz)

    def set_clock_enabled(self, enabled):
        """Pull the clock-enable knob."""
        return self.knobs["clock_enable"].set(enabled)

    def reset_node(self):
        """Pull the reset knob."""
        return self.knobs["reset"].set()

    # -- RCAP parameter access --------------------------------------------------------------

    def rcap_write_params(self, params):
        """Remote model retuning (thresholds etc.) via the RCAP."""
        if self.model is None:
            raise RuntimeError("no model uploaded to AIM {}".format(
                self.node_id))
        self.model.configure(**params)

    def __repr__(self):
        model_name = self.model.name if self.model is not None else None
        return "AIM(node={}, model={})".format(self.node_id, model_name)
