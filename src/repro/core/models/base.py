"""Model base class and the Figure 1 factor taxonomy.

Figure 1 of the paper illustrates the factors influencing an individual's
choice to undertake a task — external (location, nestmates, task needs,
perceived stimulus) and internal (genes, innate response threshold,
behavioural state, experience, ontogeny) — with numbered arrows marking
which of the six model classes uses each factor.  The :data:`FACTORS`
constants and each model's ``factors`` class attribute encode that taxonomy
so it is testable and printable (see ``examples/model_taxonomy.py``).
"""


class FACTORS:
    """Decision factors from Figure 1 (string constants)."""

    # External factors
    LOCATION = "location"
    NESTMATES = "nestmates"
    TASK_NEEDS = "task_needs"
    STIMULUS = "stimulus"
    # Internal factors
    GENES = "genes"
    INNATE_THRESHOLD = "innate_response_threshold"
    BEHAVIOURAL_STATE = "behavioural_state"
    EXPERIENCE = "experience"
    ONTOGENY = "ontogeny"

    EXTERNAL = frozenset({LOCATION, NESTMATES, TASK_NEEDS, STIMULUS})
    INTERNAL = frozenset(
        {GENES, INNATE_THRESHOLD, BEHAVIOURAL_STATE, EXPERIENCE, ONTOGENY}
    )
    ALL = EXTERNAL | INTERNAL


class _Idle:
    """Sentinel type for :data:`IDLE` (printable, single instance)."""

    def __repr__(self):
        return "IDLE"


#: Returned by :meth:`IntelligenceModel.next_wakeup` when the model has no
#: timer armed: ``on_tick`` is a guaranteed no-op until a monitor event
#: re-arms it, so the event-mode tick bank schedules nothing.
IDLE = _Idle()


class IntelligenceModel:
    """Base class for AIM-hosted intelligence programs.

    Subclasses override the monitor-event hooks they care about; every hook
    receives the hosting :class:`~repro.core.aim.ArtificialIntelligenceModule`
    so the model reaches monitors and knobs without holding node state
    itself (one model instance per node, created by the registry).

    Class attributes
    ----------------
    name:
        Short identifier used in experiment configs and traces.
    model_number:
        The Figure 1 class number (1–6), or ``None`` for the baseline.
    factors:
        The subset of :class:`FACTORS` this model class draws on.
    """

    name = "base"
    model_number = None
    factors = frozenset()

    def __init__(self, task_ids):
        self.task_ids = tuple(task_ids)
        if not self.task_ids:
            raise ValueError("model needs at least one task id")

    # -- lifecycle -----------------------------------------------------------

    def bind(self, aim):
        """Called once when uploaded to an AIM; build pathways here."""

    def configure(self, **params):
        """RCAP parameter update; unknown keys raise ``KeyError``.

        The default implementation sets same-named public attributes that
        already exist, which covers simple scalar tunables.
        """
        for key, value in params.items():
            if not hasattr(self, key) or key.startswith("_"):
                raise KeyError("unknown model parameter {!r}".format(key))
            setattr(self, key, value)

    # -- monitor event hooks (default: ignore) ----------------------------------

    def on_packet_routed(self, aim, packet, to_internal, injected):
        """A packet crossed this node's router."""

    def on_internal_sink(self, aim, packet):
        """A packet was accepted by the local processing element."""

    def on_packet_dropped(self, aim, packet):
        """A packet was dropped at this node's router (lost work)."""

    def on_execution_complete(self, aim, task_id):
        """The local PE finished executing one packet/generation."""

    def on_task_changed(self, aim, old, new):
        """The local node's task assignment changed (any cause)."""

    def on_tick(self, aim, now):
        """Periodic timer tick from the AIM."""

    # -- timer demand protocol (event-driven tick mode) ----------------------

    def next_wakeup(self, now):
        """When does this model next need :meth:`on_tick`?

        The contract, relied on by the event-mode
        :class:`~repro.core.aim.AimTickBank`:

        * ``None`` (the default) — the model does real per-tick work;
          tick it every period, exactly as the classic polled mode does.
        * :data:`IDLE` — ``on_tick`` is a guaranteed no-op until a monitor
          event re-arms the model; schedule nothing.
        * an absolute time (µs) — ``on_tick`` is a guaranteed no-op at any
          ``now`` strictly before that time; the bank may skip ticks until
          the first grid tick at or after it.

        Models that return :data:`IDLE` or a deadline promise that every
        state change moving the wakeup *earlier* happens inside a monitor
        hook (the bank re-reads the demand after each relayed event).
        """
        return None

    def on_restart(self, aim):
        """The hosting node recovered from a fault.

        Clear stale timer/decision state here: the node's task and queues
        were wiped by the fault, so a deadline armed before death must not
        fire against pre-fault evidence.  Default: nothing to clear.
        """

    def __repr__(self):
        return "{}(tasks={})".format(type(self).__name__, list(self.task_ids))
