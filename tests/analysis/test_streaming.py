"""Streaming aggregation: sketch accuracy, grouping, O(groups) reads.

The quantile sketch is the only approximate piece of the analysis
layer, so it gets the property treatment: exactness below the bin
bound, range/monotonicity invariants on arbitrary streams, and a
large-``n`` accuracy check against exact order statistics.  The
aggregate tests pin the group-key rules, the only-when-nonzero
dynamics contract, the count-weighted rollups, and that aggregation
consumes a one-shot iterator (nothing is materialised or re-read).
"""

import math
import random
import statistics

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.streaming import (
    DYNAMICS_COLUMNS,
    METRIC_COLUMNS,
    RootAggregate,
    StreamingHistogram,
    StreamStats,
    group_key,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def exact_quantile(data, fraction):
    """Nearest-rank quantile of a sorted list."""
    return data[min(len(data) - 1, int(fraction * len(data)))]


@settings(max_examples=100, deadline=None)
@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_sketch_quantiles_within_range_and_monotone(data):
    sketch = StreamingHistogram(max_bins=16)
    for value in data:
        sketch.add(value)
    low, high = min(data), max(data)
    eps = 1e-9 * max(1.0, abs(low), abs(high))
    quantiles = [sketch.quantile(q) for q in (0.0, 0.5, 0.95, 0.99, 1.0)]
    for estimate in quantiles:
        assert low - eps <= estimate <= high + eps
    for earlier, later in zip(quantiles, quantiles[1:]):
        assert later >= earlier - eps


@settings(max_examples=100, deadline=None)
@given(st.lists(finite_floats, min_size=1, max_size=32, unique=True))
def test_sketch_exact_below_max_bins(data):
    sketch = StreamingHistogram(max_bins=64)
    for value in data:
        sketch.add(value)
    ordered = sorted(data)
    eps = 1e-9 * max(1.0, abs(ordered[0]), abs(ordered[-1]))
    for fraction in (0.25, 0.5, 0.75, 0.95):
        estimate = sketch.quantile(fraction)
        # Exact storage (every unique sample its own centroid): the
        # midpoint-rank estimate interpolates between adjacent order
        # statistics, so it is bracketed by the rank's neighbours
        # (within interpolation rounding).
        rank = fraction * len(ordered)
        low = ordered[max(0, min(len(ordered) - 1, int(rank) - 1))]
        high = ordered[min(len(ordered) - 1, int(rank) + 1)]
        assert low - eps <= estimate <= high + eps


def test_sketch_accuracy_large_uniform_stream():
    rng = random.Random(42)
    data = [rng.random() for _ in range(20000)]
    sketch = StreamingHistogram(max_bins=64)
    for value in data:
        sketch.add(value)
    data.sort()
    for fraction in (0.5, 0.95, 0.99):
        estimate = sketch.quantile(fraction)
        assert abs(estimate - exact_quantile(data, fraction)) < 0.02


def test_sketch_bins_bounded_and_deterministic():
    first = StreamingHistogram(max_bins=8)
    second = StreamingHistogram(max_bins=8)
    values = [math.sin(i) * 100 for i in range(1000)]
    for value in values:
        first.add(value)
        second.add(value)
    assert len(first) <= 8
    assert first._values == second._values
    assert first._counts == second._counts


def test_stream_stats_match_statistics_module():
    rng = random.Random(7)
    data = [rng.gauss(10.0, 3.0) for _ in range(500)]
    stats = StreamStats()
    for value in data:
        stats.add(value)
    assert stats.count == len(data)
    assert math.isclose(stats.mean, statistics.fmean(data),
                        rel_tol=1e-12)
    assert math.isclose(stats.variance, statistics.variance(data),
                        rel_tol=1e-9)
    assert stats.minimum == min(data)
    assert stats.maximum == max(data)
    summary = stats.summary()
    assert set(summary) == {"count", "mean", "min", "max",
                            "p50", "p95", "p99"}


def test_group_key_rules():
    assert group_key({"model": "ffw", "faults": 8}) == (
        "ffw", "faults=8", "-"
    )
    assert group_key(
        {"model": "none", "faults": 2, "scenario": "storm"}
    ) == ("none", "storm", "-")
    assert group_key(
        {"model": "ni", "faults": 0, "workload": "pipeline3"}
    ) == ("ni", "faults=0", "pipeline3")


def make_row(model="none", faults=0, value=1.0, **extra):
    """A synthetic scalar row covering every metric column."""
    row = {
        "model": model,
        "seed": 1,
        "faults": faults,
        "settling_time_ms": value,
        "settled_performance": value * 2,
        "recovery_time_ms": value * 3,
        "recovered_performance": value * 4,
        "total_switches": int(value),
    }
    row.update(extra)
    return row


def test_aggregate_groups_and_dynamics_only_when_nonzero():
    aggregate = RootAggregate()
    aggregate.add_row(make_row("none", 0, 1.0), campaign="a")
    aggregate.add_row(make_row("none", 0, 3.0), campaign="b")
    aggregate.add_row(
        make_row("ffw", 4, 2.0, throttle_events=5), campaign="a"
    )
    assert aggregate.rows == 3
    assert set(aggregate.groups) == {
        ("none", "faults=0", "-"), ("ffw", "faults=4", "-"),
    }
    quiet = aggregate.groups[("none", "faults=0", "-")]
    loud = aggregate.groups[("ffw", "faults=4", "-")]
    assert quiet.metrics["settling_time_ms"].mean == 2.0
    assert "dynamics" not in quiet.summary()
    assert loud.summary()["dynamics"] == {"throttle_events": 5}
    assert quiet.campaigns == {"a", "b"}
    summary = aggregate.summary()
    assert summary["rows"] == 3
    assert [g["model"] for g in summary["groups"]] == ["ffw", "none"]


def test_axis_rollup_weights_by_row_count():
    aggregate = RootAggregate()
    for _ in range(3):
        aggregate.add_row(make_row("none", 0, 1.0))
    aggregate.add_row(make_row("none", 4, 5.0))
    rollup = aggregate.axis_rollup(0)
    # (3*1.0 + 1*5.0) / 4 — weighted by rows, not averaged per group.
    assert rollup["none"]["rows"] == 4
    assert math.isclose(rollup["none"]["means"]["settling_time_ms"], 2.0)


def test_matrix_has_none_holes():
    aggregate = RootAggregate()
    aggregate.add_row(make_row("none", 0, 1.0))
    aggregate.add_row(make_row("ffw", 4, 2.0))
    rows, cols, cells = aggregate.matrix("settling_time_ms")
    assert rows == ["ffw", "none"]
    assert cols == ["faults=0", "faults=4"]
    assert cells[0][0] is None and cells[1][1] is None
    assert cells[1][0] == 1.0 and cells[0][1] == 2.0


def test_consume_drains_a_one_shot_iterator():
    def one_shot():
        for i in range(100):
            yield ("camp", "key{}".format(i), make_row("none", 0, float(i)))

    triples = one_shot()
    aggregate = RootAggregate().consume(triples)
    assert aggregate.rows == 100
    # The iterator is exhausted — nothing buffered it for a second pass.
    assert next(triples, None) is None
    assert aggregate.groups[("none", "faults=0", "-")].rows == 100


def test_missing_metric_values_are_skipped_not_zeroed():
    aggregate = RootAggregate()
    row = make_row("none", 0, 4.0)
    del row["recovery_time_ms"]
    aggregate.add_row(row)
    group = aggregate.groups[("none", "faults=0", "-")]
    assert group.metrics["recovery_time_ms"].count == 0
    assert group.metrics["settling_time_ms"].count == 1


def test_metric_and_dynamics_column_contract():
    assert METRIC_COLUMNS == (
        "settling_time_ms", "settled_performance", "recovery_time_ms",
        "recovered_performance", "total_switches",
    )
    assert DYNAMICS_COLUMNS == (
        "throttle_events", "autonomous_recoveries", "deadlock_drops",
    )
