"""Report rendering and cross-campaign regression comparison.

Pins the deliverable contracts of :mod:`repro.analysis.report`: the
static page is self-contained and rebuilds byte-identically, the
comparison flags exactly the moves that are worse-beyond-threshold in
each metric's own direction, vanished baseline groups fail the gate,
and ``write_report`` emits both artefacts over a real store root.
"""

import json
import os

from repro.analysis.report import (
    BETTER_DIRECTION,
    DEFAULT_THRESHOLD,
    REPORT_HTML,
    REPORT_JSON,
    compare,
    compare_aggregates,
    format_comparison,
    render_html,
    write_report,
)
from repro.analysis.streaming import RootAggregate
from repro.campaign.store import encode_line


def make_row(model="none", faults=0, settling=10.0, performance=3.0,
             recovery=5.0, **extra):
    """A synthetic scalar row covering every metric column."""
    row = {
        "model": model,
        "seed": 1,
        "faults": faults,
        "settling_time_ms": settling,
        "settled_performance": performance,
        "recovery_time_ms": recovery,
        "recovered_performance": performance,
        "total_switches": 2,
    }
    row.update(extra)
    return row


def aggregate_of(rows):
    """A RootAggregate over synthetic rows (one campaign)."""
    aggregate = RootAggregate()
    for row in rows:
        aggregate.add_row(row, campaign="camp")
    return aggregate


def write_store(directory, records):
    """A minimal campaign directory holding canonical record lines."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "results.jsonl"), "w") as handle:
        for record in records:
            handle.write(encode_line(record))
            handle.write("\n")


def store_records(rows):
    """Record wrappers for synthetic rows (key = position)."""
    return [
        {"key": "cell-{}".format(i), "row": row}
        for i, row in enumerate(rows)
    ]


def test_render_html_bit_identical_and_self_contained():
    rows = [
        make_row("none", 0), make_row("ffw", 0, settling=8.0),
        make_row("ffw", 4, recovery=9.0, throttle_events=3),
    ]
    first = render_html(aggregate_of(rows), title="t")
    second = render_html(aggregate_of(rows), title="t")
    assert first == second
    assert first.startswith("<!DOCTYPE html>")
    for marker in ("<script", "<link", "src="):
        assert marker not in first
    assert "<svg" in first
    assert "throttle_events" in first  # nonzero dynamics surface
    assert "ffw" in first and "none" in first


def test_render_html_omits_quiet_dynamics_and_single_axes():
    rows = [make_row("none", 0), make_row("none", 0, settling=12.0)]
    page = render_html(aggregate_of(rows))
    assert "throttle_events" not in page
    # One model, one family, one workload: no per-axis breakdowns.
    assert "By model" not in page and "By family" not in page


def test_compare_flags_only_worse_beyond_threshold():
    baseline = aggregate_of([make_row("none", 0)])
    worse = aggregate_of(
        [make_row("none", 0, settling=12.0, performance=3.0)]
    )
    comparison = compare_aggregates(baseline, worse, threshold=0.05)
    flagged = {(d.group, d.metric) for d in comparison.regressions()}
    # settling_time_ms rose 20% (lower-is-better): flagged; the equal
    # performance metrics and recovery are not.
    assert flagged == {(("none", "faults=0", "-"), "settling_time_ms")}
    assert not comparison.ok()

    better = aggregate_of(
        [make_row("none", 0, settling=5.0, performance=4.0)]
    )
    improvement = compare_aggregates(baseline, better, threshold=0.05)
    assert improvement.ok()
    assert improvement.regressions() == []

    slight = aggregate_of([make_row("none", 0, settling=10.2)])
    within = compare_aggregates(baseline, slight, threshold=0.05)
    assert within.ok()


def test_compare_direction_higher_is_better():
    baseline = aggregate_of([make_row("none", 0, performance=4.0)])
    dropped = aggregate_of([make_row("none", 0, performance=3.0)])
    comparison = compare_aggregates(baseline, dropped, threshold=0.05)
    metrics = {d.metric for d in comparison.regressions()}
    assert "settled_performance" in metrics
    assert "recovered_performance" in metrics


def test_missing_baseline_group_fails_added_group_does_not():
    baseline = aggregate_of([make_row("none", 0), make_row("ffw", 0)])
    shrunk = aggregate_of([make_row("none", 0)])
    comparison = compare_aggregates(baseline, shrunk)
    assert comparison.missing == [("ffw", "faults=0", "-")]
    assert not comparison.ok()

    grown = aggregate_of(
        [make_row("none", 0), make_row("ffw", 0), make_row("ni", 0)]
    )
    comparison = compare_aggregates(baseline, grown)
    assert comparison.added == [("ni", "faults=0", "-")]
    assert comparison.ok()


def test_zero_baseline_mean_is_tolerated():
    baseline = aggregate_of([make_row("none", 0, recovery=0.0)])
    candidate = aggregate_of([make_row("none", 0, recovery=3.0)])
    comparison = compare_aggregates(baseline, candidate)
    flagged = [d for d in comparison.regressions()
               if d.metric == "recovery_time_ms"]
    assert len(flagged) == 1 and flagged[0].relative == float("inf")


def test_format_comparison_verdict_lines():
    baseline = aggregate_of([make_row("none", 0)])
    text = format_comparison(
        compare_aggregates(baseline, baseline)
    )
    assert text.endswith("OK — no regressions")
    worse = aggregate_of([make_row("none", 0, settling=20.0)])
    text = format_comparison(compare_aggregates(baseline, worse))
    assert "REGRESSION" in text
    assert text.splitlines()[-1].startswith("FAIL")


def test_write_report_and_compare_over_store_roots(tmp_path):
    rows = [make_row("none", 0), make_row("ffw", 4, recovery=9.0)]
    root = tmp_path / "root"
    write_store(str(root / "camp"), store_records(rows))
    html_path = write_report(str(root))
    assert html_path == str(root / "report" / REPORT_HTML)
    page = open(html_path).read()
    assert "ffw" in page and "none" in page
    summary = json.load(open(str(root / "report" / REPORT_JSON)))
    assert summary["rows"] == 2
    assert [g["model"] for g in summary["groups"]] == ["ffw", "none"]

    # Byte-identical on rebuild.
    write_report(str(root))
    assert open(html_path).read() == page

    # Self-compare over the same on-disk root is clean...
    assert compare(str(root), str(root)).ok()
    # ...and a candidate with a degraded metric is flagged.
    worse_rows = [make_row("none", 0),
                  make_row("ffw", 4, recovery=20.0)]
    worse_root = tmp_path / "worse"
    write_store(str(worse_root / "camp"), store_records(worse_rows))
    comparison = compare(str(root), str(worse_root),
                         threshold=DEFAULT_THRESHOLD)
    assert not comparison.ok()
    assert comparison.as_dict()["ok"] is False


def test_better_direction_covers_clock_and_performance_metrics():
    assert BETTER_DIRECTION == {
        "settling_time_ms": "lower",
        "settled_performance": "higher",
        "recovery_time_ms": "lower",
        "recovered_performance": "higher",
    }
