"""Timer-mode equivalence: event-driven and tick-polled AIMs are bit-identical.

The event timer mode (repro.core.aim) schedules a wakeup only when a model's
``next_wakeup`` demands one, quantised up to the grid the periodic train
would have used, so firing times, RNG draw order and every observable are
conserved.  These tests pin that guarantee the same way
``test_fast_path_determinism.py`` pins the express hop engine: every
registered intelligence scheme, with and without fault injection, with the
express path on and off, must produce the same scalar row, the same NoC
counters and the same application statistics under both ``timer_mode``
settings — while an idle-heavy FFW run dispatches several times fewer
kernel events in event mode, and campaign cell keys stay byte-conserved.
"""

import pytest

from repro.core.models.registry import MODEL_REGISTRY
from repro.experiments.runner import run_single
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.platform.scenario import FaultScenario

#: Shortened small-platform run: long enough to settle, inject faults and
#: recover, short enough to keep the full model × seed matrix cheap.
_KWARGS = dict(
    width=4,
    height=4,
    horizon_us=120_000,
    fault_time_us=60_000,
)

#: A margin as wide as the packet deadline makes every transit packet
#: count as late, so FFW actually arms, fires and re-arms — the cells
#: exercising the wakeup machinery rather than a permanently idle bank.
_BUSY_FFW = dict(ffw_deadline_margin_us=16_000)


def _pair(model, seed, faults, scenario=None, **config_kwargs):
    base = dict(_KWARGS)
    base.update(config_kwargs)
    ticked = run_single(
        model, seed, faults=faults, scenario=scenario,
        config=PlatformConfig(timer_mode="ticked", **base),
        keep_series=False,
    )
    event = run_single(
        model, seed, faults=faults, scenario=scenario,
        config=PlatformConfig(timer_mode="event", **base),
        keep_series=False,
    )
    return ticked, event


def _assert_identical(ticked, event):
    assert ticked.as_row() == event.as_row()
    assert ticked.noc_stats == event.noc_stats
    assert ticked.app_stats == event.app_stats


@pytest.mark.parametrize("model", sorted(MODEL_REGISTRY))
@pytest.mark.parametrize("seed", [11, 12])
def test_timer_mode_identical_without_faults(model, seed):
    ticked, event = _pair(model, seed, faults=0)
    _assert_identical(ticked, event)


@pytest.mark.parametrize("model", sorted(MODEL_REGISTRY))
@pytest.mark.parametrize("seed", [11])
def test_timer_mode_identical_with_faults(model, seed):
    ticked, event = _pair(model, seed, faults=5)
    _assert_identical(ticked, event)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_timer_mode_identical_busy_ffw(seed):
    """Cells where FFW demonstrably arms, fires and re-arms."""
    ticked, event = _pair("foraging_for_work", seed, faults=3, **_BUSY_FFW)
    _assert_identical(ticked, event)
    # Not vacuous: the timeout machinery actually fired in these cells.
    assert ticked.as_row()["total_switches"] > 0


@pytest.mark.parametrize("model", ["foraging_for_work", "response_threshold"])
def test_timer_mode_identical_slow_hop_engine(model):
    """The A/B knobs compose: event mode is pinned with fast_path off too."""
    ticked, event = _pair(model, 11, faults=3, fast_path=False, **_BUSY_FFW)
    _assert_identical(ticked, event)


def test_timer_mode_identical_with_recovery_scenario():
    """Transient faults recover mid-run: restart/re-arm paths match too."""
    scenario = FaultScenario(
        name="transient",
        events=({"at_us": 40_000, "count": 3, "duration_us": 30_000},),
    )
    ticked, event = _pair(
        "foraging_for_work", 17, faults=0, scenario=scenario, **_BUSY_FFW
    )
    _assert_identical(ticked, event)


def _idle_heavy(mode, model="foraging_for_work"):
    """A run whose event population is dominated by timer ticks."""
    config = PlatformConfig.small(
        timer_mode=mode,
        horizon_us=1_000_000,
        fault_time_us=500_000,
        generation_period_us=200_000,
        metrics_window_us=50_000,
    )
    platform = CenturionPlatform(config, model_name=model, seed=7)
    platform.run()
    return platform


def test_event_mode_retires_the_tick_storm():
    """ISSUE 10 acceptance: >= 3x fewer dispatched events when idle-heavy.

    ``Simulator.dispatched_events`` is a deterministic counter, so the
    bound is noise-free — no timing involved.
    """
    ticked = _idle_heavy("ticked").sim.dispatched_events
    event = _idle_heavy("event").sim.dispatched_events
    assert ticked >= 3 * event


def test_event_mode_degenerates_for_periodic_models():
    """A per-tick model (EMA decay) pulls the bank back to the periodic
    train — and the run still matches ticked mode exactly (covered by the
    matrix above); here we pin that the fallback actually engaged."""
    platform = _idle_heavy("event", model="adaptive_network_interaction")
    assert platform._aim_ticker._degenerate
    assert all(aim._event_bank is None for aim in platform.aims.values())


def test_event_mode_banks_stay_demand_driven_for_ffw():
    platform = _idle_heavy("event")
    assert not platform._aim_ticker._degenerate


class TestKeyConservation:
    """``timer_mode`` is canonical-optional: pre-PR 10 keys are conserved."""

    def test_default_mode_keeps_historic_cell_keys(self):
        from repro.campaign.spec import RunDescriptor

        default = RunDescriptor(
            model="ffw", seed=3, faults=2, config=PlatformConfig()
        )
        assert "timer_mode" not in PlatformConfig().canonical()
        # The pinned key a dynamics-free ffw cell has had since PR 2.
        assert default.key() == RunDescriptor(
            model="ffw", seed=3, faults=2,
            config=PlatformConfig(timer_mode="event"),
        ).key()

    def test_explicit_ticked_mode_mints_a_fresh_key(self):
        from repro.campaign.spec import RunDescriptor

        default = RunDescriptor(
            model="ffw", seed=3, faults=2, config=PlatformConfig()
        )
        ticked = RunDescriptor(
            model="ffw", seed=3, faults=2,
            config=PlatformConfig(timer_mode="ticked"),
        )
        assert ticked.config.canonical()["timer_mode"] == "ticked"
        assert ticked.key() != default.key()


class TestRestartDisarms:
    """Satellite bugfix: a timer armed before node death must not survive.

    Before PR 10 an FFW node that died with ``armed_at`` set fired an
    immediate task switch on recovery using its pre-fault
    ``candidate_task`` — stale evidence from a wiped node.
    """

    @pytest.mark.parametrize("timer_mode", ["ticked", "event"])
    def test_recovered_ffw_node_comes_back_disarmed(self, timer_mode):
        config = PlatformConfig.small(timer_mode=timer_mode)
        platform = CenturionPlatform(
            config, model_name="foraging_for_work", seed=5
        )
        node_id = next(iter(platform.aims))
        model = platform.aims[node_id].model
        # Arm the timeout as late traffic would, then kill the node.
        model.armed_at = platform.sim.now
        model.candidate_task = model.task_ids[0]
        platform.controller.inject_fault(node_id)
        platform.controller.recover_node(node_id)
        assert model.armed_at is None
        assert model.candidate_task is None

    def test_recovered_node_does_not_fire_a_stale_switch(self):
        """Drive the sim past the stale deadline: no switch may fire."""
        config = PlatformConfig.small(timer_mode="ticked")
        platform = CenturionPlatform(
            config, model_name="foraging_for_work", seed=5
        )
        node_id = next(iter(platform.aims))
        aim = platform.aims[node_id]
        model = aim.model
        model.armed_at = 0
        model.candidate_task = model.task_ids[0]
        platform.controller.inject_fault(node_id)
        platform.sim.run_until(model.timeout_us + 10_000)
        platform.controller.recover_node(node_id)
        before = model.switches_fired
        platform.sim.run_until(platform.sim.now + 3 * config.aim_tick_us)
        assert model.switches_fired == before
