"""Figure 4 reproduction: throughput and task-distribution time series.

Paper: two fault scenarios (5 faults; 42 faults = 1/3 of Centurion), three
models each, 0-1000 ms.  Systems settle from the random initial mapping
(shaded region), faults land at 500 ms, and the adaptive models resettle
into a new task topology that recovers part of the lost performance.

Reproduction targets per panel:

* a settling transient in the first half for the adaptive models;
* a visible drop in active nodes / throughput at 500 ms;
* partial recovery for FFW after large fault counts (more post-fault
  throughput than the sheer surviving-node fraction would give the frozen
  baseline mapping);
* the task-census panels stay near the 1:3:1 ratio (~25/75/25 nodes
  on the 128-node grid) and step down at the fault.
"""

import pytest

from repro.experiments.figures import figure4, render_figure4
from repro.platform.config import PlatformConfig


@pytest.fixture(scope="module")
def figure4_data():
    return figure4(config=PlatformConfig(), seed=1000)


def _mean(values):
    return sum(values) / max(1, len(values))


def test_figure4_reproduction(benchmark, figure4_data):
    data = benchmark.pedantic(lambda: figure4_data, rounds=1, iterations=1)
    print()
    print(render_figure4(data, metric="active_nodes"))

    for faults, by_model in data.items():
        for model, result in by_model.items():
            series = result.series
            pre = series.window_slice(300, 500)
            post = series.window_slice(800, 1000)
            pre_joins = _mean([series.joins[i] for i in pre])
            post_joins = _mean([series.joins[i] for i in post])
            pre_active = _mean([series.active_nodes[i] for i in pre])
            post_active = _mean([series.active_nodes[i] for i in post])

            if faults >= 42:
                # Large fault case: clear performance loss for everyone.
                assert post_joins < pre_joins
                assert post_active < pre_active
            # Work never stops entirely.
            assert post_joins > 0

    # Task census ~1:3:1 before the fault for the baseline (25/75/25).
    baseline = data[5]["none"].series
    idx = baseline.window_slice(300, 500)
    census2 = _mean([baseline.census[2][i] for i in idx])
    census1 = _mean([baseline.census[1][i] for i in idx])
    census3 = _mean([baseline.census[3][i] for i in idx])
    assert 60 <= census2 <= 92
    assert 15 <= census1 <= 36
    assert 15 <= census3 <= 36

    # FFW retains more throughput than the frozen baseline at 42 faults.
    ffw_post = _mean(
        [data[42]["foraging_for_work"].series.joins[i]
         for i in data[42]["foraging_for_work"].series.window_slice(800, 1000)]
    )
    none_post = _mean(
        [data[42]["none"].series.joins[i]
         for i in data[42]["none"].series.window_slice(800, 1000)]
    )
    assert ffw_post >= none_post

    # Adaptive models actually switch tasks; the baseline never does.
    assert sum(data[5]["none"].series.task_switches) == 0
    assert sum(data[5]["foraging_for_work"].series.task_switches) > 0
