"""Packets.

Packets are task-addressed (see package docstring): ``dest_task`` is the
logical destination, ``dest_node`` the currently-resolved physical provider.
``instance`` and ``branch`` identify which fork-join graph instance and which
of its parallel branches the packet belongs to, which the sink uses to join
the fork (Figure 3 of the paper).
"""

import itertools

_packet_ids = itertools.count()


class PacketStatus:
    """Lifecycle states of a packet."""

    IN_FLIGHT = "in_flight"
    DELIVERED = "delivered"
    DROPPED_DEADLOCK = "dropped_deadlock"
    DROPPED_NO_PROVIDER = "dropped_no_provider"
    DROPPED_FAULT = "dropped_fault"

    ALL = (
        IN_FLIGHT,
        DELIVERED,
        DROPPED_DEADLOCK,
        DROPPED_NO_PROVIDER,
        DROPPED_FAULT,
    )


class Packet:
    """A NoC packet.

    Parameters
    ----------
    src_node:
        Id of the originating node.
    dest_task:
        Task id the packet must be consumed by.
    size_flits:
        Wormhole length; a packet holds each traversed link for
        ``size_flits`` flit-times.
    created_at:
        Simulation time (µs) of creation.
    instance:
        Fork-join instance key ``(source node, sequence number)``.
    branch:
        Branch index within the fork (0-based), or ``None`` for
        non-fork traffic.
    deadline:
        Optional absolute deadline (µs); used by the Foraging-for-Work
        monitors ("time since sent").
    """

    __slots__ = (
        "packet_id",
        "src_node",
        "dest_task",
        "dest_node",
        "size_flits",
        "created_at",
        "instance",
        "branch",
        "deadline",
        "hops",
        "reroutes",
        "status",
        "delivered_at",
        "payload",
        "tried",
        "corrupted",
    )

    def __init__(self, src_node, dest_task, size_flits=4, created_at=0,
                 instance=None, branch=None, deadline=None, payload=None):
        if size_flits < 1:
            raise ValueError("packet needs at least 1 flit")
        self.packet_id = next(_packet_ids)
        self.src_node = src_node
        self.dest_task = dest_task
        self.dest_node = None
        self.size_flits = size_flits
        self.created_at = created_at
        self.instance = instance
        self.branch = branch
        self.deadline = deadline
        self.hops = 0
        self.reroutes = 0
        self.status = PacketStatus.IN_FLIGHT
        self.delivered_at = None
        self.payload = payload
        #: Set when the packet crossed a corrupting link: the flits still
        #: arrive (the wire time is spent, delivery is counted) but the
        #: payload is garbage — the application must treat it as a miss.
        self.corrupted = False
        #: Providers whose full buffers already bounced this packet; the
        #: backpressure search never revisits them, so a packet hunting for
        #: capacity expands outward instead of ping-ponging between two
        #: saturated neighbours.
        self.tried = None

    def mark_tried(self, node_id):
        """Remember a provider that bounced this packet."""
        if self.tried is None:
            self.tried = set()
        self.tried.add(node_id)

    def tried_providers(self):
        """Frozen view of bounced providers (empty tuple when none)."""
        return self.tried if self.tried is not None else ()

    @property
    def in_flight(self):
        return self.status == PacketStatus.IN_FLIGHT

    def latency(self):
        """End-to-end latency in µs, or ``None`` if not delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def age(self, now):
        """Time since creation — the paper's "time since sent" monitor."""
        return now - self.created_at

    def is_late(self, now):
        """True when the packet has a deadline and it has lapsed."""
        return self.deadline is not None and now > self.deadline

    def __repr__(self):
        return (
            "Packet(id={}, src={}, task={}, dest={}, {} flits, {})".format(
                self.packet_id,
                self.src_node,
                self.dest_task,
                self.dest_node,
                self.size_flits,
                self.status,
            )
        )
