"""Synthetic local temperature model.

Centurion senses temperature through FPGA ring oscillators (Figure 2a,
monitor group 4).  We have no silicon, so we substitute a first-order RC
(Newton's-cooling) model driven by node activity: every busy microsecond
adds heat proportional to the square of the frequency ratio (dynamic power
~ f·V², with V roughly tracking f), and heat decays exponentially toward
ambient.  The absolute numbers are arbitrary but the *dynamics* — hot spots
follow sustained activity with a time constant — are what an intelligence
model thresholding on temperature reacts to, so the monitor is faithful in
shape.
"""

import math


class ThermalModel:
    """First-order thermal integrator for one node.

    Parameters
    ----------
    ambient_c:
        Ambient (idle steady-state) temperature, °C.
    heat_per_busy_us:
        Temperature rise contributed by one µs of busy time at nominal
        frequency, before decay.
    time_constant_us:
        Exponential decay time constant toward ambient.

    With the defaults, a node that is busy 100 % of the time settles about
    ``heat_per_busy_us × time_constant_us = 20 °C`` above ambient — a
    plausible FPGA hot-spot excursion.
    """

    def __init__(self, ambient_c=35.0, heat_per_busy_us=0.0004,
                 time_constant_us=50_000):
        if time_constant_us <= 0:
            raise ValueError("time constant must be positive")
        self.ambient_c = ambient_c
        self.heat_per_busy_us = heat_per_busy_us
        self.time_constant_us = time_constant_us
        self._above_ambient = 0.0
        self._last_update = 0

    def _decay_to(self, now):
        elapsed = now - self._last_update
        if elapsed > 0:
            self._above_ambient *= math.exp(-elapsed / self.time_constant_us)
            self._last_update = now

    def record_busy(self, now, busy_us, frequency_ratio=1.0):
        """Add heat for ``busy_us`` µs of work ending at ``now``.

        ``frequency_ratio`` is current/nominal frequency; heat scales with
        its square.
        """
        self._decay_to(now)
        self._above_ambient += (
            busy_us * self.heat_per_busy_us * frequency_ratio ** 2
        )

    def inject_heat(self, now, delta_c):
        """Add ``delta_c`` °C of exogenous heat at ``now``.

        The thermal-storm injection path: heat that does not come from
        the node's own activity (a neighbouring hot spot, an ambient
        excursion).  It decays like any other heat.
        """
        if delta_c < 0:
            raise ValueError("injected heat must be >= 0")
        self._decay_to(now)
        self._above_ambient += delta_c

    def cooldown_eta_us(self, now, target_c):
        """µs from ``now`` until the node cools to ``target_c``.

        Closed form of the RC decay: ``τ·ln(above / target_above)``,
        rounded up to the integer clock.  Returns 0 when already at or
        below the target, and ``None`` when the target is at or below
        ambient (the decay only ever approaches ambient asymptotically).
        """
        self._decay_to(now)
        target_above = target_c - self.ambient_c
        if target_above <= 0:
            return None
        if self._above_ambient <= target_above:
            return 0
        return int(math.ceil(
            self.time_constant_us
            * math.log(self._above_ambient / target_above)
        ))

    def temperature(self, now):
        """Current temperature in °C at simulation time ``now``."""
        self._decay_to(now)
        return self.ambient_c + self._above_ambient

    def __repr__(self):
        return "ThermalModel(+{:.2f}C above {}C)".format(
            self._above_ambient, self.ambient_c
        )
