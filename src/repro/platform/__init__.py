"""The Centurion many-core experimentation platform.

Assembles the substrates into the system of paper §III: a 8×16 grid of 128
nodes (router + processing element + AIM), an Experiment Controller attached
to the North ports of four top-row routers with an out-of-band debug
interface, and a fault-injection engine driven through that debug interface.
"""

from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.platform.controller import ExperimentController
from repro.platform.faults import FaultInjector

__all__ = [
    "CenturionPlatform",
    "PlatformConfig",
    "ExperimentController",
    "FaultInjector",
]
