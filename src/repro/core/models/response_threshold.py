"""Response threshold model (Figure 1 class 1).

The classic fixed-threshold division-of-labour model: each individual holds
an innate, genetically-varied response threshold per task; when the
perceived task stimulus exceeds the individual's threshold, it engages in
that task.  Low-threshold individuals respond first, producing an elastic
workforce.

Stimulus here is the per-task routed-traffic intensity at the node's router
(demand made visible by the NoC), integrated in a leaky counter: impulses
excite it, a per-tick leak decays it, so sustained — not merely cumulative —
demand is what crosses thresholds.  Genetic variation comes from a per-node
RNG stream seeding thresholds uniformly in ``[threshold_low, threshold_high]``.

This model class is *not* one of the two the paper evaluates on Centurion;
it is implemented over the same primitives as an extension (paper §II-A
introduces it as the foundation the evaluated models build on).
"""

from repro.core.models.base import FACTORS, IntelligenceModel
from repro.core.pathways import DecisionPathway


class ResponseThresholdModel(IntelligenceModel):
    """Leaky per-task stimulus vs. innate per-task thresholds.

    Parameters
    ----------
    task_ids:
        All task ids.
    threshold_low, threshold_high:
        Innate threshold range; each node draws one threshold per task.
    leak_per_tick:
        Stimulus decay applied on each AIM tick.
    """

    name = "response_threshold"
    model_number = 1
    factors = frozenset(
        {FACTORS.STIMULUS, FACTORS.TASK_NEEDS, FACTORS.GENES,
         FACTORS.INNATE_THRESHOLD}
    )

    def __init__(self, task_ids, threshold_low=12, threshold_high=36,
                 leak_per_tick=1):
        super().__init__(task_ids)
        if threshold_low < 1 or threshold_high < threshold_low:
            raise ValueError("invalid threshold range [{}, {}]".format(
                threshold_low, threshold_high))
        self.threshold_low = threshold_low
        self.threshold_high = threshold_high
        self.leak_per_tick = leak_per_tick
        self.pathway = None
        self.innate_thresholds = {}
        self.switches_fired = 0

    def bind(self, aim):
        """Draw innate thresholds (genes) and build the pathway."""
        rng = aim.sim.rng.stream(
            "{}-genes-{}".format(self.name, aim.node_id)
        )
        self.pathway = DecisionPathway(
            "{}-node-{}".format(self.name, aim.node_id)
        )
        for task_id in self.task_ids:
            threshold = rng.randint(self.threshold_low, self.threshold_high)
            self.innate_thresholds[task_id] = threshold
            key = "task-{}".format(task_id)
            self.pathway.add_comparator(key, task_id)
            unit = self.pathway.add_threshold(
                key, threshold, reset_on_fire=False
            )
            self.pathway.wire(key, key)
            unit.output.connect(
                lambda _payload, t=task_id, a=aim: self._fire(a, t)
            )

    # -- monitor events -------------------------------------------------------

    def on_packet_routed(self, aim, packet, to_internal, injected):
        """Observed traffic is the task stimulus."""
        if injected:
            return
        self.pathway.present(packet.dest_task)

    def on_tick(self, aim, now):
        """Leak the stimulus so only sustained demand crosses thresholds."""
        if self.leak_per_tick <= 0:
            return
        for unit in self.pathway.thresholds.values():
            unit.counter.leak(self.leak_per_tick)

    # -- decision -------------------------------------------------------------------

    def _fire(self, aim, task_id):
        self.switches_fired += 1
        self.pathway.reset_all()
        if aim.current_task() != task_id:
            aim.switch_task(task_id)

    def stimulus_levels(self):
        """Current per-task stimulus (tests/examples)."""
        if self.pathway is None:
            return {}
        return {
            task: self.pathway.thresholds["task-{}".format(task)].value
            for task in self.task_ids
        }
