"""Tests for saturating counters."""

import pytest
from hypothesis import given, strategies as st

from repro.core.counters import SaturatingCounter


def test_excite_and_inhibit():
    counter = SaturatingCounter()
    counter.excite()
    counter.excite(amount=3)
    counter.inhibit()
    assert counter.value == 3


def test_saturates_high():
    counter = SaturatingCounter(maximum=5)
    for _ in range(10):
        counter.excite()
    assert counter.value == 5
    assert counter.saturated_high


def test_saturates_low():
    counter = SaturatingCounter(minimum=0, initial=2)
    for _ in range(10):
        counter.inhibit()
    assert counter.value == 0
    assert counter.saturated_low


def test_leak_decays_without_event_accounting():
    counter = SaturatingCounter(initial=5)
    counter.leak(2)
    assert counter.value == 3
    assert counter.inhibitions == 0


def test_reset_to_minimum_by_default():
    counter = SaturatingCounter(minimum=1, initial=5)
    counter.reset()
    assert counter.value == 1


def test_reset_to_explicit_value():
    counter = SaturatingCounter(initial=5)
    counter.reset(3)
    assert counter.value == 3


def test_reset_out_of_bounds_rejected():
    with pytest.raises(ValueError):
        SaturatingCounter(maximum=10).reset(11)


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        SaturatingCounter(minimum=5, maximum=1)


def test_invalid_initial_rejected():
    with pytest.raises(ValueError):
        SaturatingCounter(minimum=0, maximum=5, initial=9)


def test_event_accounting():
    counter = SaturatingCounter()
    counter.excite()
    counter.excite()
    counter.inhibit()
    assert counter.excitations == 2
    assert counter.inhibitions == 1


@given(
    st.lists(
        st.tuples(st.sampled_from(["excite", "inhibit", "leak"]),
                  st.integers(min_value=0, max_value=10)),
        max_size=60,
    )
)
def test_value_always_within_bounds(operations):
    counter = SaturatingCounter(minimum=2, maximum=17, initial=5)
    for op, amount in operations:
        getattr(counter, op)(amount=amount) if op != "leak" else counter.leak(
            amount
        )
        assert 2 <= counter.value <= 17
