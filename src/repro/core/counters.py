"""Excitatory/inhibitory saturating counters.

Figure 2b: "A series of impulse based inputs are read into the Picoblaze,
when they fire a counter is either increased (excitatory) or decreased
(inhibitory)."  The counter saturates at configurable bounds (hardware
registers do not wrap in this design) and supports an optional leak applied
on demand, which the adaptive-threshold extension models use.
"""


class SaturatingCounter:
    """Bounded up/down counter driven by impulses.

    Parameters
    ----------
    minimum, maximum:
        Saturation bounds (inclusive).
    initial:
        Starting value; must lie within the bounds.
    """

    def __init__(self, minimum=0, maximum=255, initial=0):
        if minimum > maximum:
            raise ValueError(
                "minimum {} above maximum {}".format(minimum, maximum)
            )
        if not minimum <= initial <= maximum:
            raise ValueError(
                "initial {} outside [{}, {}]".format(initial, minimum, maximum)
            )
        self.minimum = minimum
        self.maximum = maximum
        self.value = initial
        self.excitations = 0
        self.inhibitions = 0

    def excite(self, _payload=None, amount=1):
        """Increase by ``amount`` (saturating); connectable to a line."""
        self.excitations += 1
        self.value = min(self.maximum, self.value + amount)
        return self.value

    def inhibit(self, _payload=None, amount=1):
        """Decrease by ``amount`` (saturating); connectable to a line."""
        self.inhibitions += 1
        self.value = max(self.minimum, self.value - amount)
        return self.value

    def leak(self, amount=1):
        """Decay toward the minimum by ``amount`` (no event accounting)."""
        self.value = max(self.minimum, self.value - amount)
        return self.value

    def reset(self, value=None):
        """Set back to ``value`` (default: the minimum)."""
        target = self.minimum if value is None else value
        if not self.minimum <= target <= self.maximum:
            raise ValueError(
                "reset value {} outside [{}, {}]".format(
                    target, self.minimum, self.maximum
                )
            )
        self.value = target

    @property
    def saturated_high(self):
        return self.value == self.maximum

    @property
    def saturated_low(self):
        return self.value == self.minimum

    def __repr__(self):
        return "SaturatingCounter({} in [{}, {}])".format(
            self.value, self.minimum, self.maximum
        )
