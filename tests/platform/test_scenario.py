"""Tests for the declarative fault-scenario model."""

import json

import pytest

from repro.platform.scenario import FaultEvent, FaultScenario


class TestFaultEventValidation:
    def test_minimal_uniform_event(self):
        event = FaultEvent(at_us=100, count=3)
        assert event.kind == "node"
        assert event.occurrence_times() == [100]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, kind="gamma-ray", count=1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=-1, count=1)

    def test_uniform_needs_count_or_victims(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0)

    def test_count_victims_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=2, victims=(1, 2, 3))

    def test_count_victims_agreement_accepted(self):
        event = FaultEvent(at_us=0, count=3, victims=(1, 2, 3))
        assert event.nominal_victims() == 3

    def test_pattern_needs_its_parameter(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, pattern="row")
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, pattern="column")
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, pattern="region")
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, pattern="neighborhood")

    def test_region_shape_checked(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, pattern="region", region=(0, 0, 1))

    def test_victims_reject_spatial_patterns(self):
        # A pinned list would silently override the pattern otherwise —
        # the same hidden-mistake class as count vs victims.
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, victims=(1, 2), pattern="row", row=3)

    def test_link_events_reject_spatial_patterns(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, kind="link", count=1, pattern="row", row=0)

    def test_link_victims_must_be_pairs(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, kind="link", victims=(3,))
        event = FaultEvent(at_us=0, kind="link", victims=((0, 1), (4, 5)))
        assert event.victims == ((0, 1), (4, 5))

    def test_repeats_need_period(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, repeats=3)
        event = FaultEvent(at_us=10, count=1, repeats=3, period_us=5)
        assert event.occurrence_times() == [10, 15, 20]

    def test_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=1, duration_us=0)


class TestScenarioModel:
    def test_needs_name(self):
        with pytest.raises(ValueError):
            FaultScenario(name="", events=())

    def test_events_coerced_from_dicts(self):
        scenario = FaultScenario(
            name="mixed",
            events=(
                {"at_us": 100, "count": 2},
                {"at_us": 50, "kind": "link", "count": 1},
            ),
        )
        assert all(isinstance(e, FaultEvent) for e in scenario.events)
        assert scenario.first_fault_us() == 50
        assert scenario.occurrence_count() == 2

    def test_empty_scenario_has_no_first_fault(self):
        assert FaultScenario(name="calm").first_fault_us() is None

    def test_burst_shape(self):
        scenario = FaultScenario.burst(8, 500_000)
        (event,) = scenario.events
        assert event.count == 8
        assert event.at_us == 500_000
        assert event.duration_us is None
        assert event.pattern == "uniform"

    def test_zero_burst_is_the_legacy_noop(self):
        scenario = FaultScenario.burst(0, 500_000)
        assert scenario.events == ()
        assert scenario.first_fault_us() is None

    def test_zero_count_event_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at_us=0, count=0)


class TestScenarioSerialisation:
    def _wavy(self):
        return FaultScenario(
            name="wavy",
            events=(
                FaultEvent(at_us=100, count=2, repeats=3, period_us=50),
                FaultEvent(
                    at_us=200, kind="link", victims=((0, 1),),
                    duration_us=40,
                ),
                FaultEvent(at_us=300, pattern="row", row=1, count=None),
            ),
        )

    def test_round_trip(self):
        scenario = self._wavy()
        clone = FaultScenario.from_dict(
            json.loads(json.dumps(scenario.to_dict()))
        )
        assert clone == scenario
        assert clone.key() == scenario.key()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            FaultScenario.from_dict({"name": "x", "events": [], "whoops": 1})
        with pytest.raises(ValueError):
            FaultEvent.from_dict({"at_us": 0, "count": 1, "whoops": 1})

    def test_to_dict_omits_defaults(self):
        event = FaultEvent(at_us=10, count=2)
        assert event.to_dict() == {"at_us": 10, "count": 2}

    def test_key_sensitive_to_every_field(self):
        base = self._wavy()
        renamed = FaultScenario(name="wavy2", events=base.events)
        retimed = FaultScenario(
            name="wavy",
            events=(
                FaultEvent(at_us=101, count=2, repeats=3, period_us=50),
            ) + base.events[1:],
        )
        keys = {base.key(), renamed.key(), retimed.key()}
        assert len(keys) == 3

    def test_from_json_file(self, tmp_path):
        scenario = self._wavy()
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(scenario.to_dict()))
        assert FaultScenario.from_json_file(str(path)) == scenario
