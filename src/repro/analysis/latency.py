"""Streaming packet-latency statistics.

End-to-end latency is the NoC-level quantity behind the paper's throughput
story (providers recruited next to demand shorten routes and queue waits).
The collector hooks the network's delivery handler and keeps per-task
streaming statistics: count, mean (Welford), extremes, and a fixed-width
histogram from which quantiles are interpolated — O(1) memory per task no
matter how many packets flow.
"""


class LatencyStats:
    """Streaming summary of one latency population (µs values).

    Parameters
    ----------
    bucket_us:
        Histogram bucket width.
    num_buckets:
        Number of buckets; samples beyond the range land in the last
        (overflow) bucket, which bounds memory but caps quantile
        resolution at ``bucket_us * num_buckets``.
    """

    def __init__(self, bucket_us=250, num_buckets=400):
        if bucket_us <= 0 or num_buckets <= 0:
            raise ValueError("bucket size and count must be positive")
        self.bucket_us = bucket_us
        self.num_buckets = num_buckets
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = None
        self.maximum = None
        self._histogram = [0] * num_buckets

    def add(self, latency_us):
        """Record one sample."""
        if latency_us < 0:
            raise ValueError("latency cannot be negative")
        self.count += 1
        delta = latency_us - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (latency_us - self.mean)
        if self.minimum is None or latency_us < self.minimum:
            self.minimum = latency_us
        if self.maximum is None or latency_us > self.maximum:
            self.maximum = latency_us
        bucket = min(int(latency_us // self.bucket_us),
                     self.num_buckets - 1)
        self._histogram[bucket] += 1

    @property
    def variance(self):
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def quantile(self, fraction):
        """Approximate quantile from the histogram (bucket midpoint).

        Returns ``None`` when no samples have been recorded.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.count == 0:
            return None
        target = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._histogram):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                return (index + 0.5) * self.bucket_us
        return (self.num_buckets - 0.5) * self.bucket_us

    def summary(self):
        """Dict summary (JSON-friendly)."""
        return {
            "count": self.count,
            "mean_us": self.mean,
            "min_us": self.minimum,
            "max_us": self.maximum,
            "p50_us": self.quantile(0.5),
            "p95_us": self.quantile(0.95),
            "p99_us": self.quantile(0.99),
        }

    def __repr__(self):
        return "LatencyStats(n={}, mean={:.1f}us)".format(
            self.count, self.mean
        )


class LatencyCollector:
    """Per-task latency collection hooked into a network's deliveries.

    Wraps the network's existing delivery handler, so installation order is
    irrelevant: build the platform first, then ``LatencyCollector.install``.
    """

    def __init__(self, bucket_us=250, num_buckets=400):
        self.bucket_us = bucket_us
        self.num_buckets = num_buckets
        self.by_task = {}
        self.overall = LatencyStats(bucket_us, num_buckets)
        self._network = None
        self._inner_handler = None

    def install(self, network):
        """Start observing deliveries on ``network``; returns self."""
        if self._network is not None:
            raise RuntimeError("collector already installed")
        self._network = network
        self._inner_handler = network.deliver_handler

        def observing_handler(packet, node_id):
            self.record(packet)
            if self._inner_handler is not None:
                self._inner_handler(packet, node_id)

        network.set_deliver_handler(observing_handler)
        return self

    def uninstall(self):
        """Restore the network's original delivery handler."""
        if self._network is not None:
            self._network.set_deliver_handler(self._inner_handler)
            self._network = None
            self._inner_handler = None

    def record(self, packet):
        """Record a delivered packet's latency (ignores undelivered)."""
        latency = packet.latency()
        if latency is None:
            return
        self.overall.add(latency)
        stats = self.by_task.get(packet.dest_task)
        if stats is None:
            stats = LatencyStats(self.bucket_us, self.num_buckets)
            self.by_task[packet.dest_task] = stats
        stats.add(latency)

    def summary(self):
        """Per-task and overall summaries."""
        return {
            "overall": self.overall.summary(),
            "by_task": {
                task: stats.summary()
                for task, stats in sorted(self.by_task.items())
            },
        }
