"""Deadlock recovery and drop-notification behaviour of the network."""

from repro.noc.network import Network
from repro.noc.packet import Packet, PacketStatus
from repro.noc.topology import MeshTopology


class DropObserver:
    def __init__(self):
        self.dropped = []

    def on_packet_dropped(self, router, packet):
        self.dropped.append((router.node_id, packet.dest_task))


def test_deadlock_recovery_drops_blocked_packet(sim):
    """A packet facing a channel wait beyond the limit is dropped."""
    net = Network(
        sim, topology=MeshTopology(4, 1), deadlock_wait_limit=100
    )
    net.set_deliver_handler(lambda pkt, node: None)
    net.directory.set_task(3, 2)
    # Saturate the first link far beyond the wait limit.
    link = net.link(0, 1)
    blocker = Packet(0, dest_task=2, size_flits=500)
    link.transfer(blocker, now=0)
    victim = Packet(0, dest_task=2)
    net.send(victim, 0)
    assert victim.status == PacketStatus.DROPPED_DEADLOCK
    assert net.deadlock.drops == 1
    assert net.stats["dropped_deadlock"] == 1


def test_waits_under_limit_tolerated(sim):
    net = Network(
        sim, topology=MeshTopology(4, 1), deadlock_wait_limit=10_000
    )
    delivered = []
    net.set_deliver_handler(lambda pkt, node: delivered.append(node))
    net.directory.set_task(3, 2)
    link = net.link(0, 1)
    link.transfer(Packet(0, dest_task=2, size_flits=500), now=0)
    victim = Packet(0, dest_task=2)
    net.send(victim, 0)
    sim.run_until(50_000)
    assert victim.status == PacketStatus.DELIVERED


def test_drop_notifies_local_router_observer(sim):
    net = Network(sim, topology=MeshTopology(4, 1))
    observer = DropObserver()
    net.router(0).add_observer(observer)
    packet = Packet(0, dest_task=9)  # no provider anywhere
    net.send(packet, 0)
    assert observer.dropped == [(0, 9)]
    assert net.router(0).packets_dropped_here == 1


def test_drop_at_failed_router_does_not_notify(sim):
    net = Network(sim, topology=MeshTopology(4, 1))
    observer = DropObserver()
    net.router(0).add_observer(observer)
    net.fail_node(0)
    packet = Packet(0, dest_task=9)
    net.send(packet, 0)
    assert packet.status == PacketStatus.DROPPED_FAULT
    assert observer.dropped == []


def test_redirect_exhaustion_notifies_at_origin(sim):
    net = Network(sim, topology=MeshTopology(4, 1), max_reroutes=2)
    observer = DropObserver()
    net.router(1).add_observer(observer)
    net.directory.set_task(3, 2)
    packet = Packet(0, dest_task=2)
    packet.reroutes = 3
    assert not net.redirect(packet, 1)
    assert observer.dropped == [(1, 2)]
