"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.sim.engine import Simulator


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden files under tests/experiments/golden/ "
             "with freshly computed values instead of comparing",
    )


@pytest.fixture
def update_golden(request):
    """True when the run should refresh golden files, not check them."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def sim():
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=1234)


class RecordingObserver:
    """Observer stub recording every event it receives."""

    def __init__(self):
        self.routed = []
        self.sinks = []
        self.completions = []
        self.task_changes = []

    def on_packet_routed(self, router, packet, to_internal):
        self.routed.append((router.node_id, packet.dest_task, to_internal))

    def on_internal_sink(self, pe, packet):
        self.sinks.append((pe.node_id, packet.dest_task))

    def on_execution_complete(self, pe, task_id):
        self.completions.append((pe.node_id, task_id))

    def on_task_changed(self, pe, old, new):
        self.task_changes.append((pe.node_id, old, new))


@pytest.fixture
def recording_observer():
    return RecordingObserver()
