"""Tests for the Experiment Controller."""

import pytest

from repro.noc.packet import Packet, PacketStatus
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


@pytest.fixture
def platform():
    return CenturionPlatform(PlatformConfig.small(), model_name="none",
                             seed=11)


def test_four_attach_points_on_top_row(platform):
    controller = platform.controller
    topology = platform.network.topology
    assert len(controller.attach_points) == 4
    assert all(topology.coords(n)[1] == 0 for n in controller.attach_points)


def test_full_centurion_attach_points_spread():
    platform = CenturionPlatform(model_name="none", seed=1)
    xs = [
        platform.network.topology.coords(n)[0]
        for n in platform.controller.attach_points
    ]
    assert len(set(xs)) == 4
    assert max(xs) - min(xs) >= 8  # spread across the top row


def test_inject_packet_enters_network(platform):
    packet = Packet(src_node=-1, dest_task=2)
    assert platform.controller.inject_packet(packet)
    platform.sim.run_until(50_000)
    assert packet.status == PacketStatus.DELIVERED
    assert platform.controller.injected == 1


def test_debug_read_snapshot(platform):
    info = platform.controller.debug_read(5)
    assert info["node"] == 5
    assert info["task"] in (1, 2, 3)
    assert not info["halted"]
    assert "temperature_c" in info


def test_debug_set_task(platform):
    platform.controller.debug_set_task(5, 3)
    assert platform.pes[5].task_id == 3
    assert platform.network.directory.task_of(5) == 3


def test_inject_fault_kills_everything(platform):
    platform.controller.inject_fault(5)
    assert platform.pes[5].halted
    assert platform.network.router(5).failed
    assert 5 in platform.network.failed_nodes
    assert platform.network.directory.task_of(5) is None
    assert platform.controller.debug_read(5)["halted"]


def test_inject_fault_idempotent(platform):
    platform.controller.inject_fault(5)
    platform.controller.inject_fault(5)
    assert len(platform.controller.faults_injected) == 1


def test_alive_nodes_shrink(platform):
    assert len(platform.controller.alive_nodes()) == 16
    platform.controller.inject_fault(5)
    alive = platform.controller.alive_nodes()
    assert len(alive) == 15
    assert 5 not in alive


def test_upload_model_params_broadcast():
    platform = CenturionPlatform(
        PlatformConfig.small(), model_name="ni", seed=11
    )
    platform.controller.upload_model_params({"threshold": 99})
    assert all(
        aim.model.threshold == 99 for aim in platform.aims.values()
    )


def test_rcap_write_reaches_router(platform):
    platform.controller.rcap_write(5, {"router_latency": 9})
    assert platform.network.router(5).config.router_latency == 9
