"""The Experiment Controller.

Paper §III: "A larger processor, the Experiment Controller, is connected to
the NoC via the North ports of four of the (otherwise unconnected) routers
in the top row ... The experiment controller can also access the nodes
separately to the NoC via a dedicated debug interface.  This allows
experiment data to be downloaded and parameters to be set at runtime (e.g.
for fault injection) without interfering with the NoC traffic of active
experiments."

Accordingly this class has two faces:

* a NoC face — four attachment points on top-row North ports through which
  it can inject packets into the network (used by the injection examples
  and tests);
* a debug face — direct, zero-time access to any node for state readout,
  parameter upload (model/RCAP settings) and fault injection, which by
  construction does not touch the NoC.
"""


class ExperimentController:
    """PC-side management processor for a Centurion platform.

    Parameters
    ----------
    platform:
        The :class:`~repro.platform.centurion.CenturionPlatform` to manage.
    attach_columns:
        Grid columns of the four top-row routers whose North ports carry
        the controller's NoC interfaces; defaults to four columns spread
        evenly across the top row.
    """

    def __init__(self, platform, attach_columns=None):
        self.platform = platform
        topology = platform.network.topology
        if attach_columns is None:
            quarter = max(1, topology.width // 4)
            attach_columns = tuple(
                min(topology.width - 1, quarter // 2 + i * quarter)
                for i in range(min(4, topology.width))
            )
        self.attach_points = tuple(
            topology.node_id(x, 0) for x in attach_columns
        )
        self.injected = 0
        self.faults_injected = []
        self.faults_recovered = []

    # -- NoC face --------------------------------------------------------------

    def inject_packet(self, packet, attach_index=0):
        """Inject a packet through one of the four North-port interfaces."""
        entry = self.attach_points[attach_index % len(self.attach_points)]
        self.injected += 1
        return self.platform.network.send(packet, entry)

    # -- debug face -------------------------------------------------------------

    def debug_read(self, node_id):
        """Out-of-band node state snapshot (no NoC traffic)."""
        pe = self.platform.pes[node_id]
        router = self.platform.network.router(node_id)
        return {
            "node": node_id,
            "task": pe.task_id,
            "halted": pe.halted,
            "queue_length": len(pe.queue),
            "completions": pe.completions,
            "task_switches": pe.task_switches,
            "frequency_mhz": pe.frequency.current_mhz,
            "temperature_c": pe.thermal.temperature(self.platform.sim.now),
            "router_failed": router.failed,
            "packets_forwarded": router.packets_forwarded,
            "packets_sunk": router.packets_sunk,
        }

    def debug_set_task(self, node_id, task_id):
        """Force a node's task assignment (experiment setup)."""
        self.platform.pes[node_id].set_task(task_id, reason="controller")

    def upload_model_params(self, params, node_ids=None):
        """Retune hosted models at runtime via the RCAP path."""
        targets = (
            node_ids if node_ids is not None else list(self.platform.aims)
        )
        for node_id in targets:
            self.platform.aims[node_id].rcap_write_params(params)

    def rcap_write(self, node_id, settings):
        """Remote router reconfiguration."""
        self.platform.network.router(node_id).rcap_write(settings)

    # -- fault injection ------------------------------------------------------------

    def inject_fault(self, node_id):
        """Kill one node: processor halts, router dies, AIM silenced.

        Uses the debug interface, so injection itself produces no NoC
        traffic — matching the paper's setup.
        """
        platform = self.platform
        pe = platform.pes[node_id]
        if pe.halted:
            return
        pe.halt()
        aim = platform.aims.get(node_id)
        if aim is not None:
            aim.shutdown()
        platform.network.fail_node(node_id)
        self.faults_injected.append((platform.sim.now, node_id))

    def recover_node(self, node_id):
        """Un-fail one node: processor restarts blank, router revives.

        The transient-fault back edge.  Like injection this rides the
        debug interface — recovery itself produces no NoC traffic.  The
        recovered node holds no task until the intelligence layer (or a
        :meth:`debug_set_task`) re-allocates work to it.
        """
        platform = self.platform
        pe = platform.pes[node_id]
        if not pe.halted:
            return
        pe.restart()
        aim = platform.aims.get(node_id)
        if aim is not None:
            aim.restart()
        platform.network.recover_node(node_id)
        self.faults_recovered.append((platform.sim.now, node_id))

    def alive_nodes(self):
        """Node ids that have not been fault-injected."""
        return [
            node_id
            for node_id, pe in self.platform.pes.items()
            if not pe.halted
        ]

    def __repr__(self):
        return "ExperimentController(attach={}, faults={}, recovered={})".format(
            self.attach_points, len(self.faults_injected),
            len(self.faults_recovered),
        )
