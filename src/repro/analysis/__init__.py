"""Analysis toolkit: maps, latency stats, export, sweep-scale reports.

The paper's experiments are evaluated through the time series of Figure 4
and the quartile tables; this package adds the inspection tools a user of
the platform needs beyond those headline artefacts:

* :mod:`repro.analysis.heatmap` — ASCII spatial maps of the grid (task
  topology, activity, temperature, queue depth, failures) at any instant,
  plus the shared inline-SVG heat-matrix renderer;
* :mod:`repro.analysis.latency` — streaming packet-latency statistics
  (mean, quantiles, histogram) collected per task;
* :mod:`repro.analysis.export` — CSV/JSON export of metric series and
  batch results for external plotting (row schema documented there);
* :mod:`repro.analysis.streaming` — constant-memory aggregation over
  campaign store roots: per-group (model × scenario-family × workload)
  counts, means, quantile sketches and dynamics counters, O(groups)
  memory no matter how many cells stream past;
* :mod:`repro.analysis.report` — ``campaign report`` static HTML pages
  and cross-campaign regression comparison (``campaign compare``).

See ``docs/cli.md`` for the command-line entry points over these layers.
"""

from repro.analysis.export import (
    results_to_csv,
    results_to_json,
    series_to_csv,
)
from repro.analysis.heatmap import (
    activity_map,
    render_grid,
    svg_heatmap,
    task_map,
    temperature_map,
)
from repro.analysis.latency import LatencyCollector, LatencyStats
from repro.analysis.report import (
    Comparison,
    compare,
    compare_aggregates,
    format_comparison,
    render_html,
    write_report,
)
from repro.analysis.streaming import (
    RootAggregate,
    StreamingHistogram,
    StreamStats,
    aggregate_dirs,
    aggregate_root,
    group_key,
)

__all__ = [
    "Comparison",
    "LatencyCollector",
    "LatencyStats",
    "RootAggregate",
    "StreamStats",
    "StreamingHistogram",
    "activity_map",
    "aggregate_dirs",
    "aggregate_root",
    "compare",
    "compare_aggregates",
    "format_comparison",
    "group_key",
    "render_grid",
    "render_html",
    "results_to_csv",
    "results_to_json",
    "series_to_csv",
    "svg_heatmap",
    "task_map",
    "temperature_map",
    "write_report",
]
