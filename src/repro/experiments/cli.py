"""Command-line interface to the experiment harness.

Usage (after ``pip install -e .``):

    python -m repro.experiments.cli run --model ffw --seed 7 --faults 42
    python -m repro.experiments.cli run --model ni --scenario waves.json
    python -m repro.experiments.cli run --model ffw --workload shuffle.json
    python -m repro.experiments.cli scenario storm.json --small
    python -m repro.experiments.cli workload burst.json --small
    python -m repro.experiments.cli table1 --runs 20 --processes 8
    python -m repro.experiments.cli table2 --runs 20 --faults 0,8,32 --resume
    python -m repro.experiments.cli figure4 --seed 42
    python -m repro.experiments.cli campaign --paper table2 --dir campaigns/t2
    python -m repro.experiments.cli campaign --spec sweep.json
    python -m repro.experiments.cli campaign --spec s.json --workers 4 --worker-id 0
    python -m repro.experiments.cli campaign ls
    python -m repro.experiments.cli campaign gc --apply
    python -m repro.experiments.cli campaign export --format csv --out all.csv
    python -m repro.experiments.cli campaign report --root campaigns
    python -m repro.experiments.cli campaign compare old-root new-root
    python -m repro.experiments.cli campaign serve --root campaigns --port 8642
    python -m repro.experiments.cli campaign submit sweep.json --wait
    python -m repro.experiments.cli campaign status sweep
    python -m repro.experiments.cli campaign wait sweep --timeout 600

The sweep subcommands are campaigns (:mod:`repro.campaign`): they shard
cells across ``--processes`` workers (default: REPRO_PROCESSES env, then
``os.cpu_count()``) and, given ``--resume [DIR]`` (or ``campaign``'s
always-on store), checkpoint each finished cell so interrupted sweeps
continue where they stopped and re-runs recompute nothing.  Store-backed
sweeps also consult the store root's cross-campaign dedup index (store
v2): a cell any sibling campaign already computed is reused
byte-identically instead of simulated (``--no-dedup`` opts out).
``campaign --workers N --worker-id K`` drains only shard ``K`` of the
pending cells into a private worker stream, so independent processes or
machines sharing the store directory sweep one campaign concurrently.
``campaign ls``/``gc``/``export`` manage store directories (survey,
compact + repair, streaming merged CSV/JSONL export), ``campaign
report`` renders a self-contained static HTML report over a store root
(constant-memory aggregation; :mod:`repro.analysis.report`), and
``campaign compare`` diffs two roots with automatic regression flagging
(non-zero exit — the CI hook).  ``campaign serve`` runs the store root
as a multi-tenant HTTP daemon (:mod:`repro.campaign.serve`) and
``campaign submit/status/wait`` talk to it — every tenant's submissions
dedup against each other and against pre-daemon campaigns through the
shared root.  Each subcommand prints its artefact to
stdout (progress goes to stderr); ``--json FILE`` additionally dumps the
raw rows/series for downstream plotting.

The full reference with worked examples is ``docs/cli.md``.
"""

import argparse
import json
import os
import sys

from repro.analysis import report as analysis_report
from repro.campaign import gc as store_gc
from repro.campaign import paper
from repro.campaign import rows as store_rows
from repro.campaign import serve
from repro.campaign.client import CampaignClient, ServeError
from repro.campaign.executor import run_campaign
from repro.campaign.index import campaign_dirs
from repro.campaign.spec import CampaignSpec
from repro.experiments.figures import render_figure4
from repro.experiments.runner import default_processes, run_single
from repro.experiments.tables import format_table
from repro.platform.config import PlatformConfig
from repro.platform.scenario import FaultScenario

MODELS = paper.MODELS

#: Default parent directory for ``--resume`` stores.
DEFAULT_CAMPAIGN_ROOT = "campaigns"


def _add_sweep_arguments(parser, command):
    parser.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_PROCESSES, then cpu count)",
    )
    parser.add_argument(
        "--resume", nargs="?", metavar="DIR",
        const=os.path.join(DEFAULT_CAMPAIGN_ROOT, command), default=None,
        help="checkpoint per-run results under DIR (default {}/{}) and "
             "skip cells already recorded there".format(
                 DEFAULT_CAMPAIGN_ROOT, command),
    )
    _add_dedup_arguments(parser)


def _add_dedup_arguments(parser):
    parser.add_argument(
        "--dedup-root", metavar="DIR", default=None,
        help="store root whose cross-campaign dedup index resolves cells "
             "sibling campaigns already computed (default: the store "
             "directory's parent, when it holds sibling campaigns)",
    )
    parser.add_argument(
        "--no-dedup", action="store_true",
        help="skip cross-campaign dedup lookups",
    )


#: ``--help`` footer on the parser and every subcommand: the worked
#: examples live in the docs tree, not in the terminal.
DOCS_EPILOG = "Full reference with worked examples: docs/cli.md"


def build_parser():
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DATE 2020 social-insect RTM evaluation.",
        epilog=DOCS_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def subparser(name, **kwargs):
        # Every subcommand's --help ends by pointing at docs/cli.md.
        kwargs.setdefault("epilog", DOCS_EPILOG)
        return sub.add_parser(name, **kwargs)

    run_p = subparser("run", help="one simulation run")
    run_p.add_argument("--model", default="ffw")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--faults", type=int, default=0)
    run_p.add_argument(
        "--scenario", metavar="FILE",
        help="JSON FaultScenario driving the run's fault injections "
             "(link failures, transients, waves, spatial patterns); "
             "replaces --faults",
    )
    run_p.add_argument(
        "--workload", metavar="FILE",
        help="JSON WorkloadSpec (or builtin name: fork_join, pipeline3, "
             "shuffle2x2) replacing the legacy fork-join application",
    )
    run_p.add_argument("--small", action="store_true",
                       help="4x4 grid instead of full Centurion")
    run_p.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes for sweeps (a single run ignores this; "
             "default: REPRO_PROCESSES, then cpu count)",
    )
    run_p.add_argument("--json", metavar="FILE")

    t1_p = subparser("table1", help="settling/performance, no faults")
    t1_p.add_argument("--runs", type=int, default=15)
    _add_sweep_arguments(t1_p, "table1")
    t1_p.add_argument("--json", metavar="FILE")

    t2_p = subparser("table2", help="recovery/performance vs faults")
    t2_p.add_argument("--runs", type=int, default=15)
    t2_p.add_argument("--faults", default="0,2,4,8,16,32",
                      help="comma-separated fault counts")
    _add_sweep_arguments(t2_p, "table2")
    t2_p.add_argument("--json", metavar="FILE")

    f4_p = subparser("figure4", help="time-series panels")
    f4_p.add_argument("--seed", type=int, default=42)
    _add_sweep_arguments(f4_p, "figure4")
    f4_p.add_argument("--json", metavar="FILE")

    s_p = subparser(
        "scenario",
        help="validate a JSON fault scenario and print its schedule + key",
    )
    s_p.add_argument("file", metavar="FILE", help="scenario JSON file")
    s_p.add_argument("--small", action="store_true",
                     help="validate victims against the 4x4 grid instead "
                          "of full Centurion")
    s_p.add_argument("--seed", type=int, default=1,
                     help="seed used to preview hazard-storm draws")
    s_p.add_argument("--json", metavar="FILE")

    w_p = subparser(
        "workload",
        help="validate a JSON workload spec and print its graph + "
             "capacity preview",
    )
    w_p.add_argument("file", metavar="FILE",
                     help="workload JSON file (or builtin name)")
    w_p.add_argument("--small", action="store_true",
                     help="preview capacity against the 4x4 grid instead "
                          "of full Centurion")
    w_p.add_argument("--json", metavar="FILE")

    c_p = subparser(
        "campaign", help="run a declarative sweep with a persistent store"
    )
    source = c_p.add_mutually_exclusive_group(required=True)
    source.add_argument("--spec", metavar="FILE",
                        help="JSON CampaignSpec to run")
    source.add_argument("--paper", choices=sorted(paper.PAPER_SPECS),
                        help="run a canonical paper campaign")
    c_p.add_argument("--runs", type=int, default=15,
                     help="runs per cell for --paper table1/table2")
    c_p.add_argument("--seed", type=int, default=42,
                     help="seed for --paper figure4")
    c_p.add_argument(
        "--dir", metavar="DIR", default=None,
        help="result store directory (default {}/<name>)".format(
            DEFAULT_CAMPAIGN_ROOT),
    )
    c_p.add_argument(
        "--fresh", action="store_true",
        help="recompute every cell even when the store already has it",
    )
    c_p.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_PROCESSES, then cpu count)",
    )
    c_p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="total distributed worker shards draining this campaign "
             "(pair with --worker-id; cells partition deterministically "
             "by key hash)",
    )
    c_p.add_argument(
        "--worker-id", type=int, default=None, metavar="K",
        help="this worker's shard, 0-based; results append to a private "
             "results.worker-K.jsonl merged on read",
    )
    _add_dedup_arguments(c_p)
    c_p.add_argument("--json", metavar="FILE")

    def _add_manage_arguments(parser):
        parser.add_argument(
            "dirs", nargs="*", metavar="DIR",
            help="explicit campaign directories (default: every "
                 "subdirectory of --root holding a results.jsonl)",
        )
        parser.add_argument(
            "--root", metavar="DIR", default=DEFAULT_CAMPAIGN_ROOT,
            help="campaign store root (default: {})".format(
                DEFAULT_CAMPAIGN_ROOT),
        )

    ls_p = subparser(
        "campaign-ls",
        help="survey campaign store directories (alias: campaign ls)",
    )
    _add_manage_arguments(ls_p)
    ls_p.add_argument("--json", metavar="FILE")

    gc_p = subparser(
        "campaign-gc",
        help="compact campaign stores — dry-run by default "
             "(alias: campaign gc)",
    )
    _add_manage_arguments(gc_p)
    mode = gc_p.add_mutually_exclusive_group()
    mode.add_argument(
        "--dry-run", action="store_true",
        help="plan only, touch nothing (the default)",
    )
    mode.add_argument(
        "--apply", action="store_true",
        help="rewrite the stores: fold worker streams, drop "
             "orphaned/superseded/torn lines, rebuild the root index",
    )

    ex_p = subparser(
        "campaign-export",
        help="export merged rows across campaigns "
             "(alias: campaign export)",
    )
    _add_manage_arguments(ex_p)
    ex_p.add_argument(
        "--format", choices=("jsonl", "csv"), default="jsonl",
        help="jsonl: canonical store records (byte-identical, lossless); "
             "csv: scalar rows with campaign/key columns",
    )
    ex_p.add_argument(
        "--out", metavar="FILE", default=None,
        help="output file (default: stdout)",
    )

    rp_p = subparser(
        "campaign-report",
        help="render a self-contained static HTML report over a store "
             "root (alias: campaign report)",
    )
    _add_manage_arguments(rp_p)
    rp_p.add_argument(
        "--out", metavar="DIR", default=None,
        help="report output directory (default: <root>/report)",
    )
    rp_p.add_argument(
        "--title", default=None,
        help="page title (default: derived from the root's name)",
    )
    rp_p.add_argument("--json", metavar="FILE")

    sv_p = subparser(
        "campaign-serve",
        help="run the multi-tenant sweep daemon over a store root "
             "(alias: campaign serve)",
    )
    sv_p.add_argument(
        "--root", metavar="DIR", default=DEFAULT_CAMPAIGN_ROOT,
        help="store root every tenant's campaigns land under "
             "(default: {})".format(DEFAULT_CAMPAIGN_ROOT),
    )
    sv_p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    sv_p.add_argument(
        "--port", type=int, default=serve.DEFAULT_PORT, metavar="N",
        help="TCP port; 0 picks an ephemeral port "
             "(default: {})".format(serve.DEFAULT_PORT),
    )
    sv_p.add_argument(
        "--workers", type=int, default=2, metavar="K",
        help="worker threads draining the cell queues; cells partition "
             "deterministically by key hash (default: 2)",
    )

    def _add_client_arguments(parser):
        parser.add_argument(
            "--url", metavar="URL",
            default="http://127.0.0.1:{}".format(serve.DEFAULT_PORT),
            help="daemon base URL (default: http://127.0.0.1:{})".format(
                serve.DEFAULT_PORT),
        )
        parser.add_argument("--json", metavar="FILE")

    sb_p = subparser(
        "campaign-submit",
        help="submit a campaign spec to a running daemon "
             "(alias: campaign submit)",
    )
    sb_p.add_argument("spec", metavar="FILE",
                      help="JSON CampaignSpec to submit")
    sb_p.add_argument(
        "--wait", action="store_true",
        help="block until the campaign leaves 'running' and report the "
             "final status (non-zero exit on failed cells)",
    )
    sb_p.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="--wait bound in seconds (default: 300)",
    )
    _add_client_arguments(sb_p)

    st_p = subparser(
        "campaign-status",
        help="status of a submitted campaign (alias: campaign status)",
    )
    st_p.add_argument("id", metavar="ID", help="campaign id (spec name)")
    _add_client_arguments(st_p)

    wt_p = subparser(
        "campaign-wait",
        help="block until a submitted campaign finishes "
             "(alias: campaign wait)",
    )
    wt_p.add_argument("id", metavar="ID", help="campaign id (spec name)")
    wt_p.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="wait bound in seconds (default: 300)",
    )
    _add_client_arguments(wt_p)

    cp_p = subparser(
        "campaign-compare",
        help="diff two store roots and flag regressions — exits "
             "non-zero when any metric regressed "
             "(alias: campaign compare)",
    )
    cp_p.add_argument(
        "baseline", metavar="BASELINE",
        help="baseline store root (or single campaign directory)",
    )
    cp_p.add_argument(
        "candidate", metavar="CANDIDATE",
        help="candidate store root to judge against the baseline",
    )
    cp_p.add_argument(
        "--threshold", type=float,
        default=analysis_report.DEFAULT_THRESHOLD, metavar="FRACTION",
        help="relative change in a metric's worse direction that flags "
             "a regression (default: {})".format(
                 analysis_report.DEFAULT_THRESHOLD),
    )
    cp_p.add_argument("--json", metavar="FILE")

    return parser


def _dump_json(path, payload):
    if path:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)


def _progress_printer(name, stream=sys.stderr):
    """Per-cell progress reporter (stderr, so stdout stays the artefact)."""

    def progress(done, total, cached):
        step = max(1, total // 20)
        if done == total or done % step == 0:
            stream.write(
                "\r{}: {}/{} cells ({} cached)".format(
                    name, done, total, cached
                )
            )
            if done == total:
                stream.write("\n")
            stream.flush()

    return progress


def _run_spec(spec, args, store=None):
    """Execute ``spec`` honouring the shared sweep flags."""
    processes = args.processes
    if processes is None:
        processes = default_processes()
    store = store if store is not None else getattr(args, "resume", None)
    dedup_root = None
    if isinstance(store, str) and not getattr(args, "no_dedup", False):
        # Store-backed sweeps consult the store root's dedup index: any
        # cell a sibling campaign already holds is reused, not re-run.
        # Without an explicit --dedup-root the store's parent qualifies
        # only when it actually holds sibling campaigns — an ad-hoc
        # store directory must not make us scan (or drop an index.jsonl
        # into) an unrelated parent directory.
        dedup_root = getattr(args, "dedup_root", None)
        if dedup_root is None:
            candidate = os.path.dirname(os.path.abspath(store))
            own = os.path.basename(os.path.abspath(store))
            if any(name != own for name in campaign_dirs(candidate)):
                dedup_root = candidate
    report = run_campaign(
        spec,
        store=store,
        processes=processes,
        progress=_progress_printer(spec.name),
        use_cache=not getattr(args, "fresh", False),
        dedup_root=dedup_root,
        workers=getattr(args, "workers", None),
        worker_id=getattr(args, "worker_id", None),
    )
    if report.pending_elsewhere:
        # A worker's progress stops short of the grid total, so the
        # \r-progress line is still open — terminate it ourselves.
        sys.stderr.write("\n")
    print(report.summary(), file=sys.stderr)
    return report


def cmd_run(args):
    """``run`` subcommand: one simulation, row + optional JSON."""
    config = PlatformConfig.small() if args.small else PlatformConfig()
    scenario = None
    if args.scenario:
        if args.faults:
            raise SystemExit("give either --faults or --scenario, not both")
        scenario = FaultScenario.from_json_file(args.scenario)
    workload = None
    if args.workload:
        from repro.app.workloads import load_workload

        workload = load_workload(args.workload)
    result = run_single(
        args.model, seed=args.seed, faults=args.faults, config=config,
        scenario=scenario, workload=workload,
    )
    row = result.as_row()
    for key, value in row.items():
        print("{:<24} {}".format(key, value))
    _dump_json(args.json, {"row": row, "series": result.series.as_dict()})
    return 0


def cmd_table1(args):
    """``table1`` subcommand: regenerate Table I as a campaign."""
    report = _run_spec(paper.table1_spec(runs=args.runs), args)
    rows = paper.artifact(report)
    print(format_table(rows, "table1"))
    _dump_json(args.json, rows)
    return 0


def cmd_table2(args):
    """``table2`` subcommand: regenerate Table II as a campaign."""
    fault_counts = [int(f) for f in args.faults.split(",")]
    report = _run_spec(
        paper.table2_spec(runs=args.runs, fault_counts=fault_counts), args
    )
    rows = paper.artifact(report)
    print(format_table(rows, "table2"))
    _dump_json(args.json, rows)
    return 0


def cmd_figure4(args):
    """``figure4`` subcommand: render the six panels as a campaign."""
    report = _run_spec(paper.figure4_spec(seed=args.seed), args)
    data = paper.artifact(report)
    print(render_figure4(data))
    _dump_json(
        args.json,
        {
            str(faults): {
                model: result.series.as_dict()
                for model, result in by_model.items()
            }
            for faults, by_model in data.items()
        },
    )
    return 0


def cmd_scenario(args):
    """``scenario`` subcommand: lint a fault scenario without running it.

    Loads the file (schema validation), applies it to a throwaway
    platform (topology validation of pinned victims, hazard-storm time
    draws at the given seed) and prints the occurrence schedule plus the
    content-hash key that would join campaign cell keys.
    """
    from repro.platform.centurion import CenturionPlatform

    scenario = FaultScenario.from_json_file(args.file)
    config = PlatformConfig.small() if args.small else PlatformConfig()
    platform = CenturionPlatform(config, model_name="none", seed=args.seed)
    platform.inject_scenario(scenario)  # raises on malformed victims
    print("name                     {}".format(scenario.name))
    print("key                      {}".format(scenario.key()))
    print("events                   {}".format(len(scenario.events)))
    print("first_fault_us           {}".format(scenario.first_fault_us()))
    # Storm previews replay the hazard stream on a fresh simulator (the
    # platform's own stream was consumed by inject_scenario): one stream
    # shared across storm events in declaration order, exactly like the
    # injector draws it.
    from repro.platform.faults import HAZARD_STREAM
    from repro.sim.engine import Simulator

    hazard_rng = Simulator(seed=args.seed).rng.stream(HAZARD_STREAM)
    events = []
    warnings = []
    for index, event in enumerate(scenario.events):
        if event.is_storm():
            times = event.occurrence_times(hazard_rng)
            shape = "storm({}/us over {}..{}us)".format(
                event.hazard_per_us, event.at_us, event.horizon_us
            )
        else:
            times = event.occurrence_times()
            shape = "fixed"
        detail = ""
        if event.heat_c is not None:
            detail = " heat_c={}".format(event.heat_c)
        elif event.wait_limit_us is not None:
            detail = " wait_limit_us={}".format(event.wait_limit_us)
            if event.wait_limit_us >= config.deadlock_wait_limit_us:
                warnings.append(
                    "event[{}]: wait_limit_us {} >= config deadlock "
                    "bound {} — the pressure never binds".format(
                        index, event.wait_limit_us,
                        config.deadlock_wait_limit_us,
                    )
                )
        print(
            "event[{}]                 kind={}{} {} occurrences={} "
            "at={}".format(index, event.kind, detail, shape, len(times),
                           times[:8] + ["..."] if len(times) > 8 else times)
        )
        events.append(
            {"kind": event.kind, "occurrences": times,
             "canonical": event.canonical()}
        )
    for warning in warnings:
        print("warning: {}".format(warning), file=sys.stderr)
    dump = {"name": scenario.name, "key": scenario.key(), "events": events}
    if warnings:
        # Joins the dump only when present, keeping dynamics-free
        # lint output byte-identical to earlier releases.
        dump["warnings"] = warnings
    _dump_json(args.json, dump)
    return 0


def cmd_workload(args):
    """``workload`` subcommand: lint a workload spec without running it.

    Loads the file (schema validation), compiles the task graph (branch
    bases, join widths, cycle/fan-in validation) and prints the graph
    summary plus a steady-state capacity preview against the chosen
    platform size — flagging tasks whose arrival demand exceeds the node
    share their mapping weight buys.  Also prints the content-hash key
    that would join campaign cell keys.
    """
    from repro.app.workloads import (
        capacity_report, compile_workload, load_workload,
    )

    spec = load_workload(args.file)
    compiled = compile_workload(spec)
    config = PlatformConfig.small() if args.small else PlatformConfig()
    num_nodes = config.width * config.height
    print("name                     {}".format(spec.name))
    print("key                      {}".format(spec.key()))
    print("tasks                    {}".format(len(spec.tasks)))
    print("sources                  {}".format(spec.source_ids()))
    print("joins                    {}".format(spec.join_ids()))
    print("sinks                    {}".format(list(compiled.sink_ids)))
    print("multicast                {}".format(spec.multicast))
    rows, warnings = capacity_report(compiled, num_nodes)
    print("capacity ({} nodes):".format(num_nodes))
    for row in rows:
        print(
            "  task[{}] {:<16} rate={:.3f}/ms service={}us "
            "demand={:.2f} share={:.2f} util={:.2f} peak={:.2f}".format(
                row["task"], row["name"], row["rate_per_ms"],
                row["service_us"], row["demand_nodes"], row["share_nodes"],
                row["utilization"], row["peak_utilization"],
            )
        )
    for warning in warnings:
        print("warning: {}".format(warning), file=sys.stderr)
    dump = {
        "name": spec.name,
        "key": spec.key(),
        "spec": spec.to_dict(),
        "capacity": rows,
    }
    if warnings:
        # Joins the dump only when present, keeping clean-spec lint
        # output free of an empty warnings stanza.
        dump["warnings"] = warnings
    _dump_json(args.json, dump)
    return 0


def cmd_campaign(args):
    """``campaign`` subcommand: spec file or canonical paper campaign."""
    if (args.workers is None) != (args.worker_id is None):
        raise SystemExit("--workers and --worker-id go together")
    if args.spec:
        spec = CampaignSpec.from_json_file(args.spec)
    elif args.paper in ("table1", "table2"):
        spec = paper.PAPER_SPECS[args.paper](runs=args.runs)
    else:
        spec = paper.PAPER_SPECS[args.paper](seed=args.seed)
    store = args.dir or os.path.join(DEFAULT_CAMPAIGN_ROOT, spec.name)
    report = _run_spec(spec, args, store=store)
    if report.pending_elsewhere:
        # A worker shard's report is partial by design: no artefact yet.
        print(
            "worker {} drained its shard; {} cells belong to other "
            "workers — rerun without --worker-id once the fleet is done "
            "to assemble the artefact".format(
                report.worker_id, report.pending_elsewhere
            ),
            file=sys.stderr,
        )
        return 0
    artefact = paper.artifact(report)
    if spec.kind in ("table1", "table2"):
        print(format_table(artefact, spec.kind))
        _dump_json(args.json, artefact)
    elif spec.kind == "figure4":
        print(render_figure4(artefact))
        _dump_json(
            args.json,
            {
                str(faults): {
                    model: result.series.as_dict()
                    for model, result in by_model.items()
                }
                for faults, by_model in artefact.items()
            },
        )
    else:
        for row in artefact:
            print(json.dumps(row, sort_keys=True))
        _dump_json(args.json, artefact)
    return 0


def _manage_dirs(args):
    """The campaign directories a management subcommand operates on."""
    if args.dirs:
        return list(args.dirs)
    return [
        os.path.join(args.root, name) for name in campaign_dirs(args.root)
    ]


def cmd_campaign_ls(args):
    """``campaign ls``: survey campaign store directories."""
    dirs = _manage_dirs(args)
    if not dirs:
        print("no campaign directories under {}".format(args.root))
        return 0
    summaries = [store_gc.summarize(directory) for directory in dirs]
    header = "{:<18} {:<8} {:>9} {:>6} {:>9} {:>11} {:>5} {:>8}".format(
        "campaign", "kind", "cells", "done%", "orphaned", "superseded",
        "torn", "workers",
    )
    print(header)
    for summary in summaries:
        if summary.spec_cells is None:
            cells, done = str(summary.stored), "-"
        else:
            cells = "{}/{}".format(summary.current, summary.spec_cells)
            done = "{:.0f}%".format(summary.completion())
        print("{:<18} {:<8} {:>9} {:>6} {:>9} {:>11} {:>5} {:>8}".format(
            summary.name, summary.kind, cells, done, summary.orphaned,
            summary.superseded, summary.torn, summary.worker_files,
        ))
    _dump_json(args.json, [summary.as_dict() for summary in summaries])
    return 0


def cmd_campaign_gc(args):
    """``campaign gc``: compact stores (dry-run unless ``--apply``)."""
    report = store_gc.gc_root(
        args.root, dirs=args.dirs or None, apply=args.apply
    )
    verb = "dropped" if args.apply else "would drop"
    for summary in report.summaries:
        print(
            "{}: {} {} superseded, {} orphaned, {} torn/garbage lines; "
            "{} worker streams {}".format(
                summary.name, verb, summary.superseded, summary.orphaned,
                summary.torn, summary.worker_files,
                "folded" if args.apply else "to fold",
            )
        )
    if report.applied:
        print("index: rebuilt at {}".format(
            os.path.join(args.root, "index.jsonl")))
    elif report.has_index:
        print("index: {} stale entries, {} stored keys unindexed".format(
            report.index_stale, report.index_missing))
    if not args.apply:
        print("(dry run — pass --apply to execute)")
    return 0


def cmd_campaign_export(args):
    """``campaign export``: merged rows across campaign directories.

    Streams — the merged-record iterator yields one record at a time
    and the writers hold none, so a sweep-scale root exports in O(keys)
    memory.  CSV runs a header-discovery pass first (the column union
    must be known before the first row is written).
    """
    dirs = _manage_dirs(args)
    if args.format == "csv":
        columns = store_gc.csv_columns(dirs)

        def writer(stream):
            return store_gc.export_csv(
                store_rows.iter_merged_records(dirs), stream,
                columns=columns,
            )
    else:
        def writer(stream):
            return store_gc.export_jsonl(
                store_rows.iter_merged_records(dirs), stream
            )
    if args.out:
        with open(args.out, "w") as stream:
            count = writer(stream)
        print("exported {} rows to {}".format(count, args.out),
              file=sys.stderr)
    else:
        writer(sys.stdout)
    return 0


def cmd_campaign_report(args):
    """``campaign report``: static HTML + JSON summary over a root.

    Aggregates the root's merged rows in one streaming pass (O(groups)
    memory) and writes ``index.html`` (self-contained: inline CSS and
    SVG, zero external assets) plus ``summary.json`` next to it.
    Prints the HTML path; ``--json`` additionally dumps the aggregate
    summary payload.
    """
    html_path = analysis_report.write_report(
        args.root, out_dir=args.out, dirs=args.dirs or None,
        title=args.title,
    )
    print(html_path)
    if args.json:
        summary_path = os.path.join(
            os.path.dirname(html_path), analysis_report.REPORT_JSON
        )
        with open(summary_path) as handle:
            _dump_json(args.json, json.load(handle))
    return 0


def _print_serve_status(status):
    """Key-value status block (the `run` row format)."""
    data = status.as_dict()
    errors = data.pop("errors")
    for key, value in data.items():
        print("{:<24} {}".format(key, value))
    for error in errors:
        print("{:<24} {}: {}".format(
            "error", error.get("cell"), error.get("error")))


def cmd_campaign_serve(args):
    """``campaign serve``: run the sweep daemon until interrupted.

    Prints the bound URL (stdout — the artefact a wrapper script needs,
    especially with ``--port 0``), then serves until SIGINT; shutdown
    drains the queues and refreshes the root's dedup index.
    """
    server = serve.CampaignServer(
        args.root, workers=args.workers, host=args.host, port=args.port
    )
    print(server.url, flush=True)
    print(
        "serving store root {} with {} workers — Ctrl-C stops".format(
            args.root, server.workers
        ),
        file=sys.stderr,
    )
    server.serve_forever()
    return 0


def cmd_campaign_submit(args):
    """``campaign submit``: post a spec file to a running daemon."""
    client = CampaignClient(args.url)
    try:
        status = client.submit(args.spec)
        if args.wait:
            status = client.wait(status.id, timeout=args.timeout)
    except ServeError as exc:
        raise SystemExit("submit failed: {}".format(exc))
    _print_serve_status(status)
    _dump_json(args.json, status.as_dict())
    return 1 if args.wait and status.failed else 0


def cmd_campaign_status(args):
    """``campaign status``: one campaign's live status."""
    client = CampaignClient(args.url)
    try:
        status = client.status(args.id)
    except ServeError as exc:
        raise SystemExit("status failed: {}".format(exc))
    _print_serve_status(status)
    _dump_json(args.json, status.as_dict())
    return 0


def cmd_campaign_wait(args):
    """``campaign wait``: block until a campaign finishes.

    Exits non-zero when any cell failed — the scripting hook mirroring
    ``campaign compare``.
    """
    client = CampaignClient(args.url)
    try:
        status = client.wait(args.id, timeout=args.timeout)
    except (ServeError, TimeoutError) as exc:
        raise SystemExit("wait failed: {}".format(exc))
    _print_serve_status(status)
    _dump_json(args.json, status.as_dict())
    return 1 if status.failed else 0


def cmd_campaign_compare(args):
    """``campaign compare``: regression gate between two store roots.

    Prints the verdict (every flagged group × metric, then OK/FAIL) and
    returns exit code 1 when any metric regressed beyond ``--threshold``
    or a baseline group vanished — the CI hook between campaign
    generations.
    """
    comparison = analysis_report.compare(
        args.baseline, args.candidate, threshold=args.threshold
    )
    print(analysis_report.format_comparison(comparison))
    _dump_json(args.json, comparison.as_dict())
    return 0 if comparison.ok() else 1


COMMANDS = {
    "run": cmd_run,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "figure4": cmd_figure4,
    "scenario": cmd_scenario,
    "workload": cmd_workload,
    "campaign": cmd_campaign,
    "campaign-ls": cmd_campaign_ls,
    "campaign-gc": cmd_campaign_gc,
    "campaign-export": cmd_campaign_export,
    "campaign-report": cmd_campaign_report,
    "campaign-compare": cmd_campaign_compare,
    "campaign-serve": cmd_campaign_serve,
    "campaign-submit": cmd_campaign_submit,
    "campaign-status": cmd_campaign_status,
    "campaign-wait": cmd_campaign_wait,
}

#: ``campaign <action>`` spellings routed to ``campaign-<action>``.
MANAGE_ACTIONS = (
    "ls", "gc", "export", "report", "compare",
    "serve", "submit", "status", "wait",
)


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # `campaign ls/gc/export/report/compare ...` is sugar for the
    # campaign-<action> subcommands (argparse cannot mix
    # `campaign --spec ...` with real nested subparsers).
    if (
        len(argv) > 1
        and argv[0] == "campaign"
        and argv[1] in MANAGE_ACTIONS
    ):
        argv[0:2] = ["campaign-" + argv[1]]
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
