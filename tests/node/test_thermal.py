"""Tests for the synthetic thermal model."""

import pytest

from repro.node.thermal import ThermalModel


def test_idle_node_stays_at_ambient():
    model = ThermalModel(ambient_c=35.0)
    assert model.temperature(0) == 35.0
    assert model.temperature(10**7) == 35.0


def test_activity_raises_temperature():
    model = ThermalModel(ambient_c=35.0, heat_per_busy_us=0.01)
    model.record_busy(now=1000, busy_us=1000)
    assert model.temperature(1000) > 35.0


def test_heat_decays_toward_ambient():
    model = ThermalModel(
        ambient_c=35.0, heat_per_busy_us=0.01, time_constant_us=1000
    )
    model.record_busy(now=0, busy_us=1000)
    hot = model.temperature(0)
    cooler = model.temperature(5000)
    assert 35.0 < cooler < hot
    # After many time constants it is effectively ambient again.
    assert model.temperature(100_000) == pytest.approx(35.0, abs=1e-3)


def test_higher_frequency_ratio_heats_quadratically():
    slow = ThermalModel(heat_per_busy_us=0.01)
    fast = ThermalModel(heat_per_busy_us=0.01)
    slow.record_busy(0, 1000, frequency_ratio=1.0)
    fast.record_busy(0, 1000, frequency_ratio=2.0)
    slow_rise = slow.temperature(0) - slow.ambient_c
    fast_rise = fast.temperature(0) - fast.ambient_c
    assert fast_rise == pytest.approx(4.0 * slow_rise)


def test_sustained_activity_accumulates():
    model = ThermalModel(heat_per_busy_us=0.001, time_constant_us=10**6)
    for t in range(0, 10_000, 1000):
        model.record_busy(t, 1000)
    assert model.temperature(10_000) > model.ambient_c + 5


def test_invalid_time_constant_rejected():
    with pytest.raises(ValueError):
        ThermalModel(time_constant_us=0)
