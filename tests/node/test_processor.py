"""Tests for the processing element."""

import pytest

from repro.noc.network import Network
from repro.noc.packet import Packet, PacketStatus
from repro.noc.topology import MeshTopology
from repro.node.processor import ProcessingElement


class StubApp:
    """Minimal application: task 1 generates, all tasks take 50us."""

    def __init__(self, service_us=50, downstream=None):
        self.service_us = service_us
        self.downstream = downstream or {}
        self.executed = []

    def generation_period(self, task_id):
        return 100 if task_id == 1 else None

    def service_time(self, task_id):
        return self.service_us

    def packets_for_generation(self, pe):
        return [Packet(pe.node_id, dest_task=2, created_at=pe.sim.now)]

    def packets_after_execution(self, pe, packet):
        self.executed.append((pe.node_id, pe.task_id, packet.packet_id))
        downstream = self.downstream.get(pe.task_id)
        if downstream is None:
            return []
        return [Packet(pe.node_id, dest_task=downstream,
                       created_at=pe.sim.now)]


@pytest.fixture
def harness(sim):
    network = Network(sim, topology=MeshTopology(4, 4))
    app = StubApp()
    pes = {}
    for node in network.topology.node_ids():
        pes[node] = ProcessingElement(
            sim, node, network, app=app, queue_capacity=2,
            service_jitter=0.0,
        )
    network.set_deliver_handler(lambda pkt, node: pes[node].receive(pkt))
    return sim, network, app, pes


def _packet(task=2, now=0):
    return Packet(src_node=0, dest_task=task, created_at=now)


class TestTaskAssignment:
    def test_set_task_publishes_to_directory(self, harness):
        sim, network, app, pes = harness
        pes[5].set_task(2)
        assert network.directory.task_of(5) == 2

    def test_init_reason_not_counted_as_switch(self, harness):
        _sim, _net, _app, pes = harness
        pes[5].set_task(2, reason="init")
        assert pes[5].task_switches == 0

    def test_intelligence_switch_counted(self, harness):
        _sim, _net, _app, pes = harness
        pes[5].set_task(2, reason="init")
        pes[5].set_task(3, reason="ffw")
        assert pes[5].task_switches == 1

    def test_same_task_is_noop(self, harness):
        _sim, _net, _app, pes = harness
        pes[5].set_task(2, reason="init")
        pes[5].set_task(2, reason="ffw")
        assert pes[5].task_switches == 0

    def test_switch_requeues_pending_packets(self, harness):
        sim, network, app, pes = harness
        pes[5].set_task(2)
        pes[10].set_task(2)
        executing = _packet()
        queued = _packet()
        pes[5].receive(executing)  # pops straight into execution
        pes[5].receive(queued)     # waits in the queue
        pes[5].set_task(3, reason="ffw")
        sim.run_until(10_000)
        # The queued packet must be re-sent and end up at node 10.
        assert queued.status == PacketStatus.DELIVERED
        assert pes[10].completions == 1


class TestExecution:
    def test_receive_and_complete(self, harness):
        sim, _net, app, pes = harness
        pes[5].set_task(2)
        assert pes[5].receive(_packet())
        sim.run_until(1000)
        assert pes[5].completions == 1
        assert app.executed[0][0] == 5

    def test_service_time_scales_with_frequency(self, harness):
        sim, _net, _app, pes = harness
        pes[5].set_task(2)
        pes[5].frequency.set_frequency(50)  # half speed -> 100us service
        pes[5].receive(_packet())
        sim.run_until(60)
        assert pes[5].completions == 0
        sim.run_until(110)
        assert pes[5].completions == 1

    def test_queue_processes_in_order(self, harness):
        sim, _net, app, pes = harness
        pes[5].set_task(2)
        first = _packet()
        second = _packet()
        pes[5].receive(first)
        pes[5].receive(second)
        sim.run_until(1000)
        executed_ids = [pid for (_n, _t, pid) in app.executed]
        assert executed_ids == [first.packet_id, second.packet_id]

    def test_completion_emits_downstream(self, harness):
        sim, network, app, pes = harness
        app.downstream = {2: 3}
        pes[5].set_task(2)
        pes[10].set_task(3)
        pes[5].receive(_packet())
        sim.run_until(10_000)
        assert pes[10].completions == 1

    def test_window_executions_drain(self, harness):
        sim, _net, _app, pes = harness
        pes[5].set_task(2)
        pes[5].receive(_packet())
        sim.run_until(1000)
        assert pes[5].drain_window_executions() == 1
        assert pes[5].drain_window_executions() == 0


class TestBackpressure:
    def test_mismatched_task_resent(self, harness):
        sim, network, _app, pes = harness
        pes[5].set_task(3)
        pes[10].set_task(2)
        packet = _packet(task=2)
        assert not pes[5].receive(packet)
        sim.run_until(10_000)
        assert packet.status == PacketStatus.DELIVERED
        assert pes[10].completions == 1

    def test_overflow_diverts_to_other_provider(self, harness):
        sim, network, _app, pes = harness
        pes[5].set_task(2)
        pes[10].set_task(2)
        # One packet goes straight to execution, two fill the queue (cap 2),
        # the fourth overflows.
        accepted = [pes[5].receive(_packet()) for _ in range(4)]
        assert accepted == [True, True, True, False]
        assert pes[5].overflows == 1
        sim.run_until(50_000)
        assert pes[10].completions >= 1

    def test_overflow_marks_packet_tried(self, harness):
        _sim, _net, _app, pes = harness
        pes[5].set_task(2)
        packet = _packet()
        for _ in range(3):
            pes[5].receive(_packet())
        pes[5].receive(packet)
        assert 5 in packet.tried_providers()


class TestGeneration:
    def test_source_task_generates_periodically(self, harness):
        sim, network, _app, pes = harness
        pes[0].set_task(1)
        pes[5].set_task(2)
        sim.run_until(1050)
        assert pes[0].generations >= 9
        assert pes[5].completions >= 9

    def test_leaving_source_task_stops_generation(self, harness):
        sim, _net, _app, pes = harness
        pes[0].set_task(1)
        pes[5].set_task(2)
        sim.run_until(500)
        count = pes[0].generations
        pes[0].set_task(3, reason="test")
        sim.run_until(1500)
        assert pes[0].generations == count


class TestKnobsAndFaults:
    def test_clock_gate_pauses_execution(self, harness):
        sim, _net, _app, pes = harness
        pes[5].set_task(2)
        pes[5].set_clock_enabled(False)
        packet = _packet()
        pes[5].receive(packet)  # resent, node gated
        assert pes[5].completions == 0

    def test_clock_reenable_resumes(self, harness):
        sim, _net, _app, pes = harness
        pes[5].set_task(2)
        pes[5].receive(_packet())
        sim.run_until(10)
        pes[5].set_clock_enabled(False)
        pes[5].set_clock_enabled(True)
        sim.run_until(1000)
        assert pes[5].completions == 1

    def test_halt_stops_everything(self, harness):
        sim, _net, _app, pes = harness
        pes[0].set_task(1)
        pes[5].set_task(2)
        pes[0].halt()
        sim.run_until(1000)
        assert pes[0].generations == 0
        assert pes[5].completions == 0

    def test_halted_node_ignores_set_task(self, harness):
        _sim, _net, _app, pes = harness
        pes[5].set_task(2)
        pes[5].halt()
        pes[5].set_task(3, reason="ffw")
        assert pes[5].task_id == 2

    def test_reset_clears_queue_keeps_task(self, harness):
        sim, _net, _app, pes = harness
        pes[5].set_task(2)
        pes[5].receive(_packet())
        pes[5].receive(_packet())
        pes[5].reset()
        assert len(pes[5].queue) == 0
        assert pes[5].task_id == 2


class TestObservers:
    def test_sink_and_completion_events(self, harness, recording_observer):
        sim, _net, _app, pes = harness
        pes[5].add_observer(recording_observer)
        pes[5].set_task(2)
        pes[5].receive(_packet())
        sim.run_until(1000)
        assert recording_observer.sinks == [(5, 2)]
        assert recording_observer.completions == [(5, 2)]

    def test_task_change_event(self, harness, recording_observer):
        _sim, _net, _app, pes = harness
        pes[5].add_observer(recording_observer)
        pes[5].set_task(2)
        assert recording_observer.task_changes == [(5, None, 2)]
