"""Quickstart: build a Centurion platform, run it, inspect it.

Builds a small 4x4 instance of the paper's system with the Foraging-for-
Work intelligence uploaded to every node's AIM, runs 200 simulated
milliseconds of the fork-join workload (Figure 3 of the paper), and tours
the monitor/knob surface of Figure 2a.

Run:  python examples/quickstart.py
"""

from repro import CenturionPlatform, PlatformConfig


def main():
    config = PlatformConfig.small()
    platform = CenturionPlatform(config, model_name="ffw", seed=7)

    print("Platform:", platform)
    print("Initial task census (1:3:1 weighted random):",
          platform.task_census())

    series = platform.run()

    print("\nAfter {} ms:".format(series.time_ms[-1]))
    print("  generated packets  :", platform.workload.generated)
    print("  completed joins    :", platform.workload.joins)
    print("  task switches      :", platform.total_task_switches())
    print("  final task census  :", platform.task_census())
    print("  NoC statistics     :", platform.network.stats)

    # -- the Figure 2a monitor surface of one node -------------------------
    aim = platform.aims[5]
    print("\nNode 5 monitors:")
    for name, value in sorted(aim.monitors.read_all().items()):
        print("  {:<20} {}".format(name, value))

    # -- and its knobs ------------------------------------------------------
    print("\nPulling node 5 knobs: frequency to 200 MHz, then a reset")
    aim.set_frequency(200)
    aim.reset_node()
    print("  knob actuations:", aim.knobs.actuation_counts())

    # -- the Experiment Controller's debug face ------------------------------
    print("\nController debug read of node 5:")
    for key, value in platform.controller.debug_read(5).items():
        print("  {:<20} {}".format(key, value))


if __name__ == "__main__":
    main()
