"""Store management: ``campaign ls``, ``campaign gc``, ``campaign export``.

Every test runs against real campaign directories (small platform, short
horizon) — including pristine v1-style stores, which ls/gc/export must
handle unchanged: a clean directory survives ``gc --apply`` byte-for-byte
and the index stays derivable, never required.
"""

import json
import os

import pytest

from repro.campaign import gc as store_gc
from repro.campaign.executor import run_campaign
from repro.campaign.index import StoreIndex
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import RESULTS_FILE, ResultStore, encode_line
from repro.experiments.cli import main
from repro.platform.config import PlatformConfig

_CONFIG = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)


def _spec(name, fault_counts=(0,)):
    return CampaignSpec(
        name=name, models=("none",), seeds=(1, 2),
        fault_counts=fault_counts, config=_CONFIG,
    )


def _build_root(tmp_path, dedup=True):
    """A root with two real campaigns (the second dedups off the first)."""
    root = str(tmp_path / "campaigns")
    run_campaign(_spec("one"), store=os.path.join(root, "one"),
                 processes=0, dedup_root=root if dedup else None)
    run_campaign(_spec("two", fault_counts=(0, 2)),
                 store=os.path.join(root, "two"),
                 processes=0, dedup_root=root if dedup else None)
    return root


def _results_path(root, name):
    return os.path.join(root, name, RESULTS_FILE)


class TestLs:
    def test_summarize_complete_campaign(self, tmp_path):
        root = _build_root(tmp_path)
        summary = store_gc.summarize(os.path.join(root, "two"))
        assert summary.name == "two"
        assert summary.spec_cells == 4
        assert summary.stored == summary.current == 4
        assert summary.completion() == 100.0
        assert summary.orphaned == summary.superseded == summary.torn == 0

    def test_summarize_counts_stale_keys(self, tmp_path):
        root = _build_root(tmp_path)
        # A key the spec no longer expands to: an orphan.
        with open(_results_path(root, "one"), "a") as handle:
            handle.write(encode_line({"key": "stale", "row": {}}) + "\n")
        summary = store_gc.summarize(os.path.join(root, "one"))
        assert summary.orphaned == 1
        assert summary.stored == 3
        assert summary.current == 2

    def test_summarize_without_spec_is_tolerant(self, tmp_path):
        directory = str(tmp_path / "bare")
        os.makedirs(directory)
        with open(os.path.join(directory, RESULTS_FILE), "w") as handle:
            handle.write(encode_line({"key": "x", "row": {}}) + "\n")
        summary = store_gc.summarize(directory)
        assert summary.spec_cells is None
        assert summary.completion() is None
        assert summary.stored == 1
        assert summary.orphaned == 0  # no spec, no orphan detection

    def test_cli_ls_lists_campaigns(self, tmp_path, capsys):
        root = _build_root(tmp_path)
        assert main(["campaign", "ls", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "one" in out and "two" in out
        assert "100%" in out

    def test_cli_ls_empty_root(self, tmp_path, capsys):
        assert main(["campaign", "ls", "--root", str(tmp_path)]) == 0
        assert "no campaign directories" in capsys.readouterr().out


class TestGc:
    def _corrupt(self, root):
        """Duplicate a record, add an orphan, tear the final line."""
        path = _results_path(root, "one")
        with open(path) as handle:
            first = handle.readline().rstrip("\n")
        with open(path, "a") as handle:
            handle.write(first + "\n")                       # superseded
            handle.write(encode_line({"key": "orphan", "row": {}}) + "\n")
            handle.write('{"key": "torn-mid-wri')            # torn tail

    def test_dry_run_reports_without_touching(self, tmp_path, capsys):
        root = _build_root(tmp_path)
        self._corrupt(root)
        before = open(_results_path(root, "one")).read()
        assert main(["campaign", "gc", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "would drop 1 superseded, 1 orphaned, 1 torn" in out
        assert "dry run" in out
        assert open(_results_path(root, "one")).read() == before

    def test_apply_compacts_and_rebuilds_index(self, tmp_path, capsys):
        root = _build_root(tmp_path)
        self._corrupt(root)
        assert main(["campaign", "gc", "--root", root, "--apply"]) == 0
        assert "rebuilt" in capsys.readouterr().out
        store = ResultStore(os.path.join(root, "one"))
        assert len(store) == 2            # the spec's two cells, only
        assert "orphan" not in store
        with open(_results_path(root, "one")) as handle:
            assert len(handle.readlines()) == 2
        index = StoreIndex(root)
        for key in store.keys():
            assert index.lookup(key)["key"] == key
        assert index.stale_keys() == []

    def test_apply_folds_worker_streams(self, tmp_path):
        root = str(tmp_path)
        spec = _spec("sharded", fault_counts=(0, 2))
        directory = os.path.join(root, "sharded")
        for worker in (0, 1):
            store = ResultStore(directory, worker=worker)
            run_campaign(spec, store=store, processes=0,
                         workers=2, worker_id=worker)
            store.close()
        report = store_gc.gc_root(root, apply=True)
        assert report.summaries[0].worker_files == 2
        assert not [name for name in os.listdir(directory)
                    if name.startswith("results.worker-")]
        assert len(ResultStore(directory)) == spec.size()

    def test_apply_leaves_clean_v1_store_byte_untouched(self, tmp_path):
        root = _build_root(tmp_path, dedup=False)
        before = open(_results_path(root, "two"), "rb").read()
        store_gc.gc_root(root, apply=True)
        assert open(_results_path(root, "two"), "rb").read() == before

    def test_dry_run_reports_index_divergence(self, tmp_path, capsys):
        root = _build_root(tmp_path)
        StoreIndex(root).refresh()
        # Compact a campaign behind the index's back: offsets now stale.
        path = _results_path(root, "one")
        lines = open(path).readlines()
        open(path, "w").writelines(lines[1:])
        assert main(["campaign", "gc", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "stale entries" in out


class TestExport:
    def test_jsonl_export_merges_unique_keys(self, tmp_path, capsys):
        root = _build_root(tmp_path)
        out_file = str(tmp_path / "all.jsonl")
        assert main(["campaign", "export", "--root", root,
                     "--out", out_file]) == 0
        lines = [line for line in open(out_file).read().splitlines() if line]
        keys = [json.loads(line)["key"] for line in lines]
        # "one" (2 cells) ∪ "two" (4 cells) share the 2 zero-fault
        # cells: 4 unique keys, not 6.
        assert len(keys) == len(set(keys)) == 4

    def test_jsonl_export_lines_are_store_lines(self, tmp_path):
        root = _build_root(tmp_path)
        out_file = str(tmp_path / "all.jsonl")
        assert main(["campaign", "export", "--root", root,
                     "--out", out_file]) == 0
        store_lines = set()
        for name in ("one", "two"):
            with open(_results_path(root, name)) as handle:
                store_lines.update(
                    line.rstrip("\n") for line in handle if line.strip()
                )
        exported = set(open(out_file).read().splitlines())
        assert exported <= store_lines

    def test_csv_export_has_campaign_and_row_columns(self, tmp_path):
        root = _build_root(tmp_path)
        out_file = str(tmp_path / "all.csv")
        assert main(["campaign", "export", "--root", root,
                     "--format", "csv", "--out", out_file]) == 0
        lines = open(out_file).read().splitlines()
        header = lines[0].split(",")
        assert header[:2] == ["campaign", "key"]
        assert "settled_performance" in header
        assert len(lines) == 1 + 4

    def test_export_to_stdout(self, tmp_path, capsys):
        root = _build_root(tmp_path)
        assert main(["campaign", "export", "--root", root]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 4

    def test_export_explicit_dirs(self, tmp_path, capsys):
        root = _build_root(tmp_path)
        assert main(["campaign", "export",
                     os.path.join(root, "one")]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2


@pytest.mark.parametrize("action", ["ls", "gc", "export"])
def test_manage_alias_routes_to_subcommand(action, tmp_path, capsys):
    """``campaign <action>`` and ``campaign-<action>`` are the same."""
    root = _build_root(tmp_path, dedup=False)
    assert main(["campaign", action, "--root", root]) == 0
    alias_out = capsys.readouterr().out
    assert main(["campaign-" + action, "--root", root]) == 0
    assert capsys.readouterr().out == alias_out
