"""Tests for threshold decision units."""

import pytest
from hypothesis import given, strategies as st

from repro.core.counters import SaturatingCounter
from repro.core.thresholds import ThresholdUnit


def test_fires_when_counter_exceeds_threshold():
    unit = ThresholdUnit(threshold=3)
    fired = []
    unit.output.connect(fired.append)
    for _ in range(3):
        unit.excite()
    assert fired == []  # equal is not enough
    unit.excite()
    assert len(fired) == 1


def test_reset_on_fire_clears_counter():
    unit = ThresholdUnit(threshold=2, reset_on_fire=True)
    for _ in range(3):
        unit.excite()
    assert unit.value == 0
    assert unit.fires == 1


def test_no_reset_keeps_counting():
    unit = ThresholdUnit(threshold=2, reset_on_fire=False)
    for _ in range(5):
        unit.excite()
    # Fires every excitation above the threshold.
    assert unit.fires == 3
    assert unit.value == 5


def test_inhibit_never_fires():
    unit = ThresholdUnit(
        threshold=1, counter=SaturatingCounter(initial=10)
    )
    fired = []
    unit.output.connect(fired.append)
    unit.inhibit()
    assert fired == []


def test_inhibition_delays_firing():
    unit = ThresholdUnit(threshold=2)
    fired = []
    unit.output.connect(fired.append)
    unit.excite()
    unit.excite()
    unit.inhibit(amount=2)
    unit.excite()
    unit.excite()
    assert len(fired) == 0
    unit.excite()
    assert len(fired) == 1


def test_refractory_swallows_rapid_fires():
    unit = ThresholdUnit(threshold=1, reset_on_fire=False, refractory=3)
    for _ in range(6):
        unit.excite()
    # Crossings at excitation 2..6 but refractory only allows every 3rd.
    assert unit.fires == 2


def test_set_threshold_at_runtime():
    unit = ThresholdUnit(threshold=100)
    unit.excite(amount=50)
    unit.set_threshold(10)
    unit.excite()
    assert unit.fires == 1


def test_adapt_clamps():
    unit = ThresholdUnit(threshold=5)
    unit.adapt(-100, minimum=2)
    assert unit.threshold == 2
    unit.adapt(+10_000, maximum=50)
    assert unit.threshold == 50


def test_headroom():
    unit = ThresholdUnit(threshold=5)
    unit.excite(amount=3)
    assert unit.headroom == 2
    unit.excite(amount=10)  # fires, resets
    assert unit.headroom == 5


def test_negative_threshold_rejected():
    with pytest.raises(ValueError):
        ThresholdUnit(threshold=-1)


def test_payload_travels_through_output():
    unit = ThresholdUnit(threshold=0)
    seen = []
    unit.output.connect(seen.append)
    unit.excite(payload="stimulus")
    assert seen == ["stimulus"]


@given(st.lists(st.booleans(), min_size=1, max_size=100))
def test_fires_never_exceed_excitations(pattern):
    unit = ThresholdUnit(threshold=2, reset_on_fire=True)
    excitations = 0
    for is_excite in pattern:
        if is_excite:
            unit.excite()
            excitations += 1
        else:
            unit.inhibit()
    assert unit.fires <= excitations // 3  # needs 3 net excitations per fire
