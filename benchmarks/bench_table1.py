"""Table I reproduction: settling time and relative performance, no faults.

Paper (DATE 2020, Table I, 100 runs):

    Model                 Settle Q1/Q2/Q3    Perf Q1/Q2/Q3
    No Intelligence        6 /  6 /   7      96 / 100 / 103 %
    Network Interaction   12 / 56 /  58      93 / 102 / 108 %
    Foraging For Work     10 / 86 / 170     105 / 114 / 124 %

Reproduction targets (shape, not absolute numbers): the baseline settles
fastest and defines 100 %; NI lands near the baseline with wider spread;
FFW settles slowest but to clearly the highest performance.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to see
the regenerated table.
"""

import pytest

from benchmarks.harness import gather_zero_fault, runs_per_cell
from repro.experiments.tables import format_table, table1
from repro.platform.config import PlatformConfig


@pytest.fixture(scope="module")
def table1_rows():
    results = gather_zero_fault(PlatformConfig())
    return table1(results)


def test_table1_reproduction(benchmark, table1_rows):
    rows = benchmark.pedantic(
        lambda: table1_rows, rounds=1, iterations=1
    )
    print()
    print("Table I - settling time (ms) and relative performance,")
    print("{} runs per model (paper: 100):".format(runs_per_cell()))
    print(format_table(rows, "table1"))

    by_model = {r["model"]: r for r in rows}
    none = by_model["none"]
    ni = by_model["network_interaction"]
    ffw = by_model["foraging_for_work"]

    # The highlighted case normalises to 100 %.
    assert none["perf_q2"] == pytest.approx(100.0)
    # Baseline settles no slower than the adaptive models (fixed mapping,
    # only pipeline fill).  In this substrate the fill ramp (~250 ms of
    # ms-scale service times) dominates all three settling times, so the
    # paper's 10x ordering compresses to "baseline <= adaptive" within a
    # few sampling windows of tolerance.
    assert none["settling_q2"] <= ni["settling_q2"] + 50.0
    assert none["settling_q2"] <= ffw["settling_q2"] + 50.0
    # FFW reaches clearly the best settled performance (paper: 114 %).
    assert ffw["perf_q2"] > 108.0
    assert ffw["perf_q2"] > ni["perf_q2"]
    # NI lands near the baseline (paper: 102 %, Q1 below 100).
    assert 85.0 < ni["perf_q2"] < ffw["perf_q2"]
