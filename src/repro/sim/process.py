"""Recurring and delayed processes on top of the event kernel.

:class:`PeriodicProcess` models things that tick at a fixed period — the
task-1 packet sources (every 4 ms), the metric sampler (every 10 ms) and the
thermal integrator.  It reschedules itself after each tick and can be stopped
and restarted; restarting re-aligns the phase to "now + period".
"""


class PeriodicProcess:
    """Run ``callback(process)`` every ``period`` µs until stopped.

    Parameters
    ----------
    sim:
        The :class:`repro.sim.engine.Simulator` supplying time.
    period:
        Tick period in µs; must be positive.
    callback:
        Called with the process instance at each tick.
    priority:
        Event priority for the ticks.
    jitter_rng, jitter:
        Optional uniform phase jitter in µs added to every tick, drawn from
        ``jitter_rng``; used by packet sources so that 25 task-1 nodes do not
        all emit in the same microsecond.
    """

    def __init__(self, sim, period, callback, priority=None, jitter_rng=None,
                 jitter=0):
        if period <= 0:
            raise ValueError("period must be positive, got {}".format(period))
        self.sim = sim
        self.period = int(period)
        self.callback = callback
        self.priority = (
            sim.PRIORITY_NORMAL if priority is None else priority
        )
        self.jitter_rng = jitter_rng
        self.jitter = int(jitter)
        self.ticks = 0
        self._event = None
        self._stopped = True

    # -- control -----------------------------------------------------------

    def start(self, initial_delay=None):
        """Begin ticking; first tick after ``initial_delay`` (default period)."""
        self.stop()
        self._stopped = False
        delay = self.period if initial_delay is None else int(initial_delay)
        self._event = self.sim.schedule(
            delay + self._draw_jitter(), self._tick, priority=self.priority
        )
        return self

    def stop(self):
        """Cancel any pending tick; safe to call repeatedly."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self):
        return not self._stopped

    # -- internals ----------------------------------------------------------

    def _draw_jitter(self):
        if self.jitter_rng is None or self.jitter <= 0:
            return 0
        return self.jitter_rng.randrange(0, self.jitter + 1)

    def _tick(self):
        if self._stopped:
            return
        self.ticks += 1
        self.callback(self)
        if not self._stopped:
            self._event = self.sim.schedule(
                self.period + self._draw_jitter(),
                self._tick,
                priority=self.priority,
            )


def delayed_call(sim, delay, callback, priority=None):
    """Schedule a one-shot ``callback()`` after ``delay`` µs; returns handle."""
    if priority is None:
        priority = sim.PRIORITY_NORMAL
    return sim.schedule(delay, callback, priority=priority)
