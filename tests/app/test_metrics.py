"""Tests for the metrics sampler and series."""

import pytest

from repro.app.metrics import MetricsSeries
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig


class TestMetricsSeries:
    def test_append_and_len(self):
        series = MetricsSeries(task_ids=(1, 2))
        series.append(
            time_ms=10.0, active_nodes=4, executions=9, sink_executions=3,
            joins=1, task_switches=0, alive_nodes=16, census={1: 5, 2: 11},
        )
        assert len(series) == 1
        assert series.census[1] == [5]

    def test_missing_census_task_recorded_as_zero(self):
        series = MetricsSeries(task_ids=(1, 2))
        series.append(
            time_ms=10.0, active_nodes=0, executions=0, sink_executions=0,
            joins=0, task_switches=0, alive_nodes=16, census={1: 16},
        )
        assert series.census[2] == [0]

    def test_mean_over_range(self):
        series = MetricsSeries(task_ids=(1,))
        for t, value in ((10, 2), (20, 4), (30, 60)):
            series.append(
                time_ms=float(t), active_nodes=value, executions=0,
                sink_executions=0, joins=0, task_switches=0, alive_nodes=1,
                census={},
            )
        assert series.mean("active_nodes") == 22.0
        assert series.mean("active_nodes", start_ms=10, end_ms=30) == 3.0

    def test_mean_of_empty_range_is_zero(self):
        series = MetricsSeries(task_ids=(1,))
        assert series.mean("active_nodes", start_ms=0, end_ms=10) == 0.0

    def test_window_slice(self):
        series = MetricsSeries(task_ids=(1,))
        for t in (10.0, 20.0, 30.0):
            series.append(
                time_ms=t, active_nodes=0, executions=0, sink_executions=0,
                joins=0, task_switches=0, alive_nodes=1, census={},
            )
        assert series.window_slice(15, 35) == [1, 2]

    def test_as_dict_roundtrip(self):
        series = MetricsSeries(task_ids=(1,))
        series.append(
            time_ms=10.0, active_nodes=1, executions=2, sink_executions=3,
            joins=4, task_switches=5, alive_nodes=6, census={1: 7},
        )
        data = series.as_dict()
        assert data["joins"] == [4]
        assert data["census"][1] == [7]


class TestSamplerOnPlatform:
    @pytest.fixture(scope="class")
    def platform(self):
        p = CenturionPlatform(
            PlatformConfig.small(), model_name="none", seed=5
        )
        p.run(100_000)
        return p

    def test_window_count(self, platform):
        # 100ms at 10ms windows.
        assert len(platform.series) == 10

    def test_time_axis_in_ms(self, platform):
        assert platform.series.time_ms[0] == 10.0
        assert platform.series.time_ms[-1] == 100.0

    def test_census_sums_to_alive_nodes(self, platform):
        series = platform.series
        for i in range(len(series)):
            total = sum(series.census[t][i] for t in series.census)
            assert total == series.alive_nodes[i]

    def test_active_nodes_bounded_by_alive(self, platform):
        series = platform.series
        assert all(
            a <= alive
            for a, alive in zip(series.active_nodes, series.alive_nodes)
        )

    def test_baseline_has_no_switches(self, platform):
        assert sum(platform.series.task_switches) == 0

    def test_executions_accumulate(self, platform):
        assert sum(platform.series.executions) > 0
