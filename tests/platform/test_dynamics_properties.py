"""Property-based tests for the physical models behind the dynamics seam.

Hypothesis layers over the thermal RC model, the frequency scaler, and
the hysteresis governor: invariants that must hold for *any* input, not
just the handful of operating points the unit tests pin.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.node.dvfs import (
    FrequencyScaler,
    MAX_FREQUENCY_MHZ,
    MIN_FREQUENCY_MHZ,
)
from repro.node.thermal import ThermalModel
from repro.platform.dynamics import HysteresisGovernor

times = st.integers(min_value=0, max_value=10_000_000)
heats = st.floats(
    min_value=0.0, max_value=200.0, allow_nan=False, allow_infinity=False
)
temperatures = st.floats(
    min_value=-40.0, max_value=200.0, allow_nan=False, allow_infinity=False
)


@given(heat=heats, t1=times, t2=times)
def test_thermal_decay_is_monotone_toward_ambient(heat, t1, t2):
    """With no new heat, a later read is never hotter — and never cools
    past ambient."""
    model = ThermalModel()
    model.inject_heat(0, heat)
    early, late = sorted((t1, t2))
    temp_early = model.temperature(early)
    temp_late = model.temperature(late)
    assert temp_late <= temp_early
    assert temp_late >= model.ambient_c


@given(
    events=st.lists(
        st.tuples(times, st.integers(min_value=0, max_value=100_000), heats),
        max_size=20,
    ),
    probe=times,
)
def test_thermal_never_reads_below_ambient(events, probe):
    """No sequence of busy work and injected heat can read sub-ambient."""
    model = ThermalModel()
    for now, busy_us, heat in sorted(events):
        model.record_busy(now, busy_us)
        model.inject_heat(now, heat)
    assert model.temperature(probe) >= model.ambient_c


@given(
    f1=st.integers(min_value=MIN_FREQUENCY_MHZ, max_value=MAX_FREQUENCY_MHZ),
    f2=st.integers(min_value=MIN_FREQUENCY_MHZ, max_value=MAX_FREQUENCY_MHZ),
    duration=st.integers(min_value=0, max_value=10_000_000),
)
def test_scale_duration_monotone_in_frequency(f1, f2, duration):
    """A slower clock never shortens a task, and every scaled duration
    stays on the integer clock at >= 1 µs."""
    slow, fast = sorted((f1, f2))
    scaler = FrequencyScaler()
    scaler.set_frequency(fast)
    at_fast = scaler.scale_duration(duration)
    scaler.set_frequency(slow)
    at_slow = scaler.scale_duration(duration)
    assert at_slow >= at_fast >= 1
    assert isinstance(at_slow, int) and isinstance(at_fast, int)


@settings(max_examples=200)
@given(
    dwell=st.integers(min_value=1, max_value=100_000),
    readings=st.lists(st.tuples(times, temperatures), min_size=1, max_size=50),
)
def test_hysteresis_never_actuates_faster_than_dwell(dwell, readings):
    """However the temperature thrashes, consecutive governor actuations
    are always at least ``dwell_us`` apart."""
    gov = HysteresisGovernor(
        hot_c=70.0, cool_c=60.0, throttle_mhz=50, dwell_us=dwell
    )
    throttled = False
    change_times = []
    for now, temp in sorted(readings):
        action = gov.decide(now, temp, throttled)
        if action == "throttle":
            throttled = True
            change_times.append(now)
        elif action == "restore":
            throttled = False
            change_times.append(now)
    for earlier, later in zip(change_times, change_times[1:]):
        assert later - earlier >= dwell
