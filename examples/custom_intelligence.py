"""Writing a custom intelligence model (the extension path).

The paper's discussion section sketches next steps beyond the two
evaluated schemes — adaptive thresholds, thermal closing-of-the-loop via
the frequency knob.  This example builds one: a thermal-aware
stimulus-threshold model that

* forages for work like FFW (it reuses the drop/lateness arming), but
* watches the temperature monitor each tick and throttles the node's
  frequency (the 10-300 MHz knob) when it runs hot, restoring nominal
  frequency once cooled — Figure 2a's sense-react loop closed through
  DVFS.

Everything is built from the public surface: subclass
``ForagingForWorkModel``, read ``aim.monitors``, pull ``aim.knobs``.

Run:  python examples/custom_intelligence.py
"""

from repro import CenturionPlatform, PlatformConfig
from repro.core.models.base import FACTORS
from repro.core.models.foraging_for_work import ForagingForWorkModel


class ThermalForagingModel(ForagingForWorkModel):
    """FFW plus a thermal-throttling pathway.

    Parameters
    ----------
    hot_c / cool_c:
        Throttle above ``hot_c``; restore nominal below ``cool_c``.
    throttled_mhz:
        Frequency while throttled.
    """

    name = "thermal_foraging"
    factors = ForagingForWorkModel.factors | frozenset(
        {FACTORS.BEHAVIOURAL_STATE}
    )

    def __init__(self, task_ids, hot_c=45.0, cool_c=40.0,
                 throttled_mhz=50, **ffw_kwargs):
        super().__init__(task_ids, **ffw_kwargs)
        self.hot_c = hot_c
        self.cool_c = cool_c
        self.throttled_mhz = throttled_mhz
        self.throttled = False
        self.throttle_events = 0

    def on_tick(self, aim, now):
        super().on_tick(aim, now)
        temperature = aim.monitors.read("temperature_c")
        if not self.throttled and temperature > self.hot_c:
            aim.set_frequency(self.throttled_mhz)
            self.throttled = True
            self.throttle_events += 1
        elif self.throttled and temperature < self.cool_c:
            aim.set_frequency(aim.pe.frequency.nominal_mhz)
            self.throttled = False


def main():
    # Make nodes heat up visibly: crank the thermal model's sensitivity.
    config = PlatformConfig.small(horizon_us=300_000)
    platform = CenturionPlatform(config, model_name="none", seed=3)
    for pe in platform.pes.values():
        pe.thermal.heat_per_busy_us = 0.001
        pe.thermal.time_constant_us = 100_000

    # Upload the custom program to every AIM (as the Experiment Controller
    # uploads PicoBlaze code on the real platform).
    task_ids = platform.graph.task_ids()
    for aim in platform.aims.values():
        aim.upload_model(ThermalForagingModel(task_ids))

    series = platform.run()

    throttles = sum(
        aim.model.throttle_events for aim in platform.aims.values()
    )
    hottest = max(
        pe.thermal.temperature(platform.sim.now)
        for pe in platform.pes.values()
    )
    frequencies = sorted(
        {pe.frequency.current_mhz for pe in platform.pes.values()}
    )
    print("Custom model:", ThermalForagingModel.name)
    print("  extra factor set   :", sorted(ThermalForagingModel.factors))
    print("  joins completed    :", platform.workload.joins)
    print("  task switches      :", platform.total_task_switches())
    print("  throttle events    :", throttles)
    print("  hottest node now   : {:.2f} C".format(hottest))
    print("  frequencies in use :", frequencies, "MHz")
    print("  active nodes, last five windows:", series.active_nodes[-5:])
    if throttles:
        print("The thermal pathway engaged: hot nodes slowed themselves and"
              " recovered.")
    else:
        print("No node crossed the thermal threshold this run; raise"
              " heat_per_busy_us to see throttling.")


if __name__ == "__main__":
    main()
