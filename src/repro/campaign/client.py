"""Thin typed client for the :mod:`repro.campaign.serve` daemon.

Stdlib-only (``urllib``): :class:`CampaignClient` wraps the daemon's
HTTP surface in typed calls, decoding status payloads into
:class:`CampaignStatus` and structured error bodies into
:class:`ServeError`.  The CLI verbs ``campaign submit/status/wait`` are
thin shells over this class; scripts can use it directly::

    from repro.campaign.client import CampaignClient

    client = CampaignClient("http://127.0.0.1:8642")
    receipt = client.submit({"name": "sweep", "models": ["ffw"],
                             "seeds": [1, 2], "base": "small"})
    final = client.wait(receipt.id)
    assert final.state == "completed" and final.failed == 0
"""

import dataclasses
import json
import time
import urllib.error
import urllib.request

#: Default per-request timeout (seconds).  Requests are cheap — the
#: daemon answers status from memory — so a stall means a dead server.
DEFAULT_TIMEOUT = 30.0


class ServeError(RuntimeError):
    """A non-2xx daemon response, carrying the structured error body."""

    def __init__(self, status, payload):
        error = {}
        if isinstance(payload, dict):
            error = payload.get("error") or {}
        super().__init__(
            "HTTP {}: {} ({})".format(
                status,
                error.get("message", "no error body"),
                error.get("type", "unknown"),
            )
        )
        self.status = status
        self.kind = error.get("type")
        self.payload = payload


@dataclasses.dataclass(frozen=True)
class CampaignStatus:
    """One campaign's decoded status payload."""

    id: str
    state: str
    total: int
    done: int
    pending: int
    cached: int
    executed: int
    deduped: int
    failed: int
    submissions: int
    errors: tuple

    @classmethod
    def from_payload(cls, payload):
        """Decode a daemon status payload into a typed status."""
        return cls(
            id=payload["id"],
            state=payload["state"],
            total=payload["total"],
            done=payload["done"],
            pending=payload["pending"],
            cached=payload["cached"],
            executed=payload["executed"],
            deduped=payload["deduped"],
            failed=payload["failed"],
            submissions=payload["submissions"],
            errors=tuple(payload.get("errors", ())),
        )

    def as_dict(self):
        """JSON-friendly dump (the ``--json`` payload of the CLI verbs)."""
        data = dataclasses.asdict(self)
        data["errors"] = list(self.errors)
        return data


class CampaignClient:
    """Typed HTTP client for one ``campaign serve`` daemon."""

    def __init__(self, url, timeout=DEFAULT_TIMEOUT):
        self.base = url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method, path, payload=None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", "replace")
            try:
                parsed = json.loads(body)
            except ValueError:
                parsed = {"error": {"type": "opaque", "message": body}}
            raise ServeError(exc.code, parsed) from None

    # -- endpoints -----------------------------------------------------------

    def healthz(self):
        """The liveness payload (raises on a dead or sick daemon)."""
        return self._request("GET", "/healthz")

    def metrics(self):
        """Server-wide counters."""
        return self._request("GET", "/metrics")

    def campaigns(self):
        """Status of every registered campaign."""
        return [
            CampaignStatus.from_payload(payload)
            for payload in self._request("GET", "/campaigns")["campaigns"]
        ]

    def submit(self, spec):
        """Submit a campaign spec (dict, ``CampaignSpec``, or JSON path).

        Returns the submission receipt as a :class:`CampaignStatus`;
        a malformed spec raises :class:`ServeError` with the daemon's
        structured 4xx body.
        """
        if hasattr(spec, "to_dict"):
            spec = spec.to_dict()
        elif isinstance(spec, str):
            with open(spec) as handle:
                spec = json.load(handle)
        return CampaignStatus.from_payload(
            self._request("POST", "/campaigns", payload=spec)
        )

    def status(self, campaign_id):
        """Current status of one campaign."""
        return CampaignStatus.from_payload(
            self._request("GET", "/campaigns/{}".format(campaign_id))
        )

    def wait(self, campaign_id, timeout=300.0, poll_s=0.05):
        """Poll until the campaign leaves ``running``; returns the final
        status.  Raises :class:`TimeoutError` when ``timeout`` elapses
        first (the campaign keeps running server-side)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(campaign_id)
            if status.state != "running":
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    "campaign {!r} still running after {}s "
                    "({}/{} cells done)".format(
                        campaign_id, timeout, status.done, status.total
                    )
                )
            time.sleep(poll_s)

    def events(self, campaign_id, follow=False):
        """Yield the campaign's NDJSON progress events as dicts.

        ``follow=True`` keeps the stream open until the campaign leaves
        ``running`` — the live tail a dashboard would consume.
        """
        path = "/campaigns/{}/events".format(campaign_id)
        if follow:
            path += "?follow=1"
        request = urllib.request.Request(
            self.base + path, headers={"Accept": "application/x-ndjson"}
        )
        try:
            response = urllib.request.urlopen(
                request, timeout=self.timeout
            )
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", "replace")
            try:
                parsed = json.loads(body)
            except ValueError:
                parsed = {"error": {"type": "opaque", "message": body}}
            raise ServeError(exc.code, parsed) from None
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
