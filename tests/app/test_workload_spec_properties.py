"""Property tests (hypothesis) for the declarative workload schema.

Mirrors the fault-scenario properties: the guarantees a workload author
relies on without reading the implementation:

* serialisation is lossless — ``to_dict`` → JSON → ``from_dict`` is the
  identity, and canonical form / content key survive the round trip;
* the content key hashes *content*, not representation — reordering the
  keys of the JSON dicts cannot change it;
* malformed tasks and arrivals are rejected at construction, not when a
  platform first runs the spec;
* the arrival curve is a probability — ``rate_at`` stays within
  ``[0, 1]`` for every shape at every time, and ``mean_rate`` with it.
"""

import json

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

import pytest

from repro.app.workloads.arrivals import ARRIVAL_SHAPES, ArrivalSpec
from repro.app.workloads.spec import TaskSpec, WorkloadSpec

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

periods = st.integers(min_value=1, max_value=100_000)
services = st.integers(min_value=1, max_value=50_000)


@st.composite
def arrivals(draw):
    shape = draw(st.sampled_from(ARRIVAL_SHAPES))
    fields = {"period_us": draw(periods)}
    if shape == "burst":
        fields["shape"] = shape
        fields["burst_ticks"] = draw(st.integers(min_value=1, max_value=64))
        fields["idle_ticks"] = draw(st.integers(min_value=1, max_value=64))
    elif shape == "diurnal":
        fields["shape"] = shape
        fields["cycle_us"] = draw(
            st.integers(min_value=2, max_value=10**6)
        )
        if draw(st.booleans()):
            fields["floor"] = draw(
                st.floats(
                    min_value=0.0, max_value=0.99,
                    allow_nan=False, allow_infinity=False,
                )
            )
    return ArrivalSpec(**fields)


@st.composite
def task_lists(draw):
    """A valid task set: unique ids, edges to known ids, >= 1 source."""
    count = draw(st.integers(min_value=1, max_value=5))
    ids = draw(
        st.lists(
            st.integers(min_value=1, max_value=99),
            min_size=count, max_size=count, unique=True,
        )
    )
    tasks = []
    for index, task_id in enumerate(ids):
        fields = {"task_id": task_id, "service_us": draw(services)}
        if draw(st.booleans()):
            fields["name"] = draw(st.text(min_size=1, max_size=12))
        if draw(st.booleans()):
            fields["weight"] = draw(st.integers(min_value=1, max_value=8))
        if draw(st.booleans()):
            fields["deadline_us"] = draw(
                st.none() | st.integers(min_value=1, max_value=10**6)
            )
        dests = draw(
            st.lists(
                st.sampled_from(ids), max_size=3, unique=True,
            )
        )
        fields["downstream"] = tuple(
            {"task": dest, "fanout": draw(
                st.integers(min_value=1, max_value=4)
            )}
            for dest in dests
        )
        # The first task is always a source so the spec validates; the
        # rest coin-flip between source, join and pass-through.
        role = 0 if index == 0 else draw(st.integers(0, 2))
        if role == 0:
            fields["arrival"] = draw(arrivals())
        elif role == 1:
            fields["join"] = True
        elif draw(st.booleans()):
            dist = draw(st.sampled_from(("uniform", "exponential")))
            fields["service_dist"] = dist
            if dist == "uniform":
                fields["service_spread"] = draw(
                    st.floats(
                        min_value=0.01, max_value=1.0,
                        allow_nan=False, allow_infinity=False,
                    )
                )
        tasks.append(TaskSpec(**fields))
    return tuple(tasks)


specs = st.builds(
    WorkloadSpec,
    name=st.text(min_size=1, max_size=24),
    tasks=task_lists(),
    packet_flits=st.integers(min_value=1, max_value=16),
    multicast=st.booleans(),
    per_task_series=st.booleans(),
)


def _reorder(value):
    """Recursively rebuild dicts with reversed key-insertion order."""
    if isinstance(value, dict):
        return {
            key: _reorder(value[key]) for key in reversed(list(value))
        }
    if isinstance(value, list):
        return [_reorder(item) for item in value]
    return value


@SETTINGS
@given(spec=specs)
def test_json_round_trip_is_identity(spec):
    dumped = json.loads(json.dumps(spec.to_dict()))
    rebuilt = WorkloadSpec.from_dict(dumped)
    assert rebuilt == spec
    assert rebuilt.canonical() == spec.canonical()
    assert rebuilt.key() == spec.key()


@SETTINGS
@given(spec=specs)
def test_key_is_stable_under_dict_key_reordering(spec):
    shuffled = _reorder(spec.to_dict())
    assert WorkloadSpec.from_dict(shuffled).key() == spec.key()


@SETTINGS
@given(spec=specs)
def test_to_dict_omits_task_defaults(spec):
    from repro.app.workloads.spec import _TASK_DEFAULTS

    for task, dumped in zip(spec.tasks, spec.to_dict()["tasks"]):
        for field, default in _TASK_DEFAULTS.items():
            if getattr(task, field) == default:
                assert field not in dumped


@SETTINGS
@given(
    arrival=arrivals(),
    t_us=st.integers(min_value=0, max_value=10**9),
)
def test_arrival_curve_is_a_probability(arrival, t_us):
    rate = arrival.rate_at(t_us)
    assert 0.0 <= rate <= 1.0
    assert 0.0 <= arrival.mean_rate() <= 1.0


@SETTINGS
@given(service_us=st.integers(max_value=0))
def test_non_positive_service_rejected(service_us):
    with pytest.raises(ValueError):
        TaskSpec(task_id=1, service_us=service_us)


@SETTINGS
@given(shape=st.text(min_size=1, max_size=12))
def test_unknown_arrival_shapes_rejected(shape):
    assume(shape not in ARRIVAL_SHAPES)
    with pytest.raises(ValueError):
        ArrivalSpec(period_us=1_000, shape=shape)


@SETTINGS
@given(key=st.text(min_size=1, max_size=12))
def test_unknown_task_keys_rejected(key):
    from repro.app.workloads.spec import _TASK_DEFAULTS

    assume(key not in _TASK_DEFAULTS and key not in ("id", "service_us"))
    with pytest.raises(ValueError):
        TaskSpec.from_dict({"id": 1, "service_us": 100, key: 1})
