"""Heat maps: ASCII spatial grids and the shared inline-SVG renderer.

The emergent behaviours of the paper are *spatial* — providers migrate onto
traffic corridors, recovery re-forms the topology around a dead region —
and a per-node map at a chosen instant shows them directly.  Values are
rendered row by row in grid orientation (row 0 at the top, matching
Figure 2's layout with the Experiment Controller attached to the top row).

:func:`svg_heatmap` is the grid renderer's report-grade twin: a
dependency-free inline-SVG heat matrix (one sequential hue, light→dark,
value labels in every cell, native ``<title>`` hover) shared with the
``campaign report`` HTML pages (:mod:`repro.analysis.report`), so the
spatial maps and the campaign panels carry one visual language.
"""

from xml.sax.saxutils import escape

#: Sequential blue ramp (light → dark), the single-hue magnitude scale
#: shared by every SVG heat panel.  Ordered so the lightest step means
#: "near zero" and recedes toward the page surface.
SEQUENTIAL_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: Ramp index from which cell-label ink flips from dark text to white
#: (the darker steps no longer hold 4.5:1 against near-black text).
_LIGHT_INK_FROM = 6


def sequential_color(value, low, high):
    """The ramp colour for ``value`` within ``[low, high]``.

    Returns ``(fill hex, label ink hex)``; a degenerate range maps to
    the middle step so single-valued panels stay readable.
    """
    if value is None:
        return None, None
    if high <= low:
        index = len(SEQUENTIAL_RAMP) // 2
    else:
        fraction = (float(value) - low) / (high - low)
        fraction = min(1.0, max(0.0, fraction))
        index = int(round(fraction * (len(SEQUENTIAL_RAMP) - 1)))
    ink = "#ffffff" if index >= _LIGHT_INK_FROM else "#0b0b0b"
    return SEQUENTIAL_RAMP[index], ink


def render_grid(topology, values, formatter=None, legend=None, title=None):
    """Render a mapping ``node id -> value`` as an ASCII grid.

    Parameters
    ----------
    topology:
        A :class:`repro.noc.topology.MeshTopology`.
    values:
        Mapping from node id to any value; missing nodes render as ``.``.
    formatter:
        Callable value -> short string (default ``str``, truncated to the
        widest cell).
    legend / title:
        Optional footer/header lines.
    """
    fmt = formatter if formatter is not None else str
    cells = {}
    width = 1
    for node in topology.node_ids():
        if node in values:
            text = fmt(values[node])
        else:
            text = "."
        cells[node] = text
        width = max(width, len(text))
    lines = []
    if title:
        lines.append(title)
    for y in range(topology.height):
        row = " ".join(
            cells[topology.node_id(x, y)].rjust(width)
            for x in range(topology.width)
        )
        lines.append(row)
    if legend:
        lines.append(legend)
    return "\n".join(lines)


def task_map(platform):
    """Current task topology: one symbol per node, ``X`` for dead nodes.

    This is the map whose before/after difference is the paper's
    "reorganising the task topology to reflect the task graph".
    """
    values = {}
    for node_id, pe in platform.pes.items():
        if pe.halted:
            values[node_id] = "X"
        elif pe.task_id is None:
            values[node_id] = "."
        else:
            values[node_id] = str(pe.task_id)
    return render_grid(
        platform.network.topology,
        values,
        title="task topology (X = failed node)",
        legend="tasks: " + ", ".join(
            "{}={}".format(t.task_id, t.name)
            for t in platform.graph.tasks.values()
        ),
    )


def activity_map(platform, scale=None):
    """Per-node completed executions, bucketed 0-9 (``*`` = above scale)."""
    completions = {
        node_id: pe.completions for node_id, pe in platform.pes.items()
    }
    top = max(completions.values(), default=0)
    bucket = scale if scale is not None else max(1, top // 9 or 1)

    def fmt(count):
        level = count // bucket
        return "*" if level > 9 else str(level)

    return render_grid(
        platform.network.topology,
        completions,
        formatter=fmt,
        title="execution activity (0-9, * above scale; bucket={})".format(
            bucket),
    )


def temperature_map(platform):
    """Per-node temperature in whole °C at the current instant."""
    now = platform.sim.now
    values = {
        node_id: int(round(pe.thermal.temperature(now)))
        for node_id, pe in platform.pes.items()
    }
    return render_grid(
        platform.network.topology,
        values,
        title="temperature map (degC) at t={} us".format(now),
    )


def switch_map(platform):
    """Per-node intelligence-driven task switches (saturates at 9)."""
    values = {
        node_id: min(9, pe.task_switches)
        for node_id, pe in platform.pes.items()
    }
    return render_grid(
        platform.network.topology,
        values,
        title="task switches per node (capped at 9)",
    )


def queue_map(platform):
    """Instantaneous internal-port queue depth per node."""
    values = {
        node_id: len(pe.queue) for node_id, pe in platform.pes.items()
    }
    return render_grid(
        platform.network.topology,
        values,
        title="queue depth at t={} us".format(platform.sim.now),
    )


def svg_heatmap(row_labels, col_labels, cells, fmt="{:.2f}",
                cell_w=86, cell_h=30, label_w=170):
    """Render a mean-matrix as a self-contained inline-SVG heat panel.

    ``cells[r][c]`` is a number or ``None`` (empty grid coordinate);
    colour is the one-hue sequential ramp scaled to the matrix's own
    min/max, every cell carries its value as a label (ink flips light
    on the dark steps) plus a native ``<title>`` tooltip, and a 2px
    page-colour gap separates the fills.  Pure string assembly — no
    dependencies — and deterministic for a given matrix, so report
    pages rebuild bit-identically.
    """
    values = [v for row in cells for v in row if v is not None]
    low = min(values) if values else 0.0
    high = max(values) if values else 0.0
    width = label_w + cell_w * len(col_labels)
    height = cell_h * (len(row_labels) + 1)
    parts = [
        '<svg class="heatmap" role="img" width="{w}" height="{h}" '
        'viewBox="0 0 {w} {h}" xmlns="http://www.w3.org/2000/svg">'
        .format(w=width, h=height)
    ]
    for c, label in enumerate(col_labels):
        parts.append(
            '<text x="{x}" y="{y}" text-anchor="middle" '
            'class="axis">{t}</text>'.format(
                x=label_w + c * cell_w + cell_w // 2,
                y=cell_h - 10, t=escape(str(label)),
            )
        )
    for r, label in enumerate(row_labels):
        y = (r + 1) * cell_h
        parts.append(
            '<text x="{x}" y="{y}" text-anchor="end" '
            'class="axis">{t}</text>'.format(
                x=label_w - 8, y=y + cell_h // 2 + 4,
                t=escape(str(label)),
            )
        )
        for c, value in enumerate(cells[r]):
            x = label_w + c * cell_w
            if value is None:
                parts.append(
                    '<text x="{x}" y="{y}" text-anchor="middle" '
                    'class="axis">&#183;</text>'.format(
                        x=x + cell_w // 2, y=y + cell_h // 2 + 4,
                    )
                )
                continue
            fill, ink = sequential_color(value, low, high)
            text = fmt.format(value)
            title = "{} / {}: {}".format(label, col_labels[c], text)
            parts.append(
                '<g><title>{title}</title>'
                '<rect x="{x}" y="{y}" width="{w}" height="{h}" rx="3" '
                'fill="{fill}"/>'
                '<text x="{tx}" y="{ty}" text-anchor="middle" '
                'fill="{ink}" class="cell">{text}</text></g>'.format(
                    title=escape(title), x=x + 1, y=y + 1,
                    w=cell_w - 2, h=cell_h - 2, fill=fill,
                    tx=x + cell_w // 2, ty=y + cell_h // 2 + 4,
                    ink=ink, text=escape(text),
                )
            )
    parts.append("</svg>")
    return "".join(parts)
