"""Foraging for Work model (Figure 1 class 5).

Paper §IV-A-2: "Foraging for Work (FFW) has a temporal aspect to the model
and requires three monitors: task of packet routed, packet routed to
internal node, and time since sent.  A threshold circuit is used to detect
when a packet deadline comes too close or has lapsed and setting up an
appropriate timeout counter.  Once this timer expires, the local node
switches to the task of the next packet in the routing queue in order to
sink and process it locally.  Every time a packet is routed internally
(i.e. accepted for processing by the node), that impulse is used to reset
the task switch timeout."

Translation:

* a *lateness detector* watches packets crossing the router; a packet whose
  deadline has lapsed (or is within ``deadline_margin`` of lapsing) arms the
  task-switch timeout and notes the late packet's task as the switch
  candidate — that packet is evidence of work the colony is failing to do
  near here;
* any packet accepted by the local PE resets (disarms) the timeout — a node
  that is being fed is doing a useful task and must not wander off;
* when the armed timeout expires (default 20 ms, the paper's value), the
  node switches to the candidate task — or, failing that, the task of the
  most recent packet in the router's forwarding queue — and the timer
  re-arms only on fresh evidence.

The emergent behaviour is demand-pull: starving or surplus nodes convert to
whatever task's traffic is visibly struggling in their neighbourhood, which
rebalances the task census toward service-weighted demand (FFW's advantage
over NI in the paper's results).
"""

from repro.core.models.base import FACTORS, IDLE, IntelligenceModel

#: The paper's task-switch timeout: "the task switch timeout is set to 20ms".
DEFAULT_FFW_TIMEOUT_US = 20_000


class ForagingForWorkModel(IntelligenceModel):
    """Timeout-driven take-up of visibly-late work.

    Parameters
    ----------
    task_ids:
        All task ids in the system.
    timeout_us:
        Task-switch timeout (µs) once armed.
    deadline_margin_us:
        A packet within this margin of its deadline already counts as
        "coming too close" and arms the timer.
    arm_without_deadline:
        When True (default), packets that carry no deadline arm the timer
        too if the node is idle — this keeps the model functional on
        workloads that do not stamp deadlines.
    """

    name = "foraging_for_work"
    model_number = 5
    factors = frozenset(
        {FACTORS.LOCATION, FACTORS.ONTOGENY, FACTORS.TASK_NEEDS}
    )

    def __init__(self, task_ids, timeout_us=DEFAULT_FFW_TIMEOUT_US,
                 deadline_margin_us=0, arm_without_deadline=True):
        super().__init__(task_ids)
        if timeout_us <= 0:
            raise ValueError("timeout must be positive")
        self.timeout_us = timeout_us
        self.deadline_margin_us = deadline_margin_us
        self.arm_without_deadline = arm_without_deadline
        self.armed_at = None
        self.candidate_task = None
        self.last_sink_at = 0
        self.switches_fired = 0
        self.late_packets_seen = 0

    # -- monitor events -------------------------------------------------------

    def on_packet_routed(self, aim, packet, to_internal, injected):
        """Lateness detector: a late transit packet arms the timeout."""
        if injected or to_internal:
            return
        now = aim.sim.now
        late = False
        if packet.deadline is not None:
            late = now >= packet.deadline - self.deadline_margin_us
        elif self.arm_without_deadline:
            late = True
        if not late:
            return
        self.late_packets_seen += 1
        self.candidate_task = packet.dest_task
        if self.armed_at is None:
            self.armed_at = now

    def on_internal_sink(self, aim, packet):
        """Being fed: disarm the task-switch timeout."""
        self.last_sink_at = aim.sim.now
        self.armed_at = None

    def on_packet_dropped(self, aim, packet):
        """A packet died at this router: the strongest lateness evidence.

        Drops happen when a task has no surviving provider at all (the
        extinction case fault injection can create) or when every provider
        is saturated past the reroute budget.  Either way the dropped
        packet's task is work the colony is visibly failing to do here, so
        it arms the timeout exactly like a lapsed deadline.
        """
        if packet.dest_task not in self.task_ids:
            return
        self.late_packets_seen += 1
        self.candidate_task = packet.dest_task
        if self.armed_at is None:
            self.armed_at = aim.sim.now

    # -- timer ---------------------------------------------------------------------

    def on_tick(self, aim, now):
        """Fire the task switch when the armed timeout has elapsed."""
        if self.armed_at is None:
            return
        if now - self.armed_at < self.timeout_us:
            return
        target = self._pick_target(aim)
        self.armed_at = None
        self.candidate_task = None
        if target is None:
            return
        self.switches_fired += 1
        if aim.current_task() != target:
            aim.switch_task(target)

    def next_wakeup(self, now):
        """Armed deadline, or :data:`IDLE` — FFW is a pure timeout poller.

        ``on_tick`` fires only when ``now - armed_at >= timeout_us``, so
        until ``armed_at + timeout_us`` it is a no-op and the event-mode
        bank can skip every tick in between.  Arming happens exclusively
        in monitor hooks (late transit packet, drop), which the bank
        observes.
        """
        if self.armed_at is None:
            return IDLE
        return self.armed_at + self.timeout_us

    def on_restart(self, aim):
        """Disarm: a timeout armed before the fault is stale evidence."""
        self.armed_at = None
        self.candidate_task = None

    def _pick_target(self, aim):
        """The candidate late task, else the router queue's newest task."""
        if (
            self.candidate_task is not None
            and self.candidate_task in self.task_ids
        ):
            return self.candidate_task
        recent = aim.router.recent_tasks
        for task in reversed(recent):
            if task in self.task_ids:
                return task
        return None

    @property
    def armed(self):
        """True while the task-switch timeout is counting down."""
        return self.armed_at is not None
