"""Serve torture layer: the daemon under concurrency, crashes, restarts.

In the spirit of ``test_store_torture.py``, but one layer up: a live
:class:`~repro.campaign.serve.CampaignServer` (fake ``run_fn`` with an
instrumented per-key execution log — no simulations) is driven through
the failure modes a long-lived multi-tenant service actually meets:

* N concurrent tenants submitting overlapping grids → every shared
  cell executes **exactly once** on the root, and the shared record
  lines are byte-identical across every tenant's store;
* a cell dying mid-execution (``run_fn`` raises — the in-process
  analogue of a killed worker) → the campaign reports ``failed`` with
  no torn records, and a resubmission completes executing only the
  missing cell;
* a hard shutdown (``drain=False``) abandoning queued cells → restart
  + resubmit completes the grid with every cell still executed exactly
  once across both daemon lifetimes;
* a clean restart over a finished root → resubmission is a pure cache
  hit (zero executions) performing exactly **one** ``results.jsonl``
  scan (the ``ResultStore.scans`` pin from ``test_executor.py``), and a
  brand-new tenant dedups against the previous life through the
  persistent index.
"""

import json
import os
import threading
import time

from repro.campaign.client import CampaignClient
from repro.campaign.serve import CampaignServer
from repro.campaign.store import ResultStore
from repro.experiments.runner import RunResult


def make_result(descriptor):
    """Deterministic function of the cell only — so every tenant's
    execution of a shared key encodes the byte-identical record."""
    return RunResult(
        model=descriptor.model,
        seed=descriptor.seed,
        faults=descriptor.faults,
        settling_time_ms=1.0 + descriptor.seed,
        settled_performance=0.9,
        recovery_time_ms=2.0 + descriptor.faults,
        recovered_performance=0.8,
        series=None,
        app_stats={},
        noc_stats={},
        total_switches=descriptor.seed,
    )


class ExecutionLog:
    """Counting ``run_fn``: how often did each cell key really execute?"""

    def __init__(self, delay_s=0.0, poison=None):
        self.lock = threading.Lock()
        self.counts = {}
        self.delay_s = delay_s
        #: Keys that raise on their first execution (crash injection).
        self.poison = set(poison or ())

    def __call__(self, descriptor):
        key = descriptor.key()
        with self.lock:
            self.counts[key] = self.counts.get(key, 0) + 1
            first = self.counts[key] == 1
        if self.delay_s:
            time.sleep(self.delay_s)
        if first and key in self.poison:
            raise RuntimeError("worker killed mid-cell ({})".format(key[:8]))
        return make_result(descriptor)


def grid_payload(name, seeds=(1, 2, 3)):
    return {
        "name": name,
        "models": ["none", "ni"],
        "seeds": list(seeds),
        "fault_counts": [0, 2],
        "base": "small",
    }


def store_lines(root, name):
    """``key -> raw line`` of one campaign's results stream."""
    lines = {}
    with open(os.path.join(root, name, "results.jsonl"), "rb") as handle:
        for line in handle:
            lines[json.loads(line)["key"]] = line
    return lines


def test_concurrent_tenants_execute_shared_cells_exactly_once(tmp_path):
    root = str(tmp_path)
    log = ExecutionLog(delay_s=0.002)
    names = ["tenant-{}".format(i) for i in range(6)]
    with CampaignServer(root, workers=4, run_fn=log) as daemon:
        client = CampaignClient(daemon.url)
        errors = []

        def tenant(name):
            try:
                client.submit(grid_payload(name))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant, args=(name,)) for name in names
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        finals = {name: client.wait(name, timeout=60.0) for name in names}

    grid = grid_payload("x")
    cells = len(grid["models"]) * len(grid["seeds"]) * len(
        grid["fault_counts"]
    )
    # Exactly once: every shared key executed a single time on the root,
    # no matter how many tenants raced to submit it.
    assert log.counts and all(n == 1 for n in log.counts.values())
    assert len(log.counts) == cells
    for final in finals.values():
        assert final.state == "completed"
        assert final.executed + final.deduped == cells
    assert sum(final.executed for final in finals.values()) == cells

    # Every tenant's store holds the byte-identical line per shared key.
    reference = store_lines(root, names[0])
    assert set(reference) == set(log.counts)
    for name in names[1:]:
        assert store_lines(root, name) == reference


def test_concurrent_same_name_submissions_are_idempotent(tmp_path):
    root = str(tmp_path)
    log = ExecutionLog(delay_s=0.002)
    payload = grid_payload("shared-name")
    with CampaignServer(root, workers=3, run_fn=log) as daemon:
        client = CampaignClient(daemon.url)
        threads = [
            threading.Thread(target=client.submit, args=(payload,))
            for _ in range(5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = client.wait("shared-name", timeout=60.0)
    assert final.state == "completed"
    assert all(n == 1 for n in log.counts.values())
    assert len(store_lines(root, "shared-name")) == final.total


def test_killed_worker_resubmit_completes_without_torn_records(tmp_path):
    root = str(tmp_path)
    payload = grid_payload("crashy")
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec.from_dict(payload)
    victim = spec.expand()[0].key()
    log = ExecutionLog(poison=[victim])
    with CampaignServer(root, workers=2, run_fn=log) as daemon:
        client = CampaignClient(daemon.url)
        client.submit(payload)
        wounded = client.wait("crashy", timeout=60.0)
        assert wounded.state == "failed"
        assert wounded.failed == 1
        assert wounded.executed == wounded.total - 1
        assert wounded.errors[0]["key"] == victim
        assert "worker killed" in wounded.errors[0]["error"]

        # No torn records: every surviving line parses and none is the
        # victim's.
        lines = store_lines(root, "crashy")
        assert len(lines) == wounded.total - 1
        assert victim not in lines

        # Resubmit: only the missing cell executes, the rest are cache
        # hits; the poison only fires on first execution.
        client.submit(payload)
        healed = client.wait("crashy", timeout=60.0)
        assert healed.state == "completed"
        assert healed.executed == 1
        assert healed.cached == healed.total - 1
        assert healed.failed == 0
    assert log.counts[victim] == 2  # the crash, then the retry
    assert set(store_lines(root, "crashy")) == {
        descriptor.key() for descriptor in spec.expand()
    }


def test_hard_shutdown_then_restart_completes_exactly_once(tmp_path):
    root = str(tmp_path)
    payload = grid_payload("abandoned", seeds=(1, 2, 3, 4))
    log = ExecutionLog(delay_s=0.02)
    first = CampaignServer(root, workers=2, run_fn=log)
    first.start()
    client = CampaignClient(first.url)
    client.submit(payload)
    time.sleep(0.05)  # let a few cells finish, leave the rest queued
    first.shutdown(drain=False)
    done_before = sum(log.counts.values())
    assert done_before < 16  # the point of the test: cells were abandoned

    with CampaignServer(root, workers=2, run_fn=log) as second:
        client = CampaignClient(second.url)
        client.submit(payload)
        final = client.wait("abandoned", timeout=60.0)
    assert final.state == "completed"
    assert final.failed == 0
    assert final.cached == done_before
    assert final.executed == final.total - done_before
    # Exactly once across both daemon lifetimes.
    assert all(n == 1 for n in log.counts.values())
    assert len(store_lines(root, "abandoned")) == final.total


def test_restart_resubmit_is_single_scan_cache_hit(tmp_path, monkeypatch):
    root = str(tmp_path)
    payload = grid_payload("restarted")
    with CampaignServer(root, workers=2, run_fn=ExecutionLog()) as daemon:
        client = CampaignClient(daemon.url)
        client.submit(payload)
        first = client.wait("restarted", timeout=60.0)
        assert first.state == "completed"

    def refuse(descriptor):  # pragma: no cover - the pin is that it never runs
        raise AssertionError("already-done cell re-executed after restart")

    scans = []
    real_scan = ResultStore._scan_file

    def counting_scan(self, path):
        scans.append(os.path.relpath(path, root))
        return real_scan(self, path)

    monkeypatch.setattr(ResultStore, "_scan_file", counting_scan)
    with CampaignServer(root, workers=2, run_fn=refuse) as daemon:
        client = CampaignClient(daemon.url)
        client.submit(payload)
        resumed = client.wait("restarted", timeout=60.0)
        # A brand-new tenant over the same grid dedups through the
        # persistent index — still zero executions.
        client.submit(grid_payload("fresh-tenant"))
        fresh = client.wait("fresh-tenant", timeout=60.0)
    assert resumed.state == "completed"
    assert resumed.executed == 0
    assert resumed.cached == resumed.total
    assert fresh.state == "completed"
    assert fresh.executed == 0
    assert fresh.deduped == fresh.total
    # The single-scan pin: resuming the submitted campaign read its
    # results stream exactly once — never a per-key re-read.
    resumed_scans = [
        path for path in scans
        if path == os.path.join("restarted", "results.jsonl")
    ]
    assert len(resumed_scans) == 1
