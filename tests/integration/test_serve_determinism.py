"""Serve determinism: the daemon path is byte-invisible in the store.

The load-bearing contract of ``campaign serve``: a spec submitted over
HTTP must produce cell keys and record lines **byte-identical** to the
same spec run sequentially via ``run_campaign`` (the ``campaign
--spec`` path).  Real simulations on the shortened small platform — one
sequential root, one served root, then a line-level diff and a clean
``campaign compare`` between them.
"""

import json
import os

import pytest

from repro.analysis import report as analysis_report
from repro.campaign.client import CampaignClient
from repro.campaign.executor import run_campaign
from repro.campaign.serve import CampaignServer
from repro.campaign.spec import CampaignSpec
from repro.platform.config import PlatformConfig

#: Shortened small-platform grid: 2 models × 1 seed × 2 fault counts.
_CONFIG = PlatformConfig.small(horizon_us=120_000, fault_time_us=60_000)
_NAME = "served"


def make_spec():
    return CampaignSpec(
        name=_NAME,
        models=("none", "foraging_for_work"),
        seeds=(21,),
        fault_counts=(0, 2),
        config=_CONFIG,
        kind="table2",
    )


def read_lines(root):
    """``key -> raw line`` of the campaign's results stream."""
    lines = {}
    path = os.path.join(root, _NAME, "results.jsonl")
    with open(path, "rb") as handle:
        for line in handle:
            lines[json.loads(line)["key"]] = line
    return lines


@pytest.fixture(scope="module")
def roots(tmp_path_factory):
    """(sequential root, served root) holding the same completed spec."""
    spec = make_spec()
    sequential_root = str(tmp_path_factory.mktemp("sequential"))
    served_root = str(tmp_path_factory.mktemp("served"))
    report = run_campaign(
        spec, store=os.path.join(sequential_root, _NAME), processes=0
    )
    assert report.executed == spec.size()
    with CampaignServer(served_root, workers=2) as daemon:
        client = CampaignClient(daemon.url)
        client.submit(spec.to_dict())
        final = client.wait(_NAME, timeout=600.0)
    assert final.state == "completed"
    assert final.executed == spec.size()
    assert final.failed == 0
    return sequential_root, served_root


def test_served_records_byte_identical_to_sequential(roots):
    sequential_root, served_root = roots
    sequential = read_lines(sequential_root)
    served = read_lines(served_root)
    # Same cell keys (the hash contract) ...
    assert set(served) == set(sequential) == {
        descriptor.key() for descriptor in make_spec().expand()
    }
    # ... and the byte-identical record line for every one of them.
    assert served == sequential


def test_campaign_compare_between_roots_is_clean(roots):
    sequential_root, served_root = roots
    comparison = analysis_report.compare(sequential_root, served_root)
    assert comparison.ok(), analysis_report.format_comparison(comparison)
    # Byte-identical stores aggregate identically — zero regressions and
    # zero coverage drift in either direction.
    assert not comparison.regressions()
    assert not comparison.missing and not comparison.added
