"""Declarative campaign specifications and their content-hash keys.

A :class:`CampaignSpec` names a sweep — models × seeds × fault axis
over one platform configuration — and expands it into
:class:`RunDescriptor` cells.  The fault axis is the union of legacy
``fault_counts`` (uniform permanent bursts at the config's fault time)
and declarative ``scenarios``
(:class:`~repro.platform.scenario.FaultScenario`: link failures,
transients, waves, spatial patterns).  Each descriptor hashes to a
stable key (see the package docstring for the stability contract); the
store and executor never look at anything else.
"""

import dataclasses
import hashlib
import json

from repro.app.workloads import WorkloadSpec, load_workload
from repro.core.models.registry import resolve_model_name
from repro.experiments.runner import DEFAULT_METRIC, default_seeds
from repro.platform.config import GOVERNORS, PlatformConfig
from repro.platform.scenario import FaultScenario

#: Bump to invalidate every stored result by hand (schema field of the
#: key payload); config-schema changes already invalidate implicitly.
HASH_SCHEMA_VERSION = 1

#: Rendering hints understood by :func:`repro.campaign.paper.artifact`.
KINDS = ("grid", "table1", "table2", "figure4")


@dataclasses.dataclass(frozen=True)
class RunDescriptor:
    """One campaign cell: a fully specified ``run_single`` invocation."""

    model: str
    seed: int
    faults: int
    config: PlatformConfig
    metric: str = DEFAULT_METRIC
    keep_series: bool = False
    scenario: FaultScenario = None
    workload: WorkloadSpec = None

    def cell(self):
        """The human-facing cell coordinates.

        ``(model, seed, faults)`` for legacy count cells,
        ``(model, seed, scenario name)`` for scenario cells; cells
        driven by a declarative workload append its name.
        """
        if self.scenario is not None:
            base = (self.model, self.seed, self.scenario.name)
        else:
            base = (self.model, self.seed, self.faults)
        if self.workload is not None:
            return base + (self.workload.name,)
        return base

    def key(self):
        """Stable SHA-256 content hash identifying this simulation.

        The scenario joins the payload only when present, so every key
        minted before the scenario axis existed is unchanged — legacy
        stores keep hitting.  Within the scenario entry the same rule
        recurses: fault-taxonomy-v2 event fields (``factor``,
        ``hazard_per_us``, ``horizon_us``, ``heat_c``,
        ``wait_limit_us``) canonicalise only when set
        (:attr:`~repro.platform.scenario.FaultEvent._CANONICAL_OPTIONAL`),
        so pre-v2 scenario cells keep their PR 3 keys byte-for-byte
        while any event using a v2 kind mints a fresh key.  The config
        entry follows the same contract through
        :meth:`~repro.platform.config.PlatformConfig.canonical`: the
        self-healing dynamics fields join only when changed from their
        defaults, so dynamics-free cells keep their historic keys.  The
        ``workload`` entry extends the contract the same way: it joins
        the payload (as
        :meth:`~repro.app.workloads.WorkloadSpec.canonical`) only when a
        declarative workload drives the cell, so every pre-workload key
        is conserved.

        Because the key covers the *entire* simulation payload, it is
        also the cross-campaign dedup key
        (:class:`~repro.campaign.index.StoreIndex`): two campaigns share
        a key exactly when the cell is the same simulation, so dedup
        never crosses differing spec payloads.
        """
        payload = {
            "schema": HASH_SCHEMA_VERSION,
            "model": resolve_model_name(self.model),
            "seed": self.seed,
            "faults": self.faults,
            "metric": self.metric,
            "config": self.config.canonical(),
        }
        if self.scenario is not None:
            payload["scenario"] = self.scenario.canonical()
        if self.workload is not None:
            payload["workload"] = self.workload.canonical()
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def job(self):
        """The ``repro.experiments.runner`` job tuple for this cell."""
        return (
            self.model,
            self.seed,
            self.faults,
            self.config,
            self.metric,
            self.keep_series,
            self.scenario,
            self.workload,
        )


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep grid, JSON-loadable via :meth:`from_dict`.

    The fault axis of the grid is ``fault_counts`` ∪ ``scenarios``: each
    model × seed pair runs once per fault count (the legacy uniform
    burst) and once per declarative scenario.  Either side may be empty,
    but not both.
    """

    name: str
    models: tuple
    seeds: tuple
    fault_counts: tuple = (0,)
    config: PlatformConfig = PlatformConfig()
    metric: str = DEFAULT_METRIC
    keep_series: bool = False
    #: Declarative fault scenarios swept alongside the fault counts.
    scenarios: tuple = ()
    #: DVFS governor axis: each entry replays the whole fault axis with
    #: ``config.dvfs_governor`` overridden.  Empty = sweep the config's
    #: own governor only (legacy grids, byte-identical expansion).
    governors: tuple = ()
    #: Declarative workload axis: each entry replays the whole fault
    #: axis under that application (a WorkloadSpec, dict, built-in name
    #: or JSON path — anything
    #: :func:`~repro.app.workloads.load_workload` accepts).  Empty =
    #: sweep the legacy fork-join application (byte-identical
    #: expansion).
    workloads: tuple = ()
    #: Rendering hint: how :mod:`repro.campaign.paper` turns the finished
    #: grid back into an artefact ("grid" returns plain rows).
    kind: str = "grid"

    def __post_init__(self):
        object.__setattr__(
            self,
            "models",
            tuple(resolve_model_name(m) for m in self.models),
        )
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(
            self, "fault_counts", tuple(int(f) for f in self.fault_counts)
        )
        object.__setattr__(
            self,
            "scenarios",
            tuple(
                s if isinstance(s, FaultScenario)
                else FaultScenario.from_dict(s)
                for s in self.scenarios
            ),
        )
        object.__setattr__(
            self, "governors", tuple(str(g) for g in self.governors)
        )
        object.__setattr__(
            self,
            "workloads",
            tuple(load_workload(w) for w in self.workloads),
        )
        for governor in self.governors:
            if governor not in GOVERNORS:
                raise ValueError(
                    "unknown governor {!r} in campaign axis; known: "
                    "{}".format(governor, GOVERNORS)
                )
        if not self.name:
            raise ValueError("campaign needs a name")
        if not self.models or not self.seeds:
            raise ValueError("campaign grid must be non-empty")
        if not self.fault_counts and not self.scenarios:
            raise ValueError(
                "campaign needs fault_counts and/or scenarios"
            )
        for field, values in (
            ("models", self.models),
            ("seeds", self.seeds),
            ("fault_counts", self.fault_counts),
            ("scenarios", [s.name for s in self.scenarios]),
            ("governors", self.governors),
            ("workloads", [w.name for w in self.workloads]),
        ):
            if len(set(values)) != len(values):
                raise ValueError("duplicate entries in {}".format(field))
        if self.kind not in KINDS:
            raise ValueError(
                "unknown campaign kind {!r}; known: {}".format(
                    self.kind, KINDS
                )
            )
        # Validate kind-specific grid requirements up front, before any
        # simulation time is spent on a sweep whose artefact cannot be
        # assembled afterwards.
        if self.kind == "figure4" and not self.keep_series:
            # The panels are the series; a figure4 campaign implies it.
            object.__setattr__(self, "keep_series", True)
        if self.kind in ("table1", "table2"):
            if "none" not in self.models:
                raise ValueError(
                    "{} campaigns need the 'none' model (the "
                    "normalisation baseline)".format(self.kind)
                )
            if 0 not in self.fault_counts:
                raise ValueError(
                    "{} campaigns need fault count 0 (the "
                    "normalisation reference)".format(self.kind)
                )

    def expand(self):
        """The cell grid: model-major, then governors, then workloads,
        then fault counts, then scenarios, then seeds.

        The order is stable and documented because it decides *resume*
        order (which cells a partial store already holds); results are
        per-cell deterministic regardless of execution order.  An empty
        governor (or workload) axis sweeps the spec's own config (or the
        legacy application) untouched, so legacy grids expand
        byte-identically.
        """
        if self.governors:
            configs = [
                self.config.replace(dvfs_governor=governor)
                for governor in self.governors
            ]
        else:
            configs = [self.config]
        cells = []
        for model in self.models:
            for config in configs:
                for workload in (self.workloads or (None,)):
                    for faults in self.fault_counts:
                        for seed in self.seeds:
                            cells.append(
                                RunDescriptor(
                                    model=model,
                                    seed=seed,
                                    faults=faults,
                                    config=config,
                                    metric=self.metric,
                                    keep_series=self.keep_series,
                                    workload=workload,
                                )
                            )
                    for scenario in self.scenarios:
                        for seed in self.seeds:
                            cells.append(
                                RunDescriptor(
                                    model=model,
                                    seed=seed,
                                    faults=0,
                                    config=config,
                                    metric=self.metric,
                                    keep_series=self.keep_series,
                                    scenario=scenario,
                                    workload=workload,
                                )
                            )
        return cells

    def size(self):
        """Number of cells in the grid."""
        return (
            len(self.models)
            * (len(self.governors) or 1)
            * (len(self.workloads) or 1)
            * len(self.seeds)
            * (len(self.fault_counts) + len(self.scenarios))
        )

    def to_dict(self):
        """JSON-friendly dict; ``from_dict`` round-trips it.

        The ``scenarios``, ``governors`` and ``workloads`` entries are
        omitted when their axis is unused, and the config serialises
        through
        :meth:`~repro.platform.config.PlatformConfig.canonical` (post-v1
        fields only when set) — so legacy campaign directories keep
        byte-identical ``spec.json`` provenance.
        """
        data = {
            "name": self.name,
            "models": list(self.models),
            "seeds": list(self.seeds),
            "fault_counts": list(self.fault_counts),
            "config": self.config.canonical(),
            "metric": self.metric,
            "keep_series": self.keep_series,
            "kind": self.kind,
        }
        if self.scenarios:
            data["scenarios"] = [s.to_dict() for s in self.scenarios]
        if self.governors:
            data["governors"] = list(self.governors)
        if self.workloads:
            data["workloads"] = [w.to_dict() for w in self.workloads]
        return data

    @classmethod
    def from_dict(cls, data):
        """Build a spec from a plain dict (e.g. a loaded JSON file).

        Accepted keys mirror the constructor, plus conveniences:
        ``runs``/``seed_base`` generate the seed list when ``seeds`` is
        absent, ``faults`` is an alias for ``fault_counts``, and
        ``base: "small"`` starts config overrides from
        :meth:`PlatformConfig.small` instead of the full platform.
        """
        data = dict(data)
        name = data.pop("name", None)
        if not name:
            raise ValueError("campaign spec needs a 'name'")
        models = data.pop("models", None)
        if not models:
            raise ValueError("campaign spec needs 'models'")
        seeds = data.pop("seeds", None)
        runs = data.pop("runs", None)
        seed_base = data.pop("seed_base", 1000)
        if seeds is None:
            if runs is None:
                raise ValueError("campaign spec needs 'seeds' or 'runs'")
            seeds = default_seeds(int(runs), base=int(seed_base))
        if "fault_counts" in data and "faults" in data:
            raise ValueError(
                "give either 'fault_counts' or its alias 'faults', not both"
            )
        scenarios = data.pop("scenarios", ())
        fault_counts = data.pop("fault_counts", None)
        if fault_counts is None:
            # With scenarios present, absent fault counts mean "scenario
            # axis only" — no implicit zero-fault burst cell.
            fault_counts = data.pop(
                "faults", () if scenarios else (0,)
            )
        overrides = data.pop("config", {}) or {}
        base = data.pop("base", "default")
        if base == "small":
            config = PlatformConfig.small(**overrides)
        elif base == "default":
            config = PlatformConfig(**overrides)
        else:
            raise ValueError("unknown config base {!r}".format(base))
        spec = cls(
            name=name,
            models=tuple(models),
            seeds=tuple(seeds),
            fault_counts=tuple(fault_counts),
            config=config,
            metric=data.pop("metric", DEFAULT_METRIC),
            keep_series=bool(data.pop("keep_series", False)),
            scenarios=tuple(scenarios),
            governors=tuple(data.pop("governors", ())),
            workloads=tuple(data.pop("workloads", ())),
            kind=data.pop("kind", "grid"),
        )
        if data:
            raise ValueError(
                "unknown campaign spec keys: {}".format(sorted(data))
            )
        return spec

    @classmethod
    def from_json_file(cls, path):
        """Load a spec from a JSON file."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
