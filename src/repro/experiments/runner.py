"""Run harness: single runs, seeded batches, and their analyses.

``run_single`` executes one Centurion simulation (model × seed × fault
count) and extracts everything Tables I/II and Figure 4 need; ``run_batch``
maps it over seeds, optionally across processes (each run is independent,
so this parallelises embarrassingly).
"""

import dataclasses
import os

from repro.experiments.settling import recovery_analysis, settling_analysis
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig

#: Metric the tables quantify: completed fork-join instances per window —
#: the paper's "total many-core throughput of task 3 nodes".  Figure 4's
#: panels additionally plot ``active_nodes`` (its "Nodes Active" axis).
DEFAULT_METRIC = "joins"


@dataclasses.dataclass
class RunResult:
    """Per-run extract used by the tables and figures."""

    model: str
    seed: int
    faults: int
    settling_time_ms: float
    settled_performance: float
    recovery_time_ms: float
    recovered_performance: float
    series: object
    app_stats: dict
    noc_stats: dict
    total_switches: int

    def as_row(self):
        """Flat dict of the scalar fields (CSV/JSON row)."""
        return {
            "model": self.model,
            "seed": self.seed,
            "faults": self.faults,
            "settling_time_ms": self.settling_time_ms,
            "settled_performance": self.settled_performance,
            "recovery_time_ms": self.recovery_time_ms,
            "recovered_performance": self.recovered_performance,
            "total_switches": self.total_switches,
        }


def run_single(model_name, seed, faults=0, config=None,
               metric=DEFAULT_METRIC, keep_series=True):
    """One full experiment run.

    Settling is measured from t=0 up to the fault time (or to the horizon
    when no faults are injected); recovery is measured from the fault time
    to the horizon.  Without faults the recovery fields mirror the settled
    state so downstream tables can treat the 0-fault row uniformly.
    """
    config = config if config is not None else PlatformConfig()
    platform = CenturionPlatform(config, model_name=model_name, seed=seed)
    if faults > 0:
        platform.inject_faults(faults)
    series = platform.run()
    fault_time_ms = config.fault_time_us / 1000.0
    settle_end = fault_time_ms if faults > 0 else None
    settling_time, settled_perf = settling_analysis(
        series, metric=metric, end_ms=settle_end
    )
    if faults > 0:
        recovery_time, recovered_perf = recovery_analysis(
            series, fault_time_ms, metric=metric
        )
    else:
        recovery_time, recovered_perf = 0.0, settled_perf
    return RunResult(
        model=platform.model_name,
        seed=seed,
        faults=faults,
        settling_time_ms=settling_time,
        settled_performance=settled_perf,
        recovery_time_ms=recovery_time,
        recovered_performance=recovered_perf,
        series=series if keep_series else None,
        app_stats=platform.workload.stats(),
        noc_stats=dict(platform.network.stats),
        total_switches=platform.total_task_switches(),
    )


def _run_single_star(args):
    return run_single(*args)


def run_batch(model_name, seeds, faults=0, config=None,
              metric=DEFAULT_METRIC, processes=None, keep_series=False):
    """Independent runs over ``seeds``; returns a list of RunResults.

    ``processes``: ``None``/0/1 runs sequentially; larger values use a
    multiprocessing pool (each run is single-threaded and deterministic per
    seed, so ordering is preserved by ``map``).  The REPRO_PROCESSES
    environment variable supplies a default.
    """
    if processes is None:
        processes = int(os.environ.get("REPRO_PROCESSES", "0"))
    jobs = [
        (model_name, seed, faults, config, metric, keep_series)
        for seed in seeds
    ]
    if processes and processes > 1 and len(jobs) > 1:
        import multiprocessing

        with multiprocessing.Pool(processes) as pool:
            return pool.map(_run_single_star, jobs)
    return [_run_single_star(job) for job in jobs]


def default_seeds(count, base=1000):
    """The canonical seed list used by the benchmark harness."""
    return [base + i for i in range(count)]
