"""Streaming row iterator: same merge as the materialised surface.

``repro.campaign.rows`` promises the exact merge semantics of
``gc.load_records``/``merged_records`` — main stream before worker
shards, last write per key wins, first-seen key order, first campaign
holding a key wins across directories — while holding only keys and
byte offsets.  These tests pin that equivalence (including under
hypothesis-driven duplicate/torn/shard streams), the never-lie rule for
files rewritten underneath a running iteration, and the streaming
export paths built on top.
"""

import io
import json
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.gc import (
    csv_columns,
    export_csv,
    export_jsonl,
    merged_records,
)
from repro.campaign.rows import (
    iter_campaign_records,
    iter_merged_records,
    iter_merged_rows,
    iter_root_records,
)
from repro.campaign.store import encode_line, worker_results_file

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

pool_keys = st.sampled_from(["k{:02d}".format(i) for i in range(6)])
values = st.integers(min_value=-10**6, max_value=10**6)


def make_record(key, value=0):
    """A minimal record with a scalar row (the decode paths accept it)."""
    return {
        "key": key,
        "model": "none",
        "seed": 1,
        "faults": 0,
        "row": {
            "model": "none",
            "seed": 1,
            "faults": 0,
            "settling_time_ms": float(value),
            "settled_performance": float(value),
            "recovery_time_ms": 0.0,
            "recovered_performance": float(value),
            "total_switches": value,
        },
    }


def write_stream(path, records, tail=""):
    """Write canonical record lines (plus an optional raw tail)."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(encode_line(record))
            handle.write("\n")
        handle.write(tail)


def make_store(directory, records, workers=(), tail=""):
    """Build a campaign dir: main stream + optional worker shards."""
    os.makedirs(directory, exist_ok=True)
    write_stream(
        os.path.join(directory, "results.jsonl"), records, tail=tail
    )
    for worker_id, shard in workers:
        write_stream(
            os.path.join(directory, worker_results_file(worker_id)), shard
        )
    return directory


def test_single_campaign_last_write_wins(tmp_path):
    store = make_store(
        str(tmp_path / "camp"),
        [make_record("a", 1), make_record("b", 2), make_record("a", 3)],
    )
    got = list(iter_campaign_records(store))
    assert [key for key, _ in got] == ["a", "b"]
    assert got[0][1]["row"]["total_switches"] == 3


def test_worker_streams_merge_after_main(tmp_path):
    store = make_store(
        str(tmp_path / "camp"),
        [make_record("a", 1)],
        workers=[(1, [make_record("a", 9), make_record("c", 5)]),
                 (0, [make_record("b", 4)])],
    )
    got = dict(iter_campaign_records(store))
    # Worker streams are read after main in sorted shard order: the
    # worker-1 rewrite of "a" supersedes the main line.
    assert got["a"]["row"]["total_switches"] == 9
    assert set(got) == {"a", "b", "c"}


def test_torn_and_keyless_lines_skipped(tmp_path):
    store = make_store(
        str(tmp_path / "camp"),
        [make_record("a", 1)],
        tail='{"no": "key"}\n[1, 2]\n{"key": "torn", "row"',
    )
    assert [key for key, _ in iter_campaign_records(store)] == ["a"]


def test_first_campaign_wins_across_dirs(tmp_path):
    first = make_store(
        str(tmp_path / "alpha"), [make_record("a", 1), make_record("b", 2)]
    )
    second = make_store(
        str(tmp_path / "beta"), [make_record("b", 9), make_record("c", 3)]
    )
    got = list(iter_merged_records([first, second]))
    assert [(campaign, key) for campaign, key, _ in got] == [
        ("alpha", "a"), ("alpha", "b"), ("beta", "c"),
    ]
    by_key = {key: record for _, key, record in got}
    assert by_key["b"]["row"]["total_switches"] == 2


def test_rewritten_file_yields_skip_never_wrong_data(tmp_path):
    store = make_store(
        str(tmp_path / "camp"),
        [make_record("a", 1), make_record("b", 2), make_record("c", 3)],
    )
    iterator = iter_campaign_records(store)
    first = next(iterator)
    assert first[0] == "a"
    # Rewrite the stream in place (same inode): the remaining winners'
    # offsets now point at other bytes — they must be skipped, never
    # yielded as another cell's data.
    write_stream(
        os.path.join(store, "results.jsonl"), [make_record("zzz", 99)]
    )
    rest = list(iterator)
    for key, record in rest:
        assert record.get("key") == key


def test_iter_root_records_defaults_to_sorted_campaigns(tmp_path):
    make_store(str(tmp_path / "bbb"), [make_record("b", 2)])
    make_store(str(tmp_path / "aaa"), [make_record("a", 1)])
    got = list(iter_root_records(str(tmp_path)))
    assert [campaign for campaign, _, _ in got] == ["aaa", "bbb"]


def test_iter_merged_rows_skips_rowless_records(tmp_path):
    record = make_record("a", 1)
    bare = {"key": "bare", "model": "none"}
    store = str(tmp_path / "camp")
    os.makedirs(store)
    with open(os.path.join(store, "results.jsonl"), "w") as handle:
        handle.write(encode_line(record) + "\n")
        handle.write(encode_line(bare) + "\n")
    rows = list(iter_merged_rows([store]))
    assert [(campaign, key) for campaign, key, _ in rows] == [
        ("camp", "a")
    ]
    assert rows[0][2] == record["row"]


@SETTINGS
@given(
    main_a=st.lists(st.tuples(pool_keys, values), max_size=8),
    shard_a=st.lists(st.tuples(pool_keys, values), max_size=5),
    main_b=st.lists(st.tuples(pool_keys, values), max_size=8),
)
def test_streaming_merge_equals_materialised(tmp_path_factory, main_a,
                                             shard_a, main_b):
    base = str(tmp_path_factory.mktemp("rows"))
    dirs = [
        make_store(
            os.path.join(base, "alpha"),
            [make_record(k, v) for k, v in main_a],
            workers=[(0, [make_record(k, v) for k, v in shard_a])],
        ),
        make_store(
            os.path.join(base, "beta"),
            [make_record(k, v) for k, v in main_b],
        ),
    ]
    legacy = merged_records(dirs)
    streamed = list(iter_merged_records(dirs))
    assert [key for _, key, _ in streamed] == list(legacy)
    for campaign, key, record in streamed:
        assert legacy[key] == (campaign, record)


def test_streaming_exports_match_materialised(tmp_path):
    dirs = [
        make_store(
            str(tmp_path / "alpha"),
            [make_record("a", 1), make_record("b", 2)],
        ),
        make_store(str(tmp_path / "beta"), [make_record("c", 3)]),
    ]
    legacy_jsonl, streamed_jsonl = io.StringIO(), io.StringIO()
    assert export_jsonl(merged_records(dirs), legacy_jsonl) == 3
    assert export_jsonl(iter_merged_records(dirs), streamed_jsonl) == 3
    assert streamed_jsonl.getvalue() == legacy_jsonl.getvalue()

    columns = csv_columns(dirs)
    legacy_csv, streamed_csv = io.StringIO(), io.StringIO()
    export_csv(merged_records(dirs), legacy_csv)
    export_csv(iter_merged_records(dirs), streamed_csv, columns=columns)
    assert streamed_csv.getvalue() == legacy_csv.getvalue()


def test_streaming_csv_requires_columns(tmp_path):
    store = make_store(str(tmp_path / "camp"), [make_record("a", 1)])
    try:
        export_csv(iter_merged_records([store]), io.StringIO())
    except ValueError:
        pass
    else:
        raise AssertionError("columns-less streaming export must raise")


def test_exported_jsonl_lines_byte_identical_to_store(tmp_path):
    records = [make_record("a", 1), make_record("b", 2)]
    store = make_store(str(tmp_path / "camp"), records)
    sink = io.StringIO()
    export_jsonl(iter_merged_records([store]), sink)
    expected = "".join(encode_line(r) + "\n" for r in records)
    assert sink.getvalue() == expected
    # And they parse back to the exact records.
    parsed = [json.loads(line) for line in sink.getvalue().splitlines()]
    assert parsed == records
