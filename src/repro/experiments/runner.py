"""Run harness: single runs, seeded batches, and their analyses.

``run_single`` executes one Centurion simulation (model × seed × fault
count) and extracts everything Tables I/II and Figure 4 need;
``iter_runs`` streams job tuples through an optional multiprocessing
pool (chunked ``imap``, ordered, failures wrapped with their cell
context), and ``run_batch`` is the thin seed-sweep wrapper the campaign
engine (:mod:`repro.campaign`) and the benches share.
"""

import dataclasses
import os
import traceback

from repro.experiments.settling import recovery_analysis, settling_analysis
from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig

#: Metric the tables quantify: completed fork-join instances per window —
#: the paper's "total many-core throughput of task 3 nodes".  Figure 4's
#: panels additionally plot ``active_nodes`` (its "Nodes Active" axis).
DEFAULT_METRIC = "joins"


@dataclasses.dataclass
class RunResult:
    """Per-run extract used by the tables and figures."""

    model: str
    seed: int
    faults: int
    settling_time_ms: float
    settled_performance: float
    recovery_time_ms: float
    recovered_performance: float
    series: object
    app_stats: dict
    noc_stats: dict
    total_switches: int
    #: Name of the fault scenario driving the run (None = legacy counts).
    scenario: str = None
    #: Closed-loop dynamics extract (0 / None on dynamics-free runs).
    throttle_events: int = 0
    autonomous_recoveries: int = 0
    deadlock_drops: int = 0
    governor: str = None
    #: Name of the declarative workload driving the run (None = the
    #: legacy fork-join application built from the config).
    workload: str = None

    def as_row(self):
        """Flat dict of the scalar fields (CSV/JSON row).

        The ``scenario`` column appears only on scenario-driven runs,
        ``workload`` only on declarative-workload runs, and the dynamics
        columns (``governor``, ``throttle_events``,
        ``autonomous_recoveries``, ``deadlock_drops``) only when their
        machinery actually fired — so legacy rows stay byte-identical
        to earlier releases (stores and downstream CSV diffs included).
        """
        row = {
            "model": self.model,
            "seed": self.seed,
            "faults": self.faults,
            "settling_time_ms": self.settling_time_ms,
            "settled_performance": self.settled_performance,
            "recovery_time_ms": self.recovery_time_ms,
            "recovered_performance": self.recovered_performance,
            "total_switches": self.total_switches,
        }
        if self.scenario is not None:
            row["scenario"] = self.scenario
        if self.workload is not None:
            row["workload"] = self.workload
        if self.governor is not None:
            row["governor"] = self.governor
        if self.throttle_events:
            row["throttle_events"] = self.throttle_events
        if self.autonomous_recoveries:
            row["autonomous_recoveries"] = self.autonomous_recoveries
        if self.deadlock_drops:
            row["deadlock_drops"] = self.deadlock_drops
        return row


def run_single(model_name, seed, faults=0, config=None,
               metric=DEFAULT_METRIC, keep_series=True, scenario=None,
               workload=None):
    """One full experiment run.

    Settling is measured from t=0 up to the fault time (or to the horizon
    when no faults are injected); recovery is measured from the fault time
    to the horizon.  Without faults the recovery fields mirror the settled
    state so downstream tables can treat the 0-fault row uniformly.

    ``scenario`` (a :class:`~repro.platform.scenario.FaultScenario`)
    replaces the legacy ``faults`` count with a declarative fault
    composition; the settling/recovery boundary is then the scenario's
    *first* injection.  A boundary leaving no measurable post-fault
    window (a fault at the exact run horizon) degrades gracefully: the
    recovery fields mirror the settled state, like a zero-fault run.

    ``workload`` (a :class:`~repro.app.workloads.WorkloadSpec`, dict,
    built-in name, or JSON file path) replaces the legacy fork-join
    application with a declarative task graph; leaving it ``None``
    keeps the pre-workload platform byte-identical.
    """
    config = config if config is not None else PlatformConfig()
    platform = CenturionPlatform(
        config, model_name=model_name, seed=seed, workload=workload
    )
    boundary_us = None
    if scenario is not None:
        if faults:
            raise ValueError("give either 'faults' or 'scenario', not both")
        scenario = platform.inject_scenario(scenario)
        boundary_us = scenario.first_fault_us()
    elif faults > 0:
        platform.inject_faults(faults)
        boundary_us = config.fault_time_us
    series = platform.run()
    boundary_ms = (
        boundary_us / 1000.0 if boundary_us is not None else None
    )
    # A fault at t=0 leaves no pre-fault window at all: settling is then
    # measured over the whole (faulted) run, like a zero-fault row.
    settle_end = boundary_ms if boundary_ms else None
    try:
        settling_time, settled_perf = settling_analysis(
            series, metric=metric, end_ms=settle_end
        )
    except ValueError:
        # Fewer than two samples before the first fault (scenario
        # injecting within the first metric windows): same degradation.
        settling_time, settled_perf = settling_analysis(
            series, metric=metric
        )
    if boundary_ms is not None:
        try:
            recovery_time, recovered_perf = recovery_analysis(
                series, boundary_ms, metric=metric
            )
        except ValueError:
            # Fewer than two samples after the fault (injection at or
            # beyond the effective horizon): nothing to measure.
            recovery_time, recovered_perf = 0.0, settled_perf
    else:
        recovery_time, recovered_perf = 0.0, settled_perf
    if scenario is not None:
        # Scenario rows report the node faults actually injected (the
        # declared shape lives in the scenario itself); a uniform burst
        # scenario therefore rows up exactly like its legacy-count twin.
        faults = len(platform.faults.victims)
    return RunResult(
        model=platform.model_name,
        seed=seed,
        faults=faults,
        settling_time_ms=settling_time,
        settled_performance=settled_perf,
        recovery_time_ms=recovery_time,
        recovered_performance=recovered_perf,
        series=series if keep_series else None,
        app_stats=platform.workload.stats(),
        noc_stats=dict(platform.network.stats),
        total_switches=platform.total_task_switches(),
        scenario=scenario.name if scenario is not None else None,
        throttle_events=platform.dynamics.throttle_events,
        autonomous_recoveries=platform.dynamics.autonomous_recoveries,
        deadlock_drops=platform.network.stats.get("dropped_deadlock", 0),
        governor=(
            config.dvfs_governor
            if config.dvfs_governor != "none" else None
        ),
        workload=(
            platform.workload_spec.name
            if platform.workload_spec is not None else None
        ),
    )


class RunError(RuntimeError):
    """A run failed; carries its ``(model, seed, faults)`` cell context.

    Raised on the *collecting* side of a sweep, so a failing seed inside
    a worker process reports which cell died instead of a bare pickled
    traceback out of the pool.  ``details`` holds the worker's formatted
    traceback.
    """

    def __init__(self, model, seed, faults, details):
        super().__init__(
            "run failed (model={!r}, seed={}, faults={}):\n{}".format(
                model, seed, faults, details
            )
        )
        self.model = model
        self.seed = seed
        self.faults = faults
        self.details = details


class _WorkerFailure:
    """Picklable failure payload returned from a pool worker."""

    __slots__ = ("model", "seed", "faults", "details")

    def __init__(self, model, seed, faults, details):
        self.model = model
        self.seed = seed
        self.faults = faults
        self.details = details


def _run_single_star(job):
    try:
        return run_single(*job)
    except Exception:
        return _WorkerFailure(job[0], job[1], job[2], traceback.format_exc())


def _checked(outcome):
    if isinstance(outcome, _WorkerFailure):
        raise RunError(
            outcome.model, outcome.seed, outcome.faults, outcome.details
        )
    return outcome


def default_processes():
    """Worker-count default: REPRO_PROCESSES env, then ``os.cpu_count``."""
    env = os.environ.get("REPRO_PROCESSES")
    if env:
        return int(env)
    return os.cpu_count() or 1


def iter_runs(jobs, processes=None, chunksize=None):
    """Yield ``run_single`` results for job tuples, in job order.

    Each job is ``(model, seed, faults, config, metric, keep_series)``.
    ``processes``: ``None``/0/1 runs sequentially; larger values shard
    the jobs across a multiprocessing pool with chunked ``imap`` —
    results stream back in order without materialising the whole sweep
    in the pool at once, so callers can checkpoint as cells finish.
    Failures surface as :class:`RunError` with the cell context.
    """
    if processes is None:
        processes = int(os.environ.get("REPRO_PROCESSES", "0"))
    jobs = list(jobs)
    if processes and processes > 1 and len(jobs) > 1:
        import multiprocessing

        if chunksize is None:
            chunksize = max(1, min(16, len(jobs) // (processes * 4) or 1))
        with multiprocessing.Pool(processes) as pool:
            for outcome in pool.imap(_run_single_star, jobs,
                                     chunksize=chunksize):
                yield _checked(outcome)
    else:
        for job in jobs:
            yield _checked(_run_single_star(job))


def run_batch(model_name, seeds, faults=0, config=None,
              metric=DEFAULT_METRIC, processes=None, keep_series=False):
    """Independent runs over ``seeds``; returns a list of RunResults.

    Thin compatibility wrapper over :func:`iter_runs` (each run is
    single-threaded and deterministic per seed, so ordering is
    preserved).  The REPRO_PROCESSES environment variable supplies the
    ``processes`` default.
    """
    jobs = [
        (model_name, seed, faults, config, metric, keep_series)
        for seed in seeds
    ]
    return list(iter_runs(jobs, processes=processes))


def default_seeds(count, base=1000):
    """The canonical seed list used by the benchmark harness."""
    return [base + i for i in range(count)]
