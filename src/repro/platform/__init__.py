"""The Centurion many-core experimentation platform.

Assembles the substrates into the system of paper §III: a 8×16 grid of 128
nodes (router + processing element + AIM), an Experiment Controller attached
to the North ports of four top-row routers with an out-of-band debug
interface, and a fault-injection engine driven through that debug interface.
Fault campaigns are declarative :class:`FaultScenario` compositions (node
kills, link failures, transients, waves, spatial patterns) interpreted by
the :class:`FaultInjector`.
"""

from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.platform.controller import ExperimentController
from repro.platform.faults import FaultInjector
from repro.platform.scenario import FaultEvent, FaultScenario

__all__ = [
    "CenturionPlatform",
    "PlatformConfig",
    "ExperimentController",
    "FaultEvent",
    "FaultInjector",
    "FaultScenario",
]
