"""Tests for initial task mappings."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.app.mapping import (
    balanced_mapping,
    census,
    clustered_mapping,
    random_mapping,
)
from repro.noc.topology import MeshTopology

WEIGHTS = {1: 1, 2: 3, 3: 1}


def test_random_mapping_assigns_every_node():
    mapping = random_mapping(range(128), WEIGHTS, random.Random(1))
    assert len(mapping) == 128
    assert set(mapping.values()) <= {1, 2, 3}


def test_random_mapping_respects_weights_statistically():
    mapping = random_mapping(range(5000), WEIGHTS, random.Random(1))
    counts = census(mapping)
    assert 0.5 < counts[1] / 1000 < 1.5
    assert 0.8 < counts[2] / 3000 < 1.2


def test_random_mapping_deterministic_per_seed():
    a = random_mapping(range(128), WEIGHTS, random.Random(7))
    b = random_mapping(range(128), WEIGHTS, random.Random(7))
    assert a == b


def test_balanced_mapping_exact_census():
    mapping = balanced_mapping(range(130), WEIGHTS, random.Random(1))
    counts = census(mapping)
    assert counts == {1: 26, 2: 78, 3: 26}


def test_balanced_mapping_handles_remainders():
    mapping = balanced_mapping(range(128), WEIGHTS, random.Random(1))
    counts = census(mapping)
    assert sum(counts.values()) == 128
    # Ideal is 25.6 / 76.8 / 25.6; integers must round to +-1 of those.
    assert counts[1] in (25, 26)
    assert counts[2] in (76, 77)
    assert counts[3] in (25, 26)


def test_clustered_mapping_bands_by_column():
    topology = MeshTopology(10, 4)
    mapping = clustered_mapping(topology, WEIGHTS)
    # Sources on the west edge, sinks on the east.
    assert mapping[topology.node_id(0, 0)] == 1
    assert mapping[topology.node_id(9, 0)] == 3
    assert mapping[topology.node_id(5, 2)] == 2
    assert len(mapping) == 40


def test_census_helper():
    assert census({0: 1, 1: 2, 2: 2}) == {1: 1, 2: 2}


def test_empty_weights_rejected():
    with pytest.raises(ValueError):
        random_mapping(range(4), {}, random.Random(1))


def test_negative_weights_rejected():
    with pytest.raises(ValueError):
        random_mapping(range(4), {1: -1, 2: 2}, random.Random(1))


@settings(max_examples=25)
@given(
    n=st.integers(min_value=5, max_value=300),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_balanced_mapping_census_proportions_hold(n, seed):
    mapping = balanced_mapping(range(n), WEIGHTS, random.Random(seed))
    counts = census(mapping)
    assert sum(counts.values()) == n
    for task, weight in WEIGHTS.items():
        ideal = n * weight / 5
        assert abs(counts.get(task, 0) - ideal) < 1.0
