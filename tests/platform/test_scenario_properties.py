"""Property tests (hypothesis) for the declarative fault-scenario schema.

Three guarantees a scenario author relies on without reading the
implementation:

* serialisation is lossless — ``to_dict`` → JSON → ``from_dict`` is the
  identity, and canonical form / content key survive the round trip;
* the content key hashes *content*, not representation — reordering the
  keys of the JSON dicts (or re-encoding victims as tuples vs lists)
  cannot change it;
* malformed events are rejected at construction, not at injection time.
"""

import json

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

import pytest

from repro.platform.scenario import KINDS, FaultEvent, FaultScenario

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

times = st.integers(min_value=0, max_value=10**6)
counts = st.integers(min_value=1, max_value=8)
durations = st.none() | st.integers(min_value=1, max_value=10**5)


@st.composite
def repeat_fields(draw):
    """Either a fixed repeat schedule or a hazard-rate storm window."""
    if draw(st.booleans()):
        repeats = draw(st.integers(min_value=1, max_value=4))
        period = (
            draw(st.integers(min_value=1, max_value=10**5))
            if repeats > 1 else None
        )
        return {"repeats": repeats, "period_us": period}
    return {
        "hazard_per_us": draw(
            st.floats(
                min_value=1e-6, max_value=1e-2,
                allow_nan=False, allow_infinity=False,
            )
        ),
        "horizon_us": draw(st.integers(min_value=1, max_value=10**6)),
    }


#: Kinds whose victims are node ids (and which accept spatial patterns).
NODE_VICTIM_KINDS = ("node", "thermal_storm", "deadlock_pressure")


@st.composite
def events(draw):
    at_us = draw(times)
    kind = draw(st.sampled_from(KINDS))
    fields = {"at_us": at_us, "kind": kind}
    if kind in NODE_VICTIM_KINDS and draw(st.booleans()):
        pattern = draw(st.sampled_from(("row", "column", "neighborhood")))
        fields["pattern"] = pattern
        if pattern == "row":
            fields["row"] = draw(st.integers(min_value=0, max_value=7))
        elif pattern == "column":
            fields["column"] = draw(st.integers(min_value=0, max_value=15))
        else:
            fields["center"] = draw(st.integers(min_value=0, max_value=127))
            fields["radius"] = draw(st.integers(min_value=0, max_value=4))
        fields["count"] = draw(st.none() | counts)
    elif draw(st.booleans()) or kind == "controller":
        fields["count"] = draw(counts)
    else:
        # Pinned victims: node ids, edge pairs or attach indices.
        if kind in NODE_VICTIM_KINDS:
            pins = draw(
                st.lists(
                    st.integers(min_value=0, max_value=127),
                    min_size=1, max_size=4, unique=True,
                )
            )
        else:
            pins = draw(
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=126),
                        st.integers(min_value=1, max_value=127),
                    ).map(lambda p: [p[0], p[1]]),
                    min_size=1, max_size=4, unique_by=tuple,
                )
            )
        fields["victims"] = pins
        if draw(st.booleans()):
            fields["count"] = len(pins)
    if kind == "link_degrade":
        fields["factor"] = draw(
            st.floats(
                min_value=1.5, max_value=64.0,
                allow_nan=False, allow_infinity=False,
            )
        )
    elif kind == "thermal_storm":
        fields["heat_c"] = draw(
            st.floats(
                min_value=0.5, max_value=80.0,
                allow_nan=False, allow_infinity=False,
            )
        )
    elif kind == "deadlock_pressure":
        fields["wait_limit_us"] = draw(
            st.integers(min_value=1, max_value=10**5)
        )
    if kind != "thermal_storm":
        # Heat impulses decay on their own: the schema forbids a
        # duration on thermal storms.
        fields["duration_us"] = draw(durations)
    extra = draw(repeat_fields())
    if "horizon_us" in extra:
        extra["horizon_us"] += at_us + 1
    fields.update(
        (key, value) for key, value in extra.items() if value is not None
    )
    if fields.get("repeats") == 1:
        del fields["repeats"]
    return FaultEvent.from_dict(
        {k: v for k, v in fields.items() if v is not None or k == "count"}
    )


scenarios = st.builds(
    FaultScenario,
    name=st.text(min_size=1, max_size=24),
    events=st.lists(events(), min_size=0, max_size=5).map(tuple),
)


def _reorder(value):
    """Recursively rebuild dicts with reversed key-insertion order."""
    if isinstance(value, dict):
        return {
            key: _reorder(value[key]) for key in reversed(list(value))
        }
    if isinstance(value, list):
        return [_reorder(item) for item in value]
    return value


@SETTINGS
@given(scenario=scenarios)
def test_json_round_trip_is_identity(scenario):
    dumped = json.loads(json.dumps(scenario.to_dict()))
    rebuilt = FaultScenario.from_dict(dumped)
    assert rebuilt == scenario
    assert rebuilt.canonical() == scenario.canonical()
    assert rebuilt.key() == scenario.key()


@SETTINGS
@given(scenario=scenarios)
def test_key_is_stable_under_dict_key_reordering(scenario):
    shuffled = _reorder(scenario.to_dict())
    assert list(shuffled) != list(scenario.to_dict()) or len(shuffled) == 1
    assert FaultScenario.from_dict(shuffled).key() == scenario.key()


@SETTINGS
@given(scenario=scenarios)
def test_to_dict_omits_defaults(scenario):
    for event, dumped in zip(scenario.events, scenario.to_dict()["events"]):
        for field, default in FaultEvent._DEFAULTS.items():
            if getattr(event, field) == default:
                assert field not in dumped


@SETTINGS
@given(at_us=st.integers(max_value=-1))
def test_negative_times_rejected(at_us):
    with pytest.raises(ValueError):
        FaultEvent(at_us=at_us, count=1)


@SETTINGS
@given(
    pins=st.lists(
        st.integers(min_value=0, max_value=127),
        min_size=1, max_size=6, unique=True,
    ),
    count=st.integers(min_value=1, max_value=12),
)
def test_count_conflicting_with_pinned_victims_rejected(pins, count):
    assume(count != len(pins))
    with pytest.raises(ValueError):
        FaultEvent(at_us=0, count=count, victims=tuple(pins))


@SETTINGS
@given(kind=st.text(min_size=1, max_size=12))
def test_unknown_kinds_rejected(kind):
    assume(kind not in KINDS)
    with pytest.raises(ValueError):
        FaultEvent(at_us=0, kind=kind, count=1)


@SETTINGS
@given(key=st.text(min_size=1, max_size=12))
def test_unknown_event_keys_rejected(key):
    assume(key != "at_us" and key not in FaultEvent._DEFAULTS)
    with pytest.raises(ValueError):
        FaultEvent.from_dict({"at_us": 0, "count": 1, key: 1})
