"""Command-line interface to the experiment harness.

Usage (after ``pip install -e .``):

    python -m repro.experiments.cli run --model ffw --seed 7 --faults 42
    python -m repro.experiments.cli table1 --runs 20
    python -m repro.experiments.cli table2 --runs 20 --faults 0,8,32
    python -m repro.experiments.cli figure4 --seed 42

Each subcommand prints its artefact to stdout; ``--json FILE`` additionally
dumps the raw rows/series for downstream plotting.
"""

import argparse
import json
import sys

from repro.experiments.figures import figure4, render_figure4
from repro.experiments.runner import default_seeds, run_batch, run_single
from repro.experiments.tables import format_table, table1, table2
from repro.platform.config import PlatformConfig

MODELS = ("none", "network_interaction", "foraging_for_work")


def build_parser():
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DATE 2020 social-insect RTM evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one simulation run")
    run_p.add_argument("--model", default="ffw")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--faults", type=int, default=0)
    run_p.add_argument("--small", action="store_true",
                       help="4x4 grid instead of full Centurion")
    run_p.add_argument("--json", metavar="FILE")

    t1_p = sub.add_parser("table1", help="settling/performance, no faults")
    t1_p.add_argument("--runs", type=int, default=15)
    t1_p.add_argument("--json", metavar="FILE")

    t2_p = sub.add_parser("table2", help="recovery/performance vs faults")
    t2_p.add_argument("--runs", type=int, default=15)
    t2_p.add_argument("--faults", default="0,2,4,8,16,32",
                      help="comma-separated fault counts")
    t2_p.add_argument("--json", metavar="FILE")

    f4_p = sub.add_parser("figure4", help="time-series panels")
    f4_p.add_argument("--seed", type=int, default=42)
    f4_p.add_argument("--json", metavar="FILE")

    return parser


def _dump_json(path, payload):
    if path:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)


def cmd_run(args):
    """``run`` subcommand: one simulation, row + optional JSON."""
    config = PlatformConfig.small() if args.small else PlatformConfig()
    result = run_single(
        args.model, seed=args.seed, faults=args.faults, config=config
    )
    row = result.as_row()
    for key, value in row.items():
        print("{:<24} {}".format(key, value))
    _dump_json(args.json, {"row": row, "series": result.series.as_dict()})
    return 0


def cmd_table1(args):
    """``table1`` subcommand: regenerate Table I."""
    config = PlatformConfig()
    seeds = default_seeds(args.runs)
    results = {
        model: run_batch(model, seeds, config=config) for model in MODELS
    }
    rows = table1(results)
    print(format_table(rows, "table1"))
    _dump_json(args.json, rows)
    return 0


def cmd_table2(args):
    """``table2`` subcommand: regenerate Table II."""
    config = PlatformConfig()
    seeds = default_seeds(args.runs)
    fault_counts = [int(f) for f in args.faults.split(",")]
    if 0 not in fault_counts:
        fault_counts = [0] + fault_counts  # normalisation reference
    results = {}
    for model in MODELS:
        for faults in fault_counts:
            results[(model, faults)] = run_batch(
                model, seeds, faults=faults, config=config
            )
    rows = table2(results)
    print(format_table(rows, "table2"))
    _dump_json(args.json, rows)
    return 0


def cmd_figure4(args):
    """``figure4`` subcommand: render the six panels."""
    data = figure4(config=PlatformConfig(), seed=args.seed)
    print(render_figure4(data))
    _dump_json(
        args.json,
        {
            str(faults): {
                model: result.series.as_dict()
                for model, result in by_model.items()
            }
            for faults, by_model in data.items()
        },
    )
    return 0


COMMANDS = {
    "run": cmd_run,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "figure4": cmd_figure4,
}


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
