"""Node watchdog.

One of the Centurion monitors is "watchdog signals from the node": a node
that stops making progress (hung task, crashed core) stops kicking its
watchdog, and the AIM can observe the starvation and act (reset knob).  The
model is a plain dead-man timer: ``kick()`` on every completed execution,
``expired(now)`` when the last kick is older than the timeout.
"""


class Watchdog:
    """Dead-man timer for one processing element.

    Parameters
    ----------
    timeout_us:
        Silence (µs) after which the watchdog reports expiry.
    """

    def __init__(self, timeout_us=100_000):
        if timeout_us <= 0:
            raise ValueError("watchdog timeout must be positive")
        self.timeout_us = timeout_us
        self.last_kick = 0
        self.kicks = 0
        self.expirations = 0

    def kick(self, now):
        """Signal liveness at time ``now``."""
        self.last_kick = now
        self.kicks += 1

    def expired(self, now):
        """True when no kick has arrived within the timeout."""
        is_expired = (now - self.last_kick) > self.timeout_us
        return is_expired

    def check_and_count(self, now):
        """Like :meth:`expired` but also counts observed expirations."""
        if self.expired(now):
            self.expirations += 1
            return True
        return False

    def __repr__(self):
        return "Watchdog(timeout={}us, last_kick={}, kicks={})".format(
            self.timeout_us, self.last_kick, self.kicks
        )
