"""Social inhibition model (Figure 1 class 4).

"Social inhibition: large numbers of experienced specialists inhibit more
take up" (paper §II-A).  Like information transfer, the node senses what
its nestmates (mesh neighbours) are doing, but the interaction is stronger
and state-dependent: each neighbouring provider of task *T* both applies
per-tick inhibition to *T*'s stimulus and — once the number of neighbouring
*T*-providers reaches ``crowd_size`` — temporarily *raises* the local
threshold for *T* (the behavioural-state effect: surrounded by specialists,
the individual becomes refractory to that task).  The threshold relaxes
back toward the innate level when the crowd disperses.
"""

from repro.core.models.base import FACTORS
from repro.core.models.response_threshold import ResponseThresholdModel


class SocialInhibitionModel(ResponseThresholdModel):
    """Response thresholds with crowd-driven refractory thresholds.

    Parameters
    ----------
    neighbor_inhibition:
        Stimulus inhibition per neighbouring provider per tick.
    crowd_size:
        Number of neighbouring providers of a task at which the local
        threshold for that task is raised.
    crowd_penalty:
        Amount added to the threshold while crowded.
    """

    name = "social_inhibition"
    model_number = 4
    factors = frozenset(
        {FACTORS.STIMULUS, FACTORS.NESTMATES, FACTORS.BEHAVIOURAL_STATE,
         FACTORS.INNATE_THRESHOLD, FACTORS.GENES}
    )

    def __init__(self, task_ids, threshold_low=12, threshold_high=36,
                 leak_per_tick=1, neighbor_inhibition=2, crowd_size=2,
                 crowd_penalty=12):
        super().__init__(
            task_ids,
            threshold_low=threshold_low,
            threshold_high=threshold_high,
            leak_per_tick=leak_per_tick,
        )
        self.neighbor_inhibition = neighbor_inhibition
        self.crowd_size = crowd_size
        self.crowd_penalty = crowd_penalty
        self._crowded = set()

    def on_tick(self, aim, now):
        """Apply crowd inhibition and refractory thresholds."""
        super().on_tick(aim, now)
        neighbor_tasks = aim.monitors.read("neighbor_tasks")
        counts = {}
        for task in neighbor_tasks.values():
            if task is not None:
                counts[task] = counts.get(task, 0) + 1
        for task_id in self.task_ids:
            unit = self.pathway.thresholds["task-{}".format(task_id)]
            crowd = counts.get(task_id, 0)
            if crowd and self.neighbor_inhibition:
                unit.inhibit(amount=crowd * self.neighbor_inhibition)
            innate = self.innate_thresholds[task_id]
            if crowd >= self.crowd_size:
                if task_id not in self._crowded:
                    self._crowded.add(task_id)
                    unit.set_threshold(innate + self.crowd_penalty)
            elif task_id in self._crowded:
                self._crowded.discard(task_id)
                unit.set_threshold(innate)

    def crowded_tasks(self):
        """Tasks currently refractory due to neighbouring specialists."""
        return set(self._crowded)
