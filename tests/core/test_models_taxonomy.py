"""Tests for the Figure 1 taxonomy and the model registry."""

import pytest

from repro.core.models import MODEL_REGISTRY, create_model
from repro.core.models.base import FACTORS, IntelligenceModel
from repro.core.models.registry import resolve_model_name


def test_all_six_figure1_classes_plus_baseline_registered():
    numbers = {
        cls.model_number
        for cls in MODEL_REGISTRY.values()
        if cls.model_number is not None
    }
    assert numbers == {1, 2, 3, 4, 5, 6}
    assert "none" in MODEL_REGISTRY


def test_registry_keys_match_class_names():
    for name, cls in MODEL_REGISTRY.items():
        assert cls.name == name


def test_paper_aliases_resolve():
    assert resolve_model_name("ni") == "network_interaction"
    assert resolve_model_name("ffw") == "foraging_for_work"
    assert resolve_model_name("no_intelligence") == "none"


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        resolve_model_name("quantum_ants")


def test_create_model_returns_fresh_instances():
    a = create_model("ffw", (1, 2, 3))
    b = create_model("ffw", (1, 2, 3))
    assert a is not b


def test_create_model_forwards_params():
    model = create_model("ni", (1, 2), threshold=7)
    assert model.threshold == 7


def test_factors_are_valid_constants():
    for cls in MODEL_REGISTRY.values():
        assert cls.factors <= FACTORS.ALL


def test_external_internal_partition():
    assert FACTORS.EXTERNAL | FACTORS.INTERNAL == FACTORS.ALL
    assert not FACTORS.EXTERNAL & FACTORS.INTERNAL


def test_evaluated_models_factor_sets_match_figure1():
    ni = MODEL_REGISTRY["network_interaction"]
    ffw = MODEL_REGISTRY["foraging_for_work"]
    # Network task allocation: location + nestmates + task needs (+stimulus).
    assert FACTORS.LOCATION in ni.factors
    assert FACTORS.NESTMATES in ni.factors
    # Foraging for work: location + ontogeny (temporal polyethism).
    assert FACTORS.LOCATION in ffw.factors
    assert FACTORS.ONTOGENY in ffw.factors


def test_response_threshold_uses_innate_genes():
    cls = MODEL_REGISTRY["response_threshold"]
    assert FACTORS.GENES in cls.factors
    assert FACTORS.INNATE_THRESHOLD in cls.factors


def test_self_reinforcement_uses_experience():
    assert FACTORS.EXPERIENCE in MODEL_REGISTRY["self_reinforcement"].factors


def test_social_inhibition_uses_behavioural_state():
    assert (
        FACTORS.BEHAVIOURAL_STATE
        in MODEL_REGISTRY["social_inhibition"].factors
    )


def test_baseline_model_is_inert():
    model = create_model("none", (1, 2, 3))
    assert model.factors == frozenset()
    assert model.model_number is None


def test_model_requires_task_ids():
    with pytest.raises(ValueError):
        IntelligenceModel(task_ids=())


def test_configure_rejects_unknown_and_private():
    model = create_model("ni", (1, 2))
    with pytest.raises(KeyError):
        model.configure(bogus=1)
    with pytest.raises(KeyError):
        model.configure(_private=1)
