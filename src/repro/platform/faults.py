"""Fault-injection engine.

"In this work our fault model considers multiple node failures" (paper
§IV-B): at a configured time a set of victim nodes fail permanently — the
processor stops, the router stops forwarding, and the surviving system must
re-route and (with intelligence enabled) re-allocate tasks.  Victims are
drawn uniformly from the currently-alive nodes using a dedicated RNG stream
so fault patterns are reproducible per seed and independent of the mapping
stream.
"""


class FaultInjector:
    """Schedules and executes node-failure campaigns.

    Parameters
    ----------
    platform:
        The Centurion platform under test.
    """

    def __init__(self, platform):
        self.platform = platform
        self.scheduled = []
        self.victims = []

    def schedule(self, count, at_us, victims=None):
        """Arrange for ``count`` random nodes to fail at ``at_us``.

        ``victims`` may pin an explicit node list (tests); otherwise they
        are drawn at injection time from nodes still alive, which mirrors
        the paper's procedure (faults hit the *running* system).  Control-
        priority scheduling makes all failures land before any same-tick
        application event.
        """
        if count < 0:
            raise ValueError("fault count must be >= 0")
        if count == 0:
            return
        sim = self.platform.sim
        self.scheduled.append((at_us, count))
        sim.schedule_at(
            at_us,
            lambda c=count, v=victims: self._inject(c, v),
            priority=sim.PRIORITY_CONTROL,
        )

    def _inject(self, count, victims):
        controller = self.platform.controller
        if victims is None:
            rng = self.platform.sim.rng.stream("fault-injection")
            alive = controller.alive_nodes()
            count = min(count, len(alive))
            victims = rng.sample(alive, count)
        for node_id in victims:
            controller.inject_fault(node_id)
            self.victims.append(node_id)

    def __repr__(self):
        return "FaultInjector(scheduled={}, injected={})".format(
            self.scheduled, len(self.victims)
        )
