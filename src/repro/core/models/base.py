"""Model base class and the Figure 1 factor taxonomy.

Figure 1 of the paper illustrates the factors influencing an individual's
choice to undertake a task — external (location, nestmates, task needs,
perceived stimulus) and internal (genes, innate response threshold,
behavioural state, experience, ontogeny) — with numbered arrows marking
which of the six model classes uses each factor.  The :data:`FACTORS`
constants and each model's ``factors`` class attribute encode that taxonomy
so it is testable and printable (see ``examples/model_taxonomy.py``).
"""


class FACTORS:
    """Decision factors from Figure 1 (string constants)."""

    # External factors
    LOCATION = "location"
    NESTMATES = "nestmates"
    TASK_NEEDS = "task_needs"
    STIMULUS = "stimulus"
    # Internal factors
    GENES = "genes"
    INNATE_THRESHOLD = "innate_response_threshold"
    BEHAVIOURAL_STATE = "behavioural_state"
    EXPERIENCE = "experience"
    ONTOGENY = "ontogeny"

    EXTERNAL = frozenset({LOCATION, NESTMATES, TASK_NEEDS, STIMULUS})
    INTERNAL = frozenset(
        {GENES, INNATE_THRESHOLD, BEHAVIOURAL_STATE, EXPERIENCE, ONTOGENY}
    )
    ALL = EXTERNAL | INTERNAL


class IntelligenceModel:
    """Base class for AIM-hosted intelligence programs.

    Subclasses override the monitor-event hooks they care about; every hook
    receives the hosting :class:`~repro.core.aim.ArtificialIntelligenceModule`
    so the model reaches monitors and knobs without holding node state
    itself (one model instance per node, created by the registry).

    Class attributes
    ----------------
    name:
        Short identifier used in experiment configs and traces.
    model_number:
        The Figure 1 class number (1–6), or ``None`` for the baseline.
    factors:
        The subset of :class:`FACTORS` this model class draws on.
    """

    name = "base"
    model_number = None
    factors = frozenset()

    def __init__(self, task_ids):
        self.task_ids = tuple(task_ids)
        if not self.task_ids:
            raise ValueError("model needs at least one task id")

    # -- lifecycle -----------------------------------------------------------

    def bind(self, aim):
        """Called once when uploaded to an AIM; build pathways here."""

    def configure(self, **params):
        """RCAP parameter update; unknown keys raise ``KeyError``.

        The default implementation sets same-named public attributes that
        already exist, which covers simple scalar tunables.
        """
        for key, value in params.items():
            if not hasattr(self, key) or key.startswith("_"):
                raise KeyError("unknown model parameter {!r}".format(key))
            setattr(self, key, value)

    # -- monitor event hooks (default: ignore) ----------------------------------

    def on_packet_routed(self, aim, packet, to_internal, injected):
        """A packet crossed this node's router."""

    def on_internal_sink(self, aim, packet):
        """A packet was accepted by the local processing element."""

    def on_packet_dropped(self, aim, packet):
        """A packet was dropped at this node's router (lost work)."""

    def on_execution_complete(self, aim, task_id):
        """The local PE finished executing one packet/generation."""

    def on_task_changed(self, aim, old, new):
        """The local node's task assignment changed (any cause)."""

    def on_tick(self, aim, now):
        """Periodic timer tick from the AIM."""

    def __repr__(self):
        return "{}(tasks={})".format(type(self).__name__, list(self.task_ids))
