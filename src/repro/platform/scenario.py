"""Declarative fault scenarios.

The seed reproduced one fault shape — "N random nodes fail permanently at
one instant" (paper §IV-B).  A :class:`FaultScenario` generalises that into
a JSON-loadable composition of :class:`FaultEvent` injections:

* **permanent node kills** — the paper's shape (``kind="node"``);
* **link failures** — a mesh edge dies and routing detours around it
  (``kind="link"``);
* **transient / intermittent faults** — ``duration_us`` recovers the
  victims after an outage, ``repeats``/``period_us`` make the outage
  strike again and again;
* **timed waves** — ``repeats`` occurrences spaced ``period_us`` apart
  with no ``duration_us``: k fresh victims per wave instead of one burst;
* **spatial patterns** — victims drawn from a row, column, rectangular
  region or Manhattan neighbourhood instead of uniformly from the mesh;
* **degraded links** — ``kind="link_degrade"``: the edge survives but its
  ``flit_time`` stretches by ``factor`` (partial failure instead of an
  outage); recovery restores the original timing;
* **packet corruption** — ``kind="corrupt"``: packets crossing the edge
  are delivered but flagged corrupted, so the application discards them
  and deadline/QoS metrics count them as misses;
* **controller attach-point failures** — ``kind="controller"``: one of
  the Experiment Controller's attach points is severed, so its monitors
  and knobs for the nodes on the far side go dark until recovery;
* **hazard-rate storms** — ``hazard_per_us`` + ``horizon_us`` draw the
  occurrence times from the scenario RNG stream (a Poisson process over
  the storm window) instead of a fixed schedule, composable with every
  kind, pattern and ``duration_us``;
* **thermal storms** — ``kind="thermal_storm"``: an impulse of
  exogenous heat (``heat_c`` °C) lands on the victim nodes' thermal
  models and decays on its own; a configured DVFS governor
  (:mod:`repro.platform.dynamics`) fights back by throttling;
* **deadlock pressure** — ``kind="deadlock_pressure"``: the victim
  routers' deadlock-recovery wait bound tightens to ``wait_limit_us``,
  so packets queue-waiting there are dropped far sooner — the router's
  best-effort recovery misfiring under pressure.

The :class:`~repro.platform.faults.FaultInjector` interprets scenarios at
runtime; campaigns carry them as a first-class axis whose content hash
(:meth:`FaultScenario.key`) joins the cell key, so stores invalidate
exactly when the injected faults change.

Event schema (JSON)
-------------------
Every event is a dict; unknown keys are rejected.  Fields:

``kind``
    ``"node"`` (default), ``"link"``, ``"link_degrade"``, ``"corrupt"``,
    ``"controller"``, ``"thermal_storm"`` or ``"deadlock_pressure"``.
``at_us``
    Injection time of the first occurrence (µs, required).  For a
    hazard-rate storm it is the start of the storm window instead.
``count``
    Victims per occurrence.  Drawn from the pattern's candidate set at
    injection time (faults hit the *running* system).  ``None`` with a
    spatial pattern means "the whole set".
``victims``
    Pinned victim list instead of a draw: node ids, ``[src, dst]``
    pairs for the link kinds, or attach-point indices for
    ``"controller"``.  When ``count`` is also given the two must agree.
``factor``
    ``"link_degrade"`` only: multiplier (> 1) applied to the victim
    edge's ``flit_time`` while the degradation holds.
``heat_c``
    ``"thermal_storm"`` only: °C of exogenous heat injected into each
    victim node (an impulse — it decays on its own, so the kind takes
    no ``duration_us``).
``wait_limit_us``
    ``"deadlock_pressure"`` only: tightened deadlock-recovery wait
    bound (µs) applied to the victim routers while the pressure holds;
    overlapping pressures run at the *tightest* active limit.
``hazard_per_us`` / ``horizon_us``
    Storm mode: occurrence times are drawn from a Poisson process with
    this hazard rate over ``[at_us, horizon_us]`` (from the dedicated
    scenario RNG stream) instead of the fixed ``at_us``/``repeats``
    schedule.  Incompatible with ``repeats``/``period_us``.
``pattern`` / ``row`` / ``column`` / ``region`` / ``center`` / ``radius``
    Victim-selection shape for the node-victim kinds (``node``,
    ``thermal_storm``, ``deadlock_pressure``): ``"uniform"`` (default),
    ``"row"`` (needs ``row``), ``"column"`` (needs ``column``),
    ``"region"`` (needs ``region = [x0, y0, x1, y1]``, inclusive) or
    ``"neighborhood"`` (needs ``center``; ``radius`` defaults to 1).
``duration_us``
    Outage length; victims recover that long after each occurrence.
    ``None`` means permanent.
``repeats`` / ``period_us``
    Total number of occurrences (default 1) and their spacing.
"""

import dataclasses
import hashlib
import json

NODE = "node"
LINK = "link"
LINK_DEGRADE = "link_degrade"
CORRUPT = "corrupt"
CONTROLLER = "controller"
THERMAL_STORM = "thermal_storm"
DEADLOCK_PRESSURE = "deadlock_pressure"
KINDS = (
    NODE, LINK, LINK_DEGRADE, CORRUPT, CONTROLLER,
    THERMAL_STORM, DEADLOCK_PRESSURE,
)

#: Kinds whose victims are mesh edges (``[src, dst]`` endpoint pairs).
EDGE_KINDS = (LINK, LINK_DEGRADE, CORRUPT)

#: Kinds whose victims are node ids, drawn through the spatial-pattern
#: machinery (row/column/region/neighbourhood alongside uniform).
NODE_KINDS = (NODE, THERMAL_STORM, DEADLOCK_PRESSURE)

UNIFORM = "uniform"
PATTERNS = (UNIFORM, "row", "column", "region", "neighborhood")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One injection (possibly repeating) within a scenario."""

    at_us: int
    kind: str = NODE
    count: int = None
    victims: tuple = None
    pattern: str = UNIFORM
    row: int = None
    column: int = None
    region: tuple = None
    center: int = None
    radius: int = 1
    duration_us: int = None
    repeats: int = 1
    period_us: int = None
    factor: float = None
    hazard_per_us: float = None
    horizon_us: int = None
    heat_c: float = None
    wait_limit_us: int = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError("unknown fault kind {!r}".format(self.kind))
        if self.at_us < 0:
            raise ValueError("fault time must be >= 0")
        if self.pattern not in PATTERNS:
            raise ValueError(
                "unknown victim pattern {!r}; known: {}".format(
                    self.pattern, PATTERNS
                )
            )
        if self.kind not in NODE_KINDS and self.pattern != UNIFORM:
            raise ValueError(
                "{} events support only uniform draws or pinned "
                "victims".format(self.kind)
            )
        if self.kind == LINK_DEGRADE:
            if self.factor is None:
                raise ValueError("link_degrade events need a 'factor'")
            if not self.factor > 1:
                raise ValueError(
                    "degrade factor must be > 1 (a flit-time multiplier)"
                )
        elif self.factor is not None:
            raise ValueError(
                "'factor' only applies to link_degrade events"
            )
        if self.kind == THERMAL_STORM:
            if self.heat_c is None:
                raise ValueError("thermal_storm events need a 'heat_c'")
            if not self.heat_c > 0:
                raise ValueError(
                    "heat_c must be positive (degrees injected)"
                )
            if self.duration_us is not None:
                raise ValueError(
                    "thermal storms are impulses — injected heat decays "
                    "on its own, so 'duration_us' does not apply"
                )
        elif self.heat_c is not None:
            raise ValueError(
                "'heat_c' only applies to thermal_storm events"
            )
        if self.kind == DEADLOCK_PRESSURE:
            if self.wait_limit_us is None:
                raise ValueError(
                    "deadlock_pressure events need a 'wait_limit_us'"
                )
            if not self.wait_limit_us > 0:
                raise ValueError("wait_limit_us must be positive")
        elif self.wait_limit_us is not None:
            raise ValueError(
                "'wait_limit_us' only applies to deadlock_pressure events"
            )
        if self.victims is not None:
            if self.pattern != UNIFORM:
                raise ValueError(
                    "pinned victims cannot be combined with a spatial "
                    "pattern (the pattern would be silently ignored)"
                )
            victims = tuple(
                tuple(v) if isinstance(v, (list, tuple)) else v
                for v in self.victims
            )
            object.__setattr__(self, "victims", victims)
            if self.count is not None and self.count != len(victims):
                raise ValueError(
                    "count={} disagrees with {} pinned victims".format(
                        self.count, len(victims)
                    )
                )
            if self.kind in EDGE_KINDS and any(
                not (isinstance(v, tuple) and len(v) == 2) for v in victims
            ):
                raise ValueError(
                    "{} victims must be [src, dst] endpoint pairs".format(
                        self.kind
                    )
                )
            if self.kind == CONTROLLER and any(
                not isinstance(v, int) or v < 0 for v in victims
            ):
                raise ValueError(
                    "controller victims must be attach-point indices"
                )
        else:
            if self.count is None and self.pattern == UNIFORM:
                raise ValueError(
                    "uniform events need a count (or pinned victims)"
                )
            if self.count is not None and self.count <= 0:
                # A zero-count event injects nothing but would still set
                # the settling/recovery boundary; omit it instead.
                raise ValueError(
                    "fault count must be positive (drop the event for "
                    "a no-op)"
                )
        needs = {
            "row": self.row,
            "column": self.column,
            "region": self.region,
            "neighborhood": self.center,
        }
        if self.pattern in needs and needs[self.pattern] is None:
            raise ValueError(
                "pattern {!r} needs its {!r} parameter".format(
                    self.pattern,
                    "center" if self.pattern == "neighborhood"
                    else self.pattern,
                )
            )
        if self.region is not None:
            region = tuple(int(c) for c in self.region)
            if len(region) != 4:
                raise ValueError("region must be [x0, y0, x1, y1]")
            object.__setattr__(self, "region", region)
        if self.radius < 0:
            raise ValueError("neighbourhood radius must be >= 0")
        if self.duration_us is not None and self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.repeats > 1 and (
            self.period_us is None or self.period_us <= 0
        ):
            raise ValueError("repeating events need a positive period_us")
        if self.hazard_per_us is not None:
            if not self.hazard_per_us > 0:
                raise ValueError("hazard_per_us must be positive")
            if self.horizon_us is None:
                raise ValueError(
                    "hazard-rate storms need a 'horizon_us' window end"
                )
            if self.horizon_us <= self.at_us:
                raise ValueError(
                    "storm horizon_us must lie beyond at_us (the window "
                    "start)"
                )
            if self.repeats != 1 or self.period_us is not None:
                raise ValueError(
                    "hazard-rate storms draw their own occurrence times; "
                    "repeats/period_us do not apply"
                )
        elif self.horizon_us is not None:
            raise ValueError("'horizon_us' only applies with hazard_per_us")

    # -- timing ------------------------------------------------------------

    def is_storm(self):
        """True when occurrence times come from a hazard-rate draw."""
        return self.hazard_per_us is not None

    def occurrence_times(self, rng=None):
        """Injection timestamps of every occurrence, in order.

        Fixed-schedule events ignore ``rng``.  Hazard-rate storms *draw*
        their times — exponential inter-arrival gaps (mean
        ``1 / hazard_per_us`` µs, floored at 1 µs and rounded to the
        integer clock) walked from ``at_us`` until ``horizon_us`` — and
        therefore require the scenario RNG stream; the draw consumes one
        variate per occurrence plus the final out-of-window one, so a
        fixed seed yields a fixed storm.
        """
        if self.hazard_per_us is not None:
            if rng is None:
                raise ValueError(
                    "hazard-rate storms need the scenario RNG stream to "
                    "draw occurrence times"
                )
            times = []
            t = self.at_us
            while True:
                t += max(1, int(round(rng.expovariate(self.hazard_per_us))))
                if t > self.horizon_us:
                    return times
                times.append(t)
        if self.repeats == 1:
            return [self.at_us]
        return [
            self.at_us + i * self.period_us for i in range(self.repeats)
        ]

    def nominal_victims(self):
        """Victims per occurrence as declared (None = pattern-sized)."""
        if self.victims is not None:
            return len(self.victims)
        return self.count

    # -- serialisation -----------------------------------------------------

    #: Field-name -> default for every optional field, derived from the
    #: dataclass itself (below the class body) so a field added later is
    #: automatically serialised and content-hashed.
    _DEFAULTS = None

    def to_dict(self):
        """Compact JSON dict: defaulted fields are omitted."""
        data = {"at_us": self.at_us}
        for field, default in self._DEFAULTS.items():
            value = getattr(self, field)
            if value != default:
                if field in ("victims", "region"):
                    value = [
                        list(v) if isinstance(v, tuple) else v
                        for v in value
                    ]
                data[field] = value
        return data

    #: Fields added after the v1 schema.  ``canonical`` emits them only
    #: when set: a v1 scenario's canonical dict (and therefore its
    #: content hash and every store key derived from it) is byte-for-byte
    #: what it was before these fields existed.
    _CANONICAL_OPTIONAL = frozenset(
        ("factor", "hazard_per_us", "horizon_us", "heat_c",
         "wait_limit_us")
    )

    def canonical(self):
        """Fully explicit dict for content hashing.

        Every v1 field appears whether defaulted or not; post-v1 fields
        (see :attr:`_CANONICAL_OPTIONAL`) join only when they deviate
        from their default, keeping pre-existing scenario hashes stable.
        """
        data = {"at_us": self.at_us}
        for field, default in self._DEFAULTS.items():
            value = getattr(self, field)
            if field in self._CANONICAL_OPTIONAL and value == default:
                continue
            if field in ("victims", "region") and value is not None:
                value = [
                    list(v) if isinstance(v, tuple) else v for v in value
                ]
            data[field] = value
        return data

    @classmethod
    def from_dict(cls, data):
        """Build an event from a plain dict; unknown keys are rejected."""
        data = dict(data)
        if "at_us" not in data:
            raise ValueError("fault event needs 'at_us'")
        kwargs = {"at_us": int(data.pop("at_us"))}
        for field in cls._DEFAULTS:
            if field in data:
                kwargs[field] = data.pop(field)
        if data:
            raise ValueError(
                "unknown fault event keys: {}".format(sorted(data))
            )
        return cls(**kwargs)


FaultEvent._DEFAULTS = {
    field.name: field.default
    for field in dataclasses.fields(FaultEvent)
    if field.name != "at_us"
}


@dataclasses.dataclass(frozen=True)
class FaultScenario:
    """A named, ordered composition of fault events."""

    name: str
    events: tuple = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("fault scenario needs a name")
        events = tuple(
            event if isinstance(event, FaultEvent)
            else FaultEvent.from_dict(event)
            for event in self.events
        )
        object.__setattr__(self, "events", events)

    # -- queries -----------------------------------------------------------

    def first_fault_us(self):
        """Time of the earliest injection, or ``None`` with no events.

        For a hazard-rate storm this is the start of the storm *window*
        (``at_us``): the first drawn occurrence lands at or after it.
        """
        if not self.events:
            return None
        return min(event.at_us for event in self.events)

    def occurrence_count(self):
        """Total *declared* occurrences across all events.

        Hazard-rate storms count as one declaration — their actual
        occurrence count is a per-seed draw made at apply time.
        """
        return sum(event.repeats for event in self.events)

    # -- serialisation -----------------------------------------------------

    def to_dict(self):
        """JSON-friendly dict; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }

    def canonical(self):
        """Fully explicit dict used for content hashing."""
        return {
            "name": self.name,
            "events": [event.canonical() for event in self.events],
        }

    def key(self):
        """Stable SHA-256 content hash of the scenario."""
        blob = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data):
        """Build a scenario from a plain dict (e.g. a loaded JSON file)."""
        data = dict(data)
        name = data.pop("name", None)
        if not name:
            raise ValueError("fault scenario needs a 'name'")
        events = data.pop("events", ())
        if data:
            raise ValueError(
                "unknown fault scenario keys: {}".format(sorted(data))
            )
        return cls(name=name, events=tuple(events))

    @classmethod
    def from_json_file(cls, path):
        """Load a scenario from a JSON file."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def burst(cls, count, at_us, name=None):
        """The legacy shape: ``count`` uniform permanent kills at one
        instant.  Interpreting this scenario draws from the same RNG
        stream in the same order as the historic ``FaultInjector``
        fast path, so results are bit-identical — including
        ``count=0``, which is the legacy no-op (an empty scenario, so
        it sets no settling/recovery boundary).
        """
        events = (
            (FaultEvent(at_us=at_us, count=count),) if count else ()
        )
        return cls(
            name=name or "burst-{}x@{}".format(count, at_us),
            events=events,
        )

    def __repr__(self):
        return "FaultScenario({!r}, {} events)".format(
            self.name, len(self.events)
        )
