"""Quartile statistics.

Tables I and II report "median (Q2) and 25th/75th percentiles (Q1/Q3) for
100 independent, randomly initialised runs"; these helpers compute exactly
that, using linear interpolation between order statistics (the common
"linear"/type-7 definition).
"""


def percentile(values, fraction):
    """Interpolated percentile of ``values`` at ``fraction`` in [0, 1]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    value = ordered[lower] * (1.0 - weight) + ordered[upper] * weight
    # The interpolation can underflow outside its bracket for subnormal
    # inputs (e.g. 5e-324 * 0.25 rounds to 0.0); clamp to the order
    # statistics it interpolates between.
    return min(max(value, ordered[lower]), ordered[upper])


def quartiles(values):
    """``(Q1, Q2, Q3)`` of a sequence."""
    return (
        percentile(values, 0.25),
        percentile(values, 0.50),
        percentile(values, 0.75),
    )


def median(values):
    """The 50th percentile."""
    return percentile(values, 0.5)


def mean(values):
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def summarize(values):
    """Dict summary: n, mean, min, max and quartiles."""
    q1, q2, q3 = quartiles(values)
    return {
        "n": len(values),
        "mean": mean(values),
        "min": min(values),
        "q1": q1,
        "q2": q2,
        "q3": q3,
        "max": max(values),
    }


def iqr(values):
    """Inter-quartile range."""
    q1, _q2, q3 = quartiles(values)
    return q3 - q1
