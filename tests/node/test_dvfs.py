"""Tests for frequency scaling."""

import pytest
from hypothesis import given, strategies as st

from repro.node.dvfs import (
    MAX_FREQUENCY_MHZ,
    MIN_FREQUENCY_MHZ,
    FrequencyScaler,
)


def test_defaults_to_nominal():
    scaler = FrequencyScaler(nominal_mhz=100)
    assert scaler.current_mhz == 100
    assert scaler.slowdown == 1.0


def test_set_frequency_clamps_low():
    scaler = FrequencyScaler()
    assert scaler.set_frequency(1) == MIN_FREQUENCY_MHZ


def test_set_frequency_clamps_high():
    scaler = FrequencyScaler()
    assert scaler.set_frequency(1000) == MAX_FREQUENCY_MHZ


def test_half_frequency_doubles_duration():
    scaler = FrequencyScaler(nominal_mhz=100)
    scaler.set_frequency(50)
    assert scaler.scale_duration(1000) == 2000


def test_triple_frequency_shortens_duration():
    scaler = FrequencyScaler(nominal_mhz=100)
    scaler.set_frequency(300)
    assert scaler.scale_duration(900) == 300


def test_duration_never_below_one():
    scaler = FrequencyScaler(nominal_mhz=100)
    scaler.set_frequency(300)
    assert scaler.scale_duration(1) == 1


def test_changes_counted_only_on_actual_change():
    scaler = FrequencyScaler()
    scaler.set_frequency(200)
    scaler.set_frequency(200)
    scaler.set_frequency(150)
    assert scaler.changes == 2


def test_invalid_nominal_rejected():
    with pytest.raises(ValueError):
        FrequencyScaler(nominal_mhz=5)


@given(st.integers(min_value=-500, max_value=1500))
def test_set_frequency_always_in_range(mhz):
    scaler = FrequencyScaler()
    applied = scaler.set_frequency(mhz)
    assert MIN_FREQUENCY_MHZ <= applied <= MAX_FREQUENCY_MHZ
