"""Fault-injection engine.

"In this work our fault model considers multiple node failures" (paper
§IV-B): at a configured time a set of victim nodes fail permanently — the
processor stops, the router stops forwarding, and the surviving system must
re-route and (with intelligence enabled) re-allocate tasks.  Victims are
drawn from the currently-alive candidates using a dedicated RNG stream so
fault patterns are reproducible per seed and independent of the mapping
stream.

Beyond the paper's single burst, the injector is an *interpreter* for
declarative :class:`~repro.platform.scenario.FaultScenario` compositions:
link failures, transient/intermittent outages (fail, then recover, then
optionally fail again), timed waves and spatial victim patterns
(row/column/region/neighbourhood).  The legacy :meth:`schedule` surface
maps onto a one-event uniform burst and draws the exact RNG sequence the
historic implementation drew, so existing sweeps stay bit-identical.
"""

from repro.noc.topology import normalize_edge
from repro.platform.scenario import LINK, NODE, UNIFORM, FaultEvent

#: RNG stream name shared by every victim draw (legacy-compatible).
FAULT_STREAM = "fault-injection"


class FaultInjector:
    """Schedules and executes fault campaigns against a platform.

    Parameters
    ----------
    platform:
        The Centurion platform under test.
    """

    def __init__(self, platform):
        self.platform = platform
        #: Legacy bookkeeping: ``(at_us, count, pinned_victims)`` per
        #: :meth:`schedule` call (pinned victims recorded for
        #: introspection; ``None`` for runtime draws).
        self.scheduled = []
        #: Node ids actually killed, in injection order (repeats included).
        self.victims = []
        #: ``(src, dst)`` link endpoints actually failed, in order.
        self.link_victims = []
        #: ``(time_us, kind, victim)`` recovery log.
        self.recovered = []
        #: Scenarios applied through :meth:`apply`.
        self.scenarios = []
        #: Victims a *permanent* event has claimed: a pending transient
        #: recovery must not revive them (permanent declarations win).
        self._permanent = set()
        #: Latest declared outage end per ``(kind, victim)``: overlapping
        #: transients extend each other instead of the earliest recovery
        #: cutting every later outage short.
        self._outage_until = {}

    # -- legacy surface ----------------------------------------------------

    def schedule(self, count, at_us, victims=None):
        """Arrange for ``count`` random nodes to fail at ``at_us``.

        ``victims`` may pin an explicit node list (tests); when both are
        given they must agree — a pinned list silently overriding the
        count hid real setup mistakes.  Otherwise victims are drawn at
        injection time from nodes still alive, which mirrors the paper's
        procedure (faults hit the *running* system).  Control-priority
        scheduling makes all failures land before any same-tick
        application event.
        """
        if count < 0:
            raise ValueError("fault count must be >= 0")
        if victims is not None:
            victims = tuple(victims)
            if count != len(victims):
                raise ValueError(
                    "count={} disagrees with {} pinned victims".format(
                        count, len(victims)
                    )
                )
        if count == 0:
            return
        self.scheduled.append((at_us, count, victims))
        self._schedule_event(
            FaultEvent(at_us=at_us, count=count, victims=victims)
        )

    # -- scenario surface --------------------------------------------------

    def apply(self, scenario):
        """Schedule every event of a declarative scenario.

        Pinned victims are validated against this platform's topology
        up front, so a malformed scenario fails here — at apply time —
        instead of deep inside the event loop at simulated fault time.
        """
        for event in scenario.events:
            self._check_victims(scenario, event)
        self.scenarios.append(scenario)
        for event in scenario.events:
            self._schedule_event(event)

    def _check_victims(self, scenario, event):
        if event.victims is None:
            return
        network = self.platform.network
        num_nodes = network.topology.num_nodes
        if event.kind == NODE:
            for victim in event.victims:
                if not 0 <= victim < num_nodes:
                    raise ValueError(
                        "scenario {!r}: node victim {} outside the "
                        "{}-node mesh".format(
                            scenario.name, victim, num_nodes
                        )
                    )
        else:
            for src, dst in event.victims:
                if (src, dst) not in network.links:
                    raise ValueError(
                        "scenario {!r}: link victim ({}, {}) is not a "
                        "mesh edge".format(scenario.name, src, dst)
                    )

    def _schedule_event(self, event):
        sim = self.platform.sim
        for at in event.occurrence_times():
            sim.schedule_at(
                at,
                lambda e=event: self._execute(e),
                priority=sim.PRIORITY_CONTROL,
            )

    # -- interpretation ----------------------------------------------------

    def _execute(self, event):
        """Inject one occurrence of ``event`` at the current time."""
        if event.kind == NODE:
            victims = self._node_victims(event)
            self._inject_nodes(victims)
        else:
            victims = [
                normalize_edge(*edge)
                for edge in self._link_victims_for(event)
            ]
            self._inject_links(victims)
        if event.duration_us is None:
            # A permanent claim sticks to every declared victim — even
            # one currently down from a transient outage, whose pending
            # recovery must no longer revive it.
            self._permanent.update(
                (event.kind, victim) for victim in victims
            )
        elif victims:
            # The outage claims every declared victim, including one
            # already down from an earlier transient — the later end
            # time wins, so overlapping outages extend instead of the
            # earliest recovery reviving everything.
            sim = self.platform.sim
            until = sim.now + event.duration_us
            for victim in victims:
                key = (event.kind, victim)
                if until > self._outage_until.get(key, 0):
                    self._outage_until[key] = until
            sim.schedule_at(
                until,
                lambda k=event.kind, v=victims: self._recover(k, v),
                priority=sim.PRIORITY_CONTROL,
            )

    def _inject_nodes(self, victims):
        controller = self.platform.controller
        pes = self.platform.pes
        killed = []
        for node_id in victims:
            if pes[node_id].halted:
                continue  # double injection of an already-dead node
            controller.inject_fault(node_id)
            self.victims.append(node_id)
            killed.append(node_id)
        return killed

    def _inject_links(self, edges):
        network = self.platform.network
        failed = []
        for src, dst in edges:
            if network.link_failed(src, dst):
                continue
            network.fail_link(src, dst)
            self.link_victims.append((src, dst))
            failed.append((src, dst))
        return failed

    def _recover(self, kind, victims):
        """Undo one occurrence's outage (the transient-fault back edge).

        A victim stays down when a permanent event claimed it since the
        outage began, or when a later-ending transient outage still
        covers it — only the final claim's recovery revives.
        """
        now = self.platform.sim.now
        controller = self.platform.controller
        network = self.platform.network
        pes = self.platform.pes
        for victim in victims:
            key = (kind, victim)
            if key in self._permanent:
                continue
            if self._outage_until.get(key, 0) > now:
                continue  # a longer overlapping outage still holds it
            if kind == NODE:
                if pes[victim].halted:
                    controller.recover_node(victim)
                    self.recovered.append((now, NODE, victim))
            elif network.link_failed(*victim):
                network.recover_link(*victim)
                self.recovered.append((now, LINK, victim))

    # -- victim selection --------------------------------------------------

    def _node_victims(self, event):
        """Node victims for one occurrence, drawn at injection time.

        The uniform draw replicates the historic injector exactly —
        same stream, ``min``-capped count, ``rng.sample`` over the
        alive list — which is what keeps legacy ``fault_counts``
        campaigns bit-identical under the scenario engine.
        """
        if event.victims is not None:
            return event.victims
        rng = self.platform.sim.rng.stream(FAULT_STREAM)
        alive = self.platform.controller.alive_nodes()
        if event.pattern == UNIFORM:
            count = min(event.count, len(alive))
            return rng.sample(alive, count)
        candidates = self._pattern_candidates(event, alive)
        if event.count is None:
            return candidates
        count = min(event.count, len(candidates))
        return rng.sample(candidates, count)

    def _pattern_candidates(self, event, alive):
        """Alive nodes inside the event's spatial shape, id-ordered."""
        topology = self.platform.network.topology
        coords = topology.coords
        if event.pattern == "row":
            return [n for n in alive if coords(n)[1] == event.row]
        if event.pattern == "column":
            return [n for n in alive if coords(n)[0] == event.column]
        if event.pattern == "region":
            x0, y0, x1, y1 = event.region
            return [
                n for n in alive
                if x0 <= coords(n)[0] <= x1 and y0 <= coords(n)[1] <= y1
            ]
        # neighbourhood: Manhattan ball around the centre node.
        center = event.center
        radius = event.radius
        return [
            n for n in alive if topology.manhattan(n, center) <= radius
        ]

    def _link_victims_for(self, event):
        """Link victims for one occurrence (pinned pairs or a draw)."""
        if event.victims is not None:
            return [tuple(v) for v in event.victims]
        network = self.platform.network
        rng = self.platform.sim.rng.stream(FAULT_STREAM)
        healthy = sorted(
            edge
            for edge in {
                normalize_edge(a, b) for a, b in network.links
            }
            if not network.link_failed(*edge)
        )
        count = min(event.count, len(healthy))
        return rng.sample(healthy, count)

    def __repr__(self):
        return (
            "FaultInjector(scheduled={}, scenarios={}, injected={}, "
            "links={}, recovered={})".format(
                self.scheduled,
                len(self.scenarios),
                len(self.victims),
                len(self.link_victims),
                len(self.recovered),
            )
        )
