"""Streaming row iteration over campaign stores (O(keys) memory).

:func:`~repro.campaign.gc.load_records` materialises every record of a
campaign — series included — which is fine for surveys but not for
sweep-scale analysis: a 10⁶-cell root with series attached does not fit
in memory.  This module is the row-iterator surface the analysis layer
(:mod:`repro.analysis.streaming`, ``campaign report``/``export``) builds
on instead: records stream one at a time, and only *keys and byte
offsets* are ever held — never the decoded records themselves.

The merge semantics are exactly the store's
(:class:`~repro.campaign.store.ResultStore` and
:func:`~repro.campaign.gc.load_records`): within one campaign the main
stream is read before the worker streams, the last write per key wins,
and keys yield in first-seen order; across campaigns the first campaign
holding a key wins (under the dedup contract every holder's line is
byte-identical anyway).  Torn, garbage and keyless lines are skipped,
costing only themselves.

Winning records are re-read by seeking to their recorded offset, and the
record found there is *verified* to still carry its key — a file
compacted underneath a running iteration yields a skip, never another
cell's data (mirroring :meth:`~repro.campaign.index.StoreIndex.lookup`).
"""

import json
import os

from repro.campaign.index import campaign_dirs, iter_jsonl
from repro.campaign.store import RESULTS_FILE, worker_files


def campaign_name(directory):
    """The campaign name of a store directory (its base name)."""
    return os.path.basename(os.path.normpath(directory))


def _stream_paths(directory):
    """The directory's JSONL streams in merge order (main, then shards)."""
    main = os.path.join(directory, RESULTS_FILE)
    paths = [main] if os.path.exists(main) else []
    paths.extend(worker_files(directory))
    return paths


def iter_campaign_records(directory, skip=None):
    """Yield ``(key, record)`` winners of one campaign, streaming.

    Two passes, O(keys) memory: the first scans every stream recording
    only each key's winning ``(path, offset)`` (last write wins, merge
    order as documented above); the second seeks back to the winners and
    yields them in first-seen key order — the order gc compaction and
    ``campaign export`` preserve.  ``skip`` (a set of keys) suppresses
    keys an earlier campaign already yielded without decoding their
    records.
    """
    winners = {}
    order = []
    for path in _stream_paths(directory):
        for begin, _end, record in iter_jsonl(path):
            if record is None:
                continue
            key = record.get("key")
            if not key:
                continue
            if key not in winners:
                order.append(key)
            winners[key] = (path, begin)
    handles = {}
    try:
        for key in order:
            if skip is not None and key in skip:
                continue
            path, offset = winners[key]
            handle = handles.get(path)
            if handle is None:
                try:
                    handle = handles[path] = open(path, "rb")
                except OSError:
                    continue  # stream removed underneath (gc/reconcile)
            handle.seek(offset)
            line = handle.readline()
            if not line.endswith(b"\n"):
                continue  # file changed underneath: skip, never lie
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if not isinstance(record, dict) or record.get("key") != key:
                continue  # verified stale: compaction moved the line
            yield key, record
    finally:
        for handle in handles.values():
            handle.close()


def iter_merged_records(dirs):
    """Yield ``(campaign, key, record)`` across campaign directories.

    Directories are taken in the given order and the first campaign
    holding a key wins — the exact merge
    :func:`~repro.campaign.gc.merged_records` computes, but streaming:
    at no point is more than one decoded record (plus the key/offset
    maps) alive.  This is the iterator ``campaign export`` and the
    streaming analysis layer consume.
    """
    seen = set()
    for directory in dirs:
        name = campaign_name(directory)
        for key, record in iter_campaign_records(directory, skip=seen):
            seen.add(key)
            yield name, key, record


def iter_root_records(root, dirs=None):
    """:func:`iter_merged_records` over every campaign under ``root``.

    ``dirs`` (names or paths) restricts the pass; the default is every
    subdirectory holding a ``results.jsonl`` or worker stream, in sorted
    name order — the deterministic whole-root merge ``campaign report``
    aggregates.
    """
    if dirs is None:
        dirs = [os.path.join(root, name) for name in campaign_dirs(root)]
    return iter_merged_records(dirs)


def iter_merged_rows(dirs):
    """Yield ``(campaign, key, row)`` scalar rows across campaigns.

    The ``row`` is each winning record's scalar-row dict (see
    :mod:`repro.analysis.export` for the schema); records without one
    (foreign JSONL) are skipped.  Series are decoded as part of the
    record's JSON line but never retained — the constant-memory
    aggregation path (:mod:`repro.analysis.streaming`) holds only
    per-group sketches on top of this iterator.
    """
    for campaign, key, record in iter_merged_records(dirs):
        row = record.get("row")
        if isinstance(row, dict):
            yield campaign, key, row
