"""Campaign engine: declarative sweeps with a persistent result store.

The paper's artefacts (Tables I/II, Figure 4) are grids of
model × seed × fault-count simulations.  This package names such grids
*declaratively*, caches every completed cell on disk, and fans the
remaining cells out across worker processes:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` describes a sweep
  (models, seeds, fault counts, config overrides) and expands it into
  :class:`RunDescriptor` cells, each with a stable content-hash key;
* :mod:`repro.campaign.store` — :class:`ResultStore` persists finished
  cells as JSONL keyed by that hash, so re-running a campaign skips
  completed work and an interrupted sweep resumes where it stopped;
* :mod:`repro.campaign.executor` — :func:`run_campaign` shards pending
  cells across a multiprocessing pool (chunked ``imap``, ordered
  collection, per-cell error context, progress reporting);
* :mod:`repro.campaign.index` — :class:`StoreIndex`, the per-root
  cross-campaign dedup index (store v2);
* :mod:`repro.campaign.gc` — store management: ``campaign ls`` surveys,
  ``campaign gc`` compaction, merged CSV/JSONL export;
* :mod:`repro.campaign.paper` — the three canonical paper campaigns and
  the grouping that turns a finished campaign back into table rows or
  Figure 4 panels;
* :mod:`repro.campaign.serve` / :mod:`repro.campaign.client` — the
  multi-tenant sweep daemon (``campaign serve``) and its typed HTTP
  client (``campaign submit/status/wait``).

One root, many tenants
----------------------
The daemon serves a single store root, and that root **is** the dedup
scope: every tenant's campaigns are sibling directories under it, cell
keys hash the full simulation payload, and a key computed once — by any
tenant, via HTTP or via ``campaign --spec``, before or during the
daemon's life — is never executed again for any other.  Live
submissions dedup through the server's in-memory done map (cell keys
route to one hash-sharded worker each, so overlapping tenants race-free
execute each shared cell exactly once); campaigns computed before the
daemon started resolve through the root's persistent
:class:`~repro.campaign.index.StoreIndex`.  Results land as ordinary
store-v2 records in each campaign's ``results.jsonl`` — byte-identical
to the lines ``campaign --spec`` writes — so ``campaign
ls/gc/export/report`` and the streaming analysis work unchanged on a
served root.

Store layout
------------
A campaign directory holds two files:

* ``spec.json`` — provenance: the expanded spec that last wrote here;
* ``results.jsonl`` — one JSON record per completed cell, appended as
  cells finish (the checkpoint stream).  Each record carries the cell
  key, the ``(model, seed, faults)`` cell coordinates, the scalar row,
  the application/NoC statistics and (when requested) the full metrics
  series.  On load, the last record per key wins, so a crashed append
  at worst loses its own line.

Store v2
--------
Sibling campaign directories share a *store root* (their common parent,
e.g. ``campaigns/``), and three v2 layers operate across it — all
derivable from the v1 files above, never required by them:

* **Dedup index** — a root-level ``index.jsonl`` maps every cell key to
  ``(campaign, byte offset)`` of the record holding it, built and
  refreshed incrementally (per-campaign ``scanned`` watermarks; a file
  that shrank is rescanned).  :func:`run_campaign` resolves pending
  cells against it before executing anything, so e.g. table2 reuses
  table1's zero-fault cells with **zero** simulations; the reused record
  is copied into the requesting campaign's own stream byte-identically
  (every writer serialises via ``store.encode_line``).  Lookups seek and
  *verify* — a diverged entry is a miss, never wrong data.  Dedup scope:
  keys hash the full simulation payload, so dedup never crosses
  differing spec payloads.
* **Worker shards** — ``run_campaign(workers=N, worker_id=K)`` keeps
  only the pending cells whose key hashes to shard ``K``
  (:func:`~repro.campaign.executor.shard_of`, a pure function of the
  key) and appends to a private ``results.worker-K.jsonl``, so
  independent processes or machines sharing the directory drain one
  campaign with no write contention and no file locks.  Readers merge
  main + worker streams; :meth:`ResultStore.reconcile` (or ``gc``)
  folds the worker streams back into ``results.jsonl`` verbatim.
* **Management** (:mod:`repro.campaign.gc`) — ``campaign ls`` surveys
  directories (grid completion, orphaned/stale keys, superseded and
  torn lines, unreconciled shards), ``campaign gc`` compacts them
  (dry-run by default; ``--apply`` rewrites atomically, folds shards,
  drops orphans/duplicates/torn lines and rebuilds the root index —
  which is also how any index/row divergence is repaired), and
  ``campaign export`` emits merged CSV/JSONL across campaigns.

Hash-key stability contract
---------------------------
A cell key is the SHA-256 of the canonical JSON (sorted keys, no
whitespace) of ``{schema, model, seed, faults, metric, config}`` where
``model`` is the *resolved* registry name (aliases like ``ffw`` hash
identically to ``foraging_for_work``) and ``config`` is the
:meth:`~repro.platform.config.PlatformConfig.canonical` field dict:
every v1 field always, post-v1 fields (the self-healing dynamics group
— ``dvfs_governor``, ``governor_hot_c``, ``governor_cool_c``,
``governor_throttle_mhz``, ``governor_dwell_us``, ``watchdog_recovery``,
``watchdog_timeout_us``) only when changed from their defaults,
mirroring the ``FaultEvent`` rule below.  Keys are therefore stable
across processes, platforms and campaign orderings — and across
canonical-optional additions: a dynamics-free config hashes exactly as
it did before the dynamics fields existed, while setting any of them
mints a distinct key.  Changing a *v1* field's meaning or adding a
non-optional field still changes every key, which is intended (stale
results are never reused against a config they did not describe).  Bump
``spec.HASH_SCHEMA_VERSION`` to force invalidation by hand.
``keep_series`` is deliberately excluded from the key — it changes what
is recorded, not what is simulated; a cached cell without a series is
treated as a miss when the campaign asks for series.

Scenario cells extend the payload with a ``scenario`` entry: the fully
explicit (every-field) dict of the
:class:`~repro.platform.scenario.FaultScenario`, so *any* change to the
injected faults — timing, counts, patterns, durations, even the
scenario's name — mints a new key and invalidates the stored cell.
Legacy fault-count cells omit the entry entirely, which keeps every key
minted before the scenario axis existed valid: old stores keep hitting.

The fault-taxonomy-v2 event kinds (``link_degrade``, ``corrupt``,
``controller``, hazard-rate storms) and the dynamics kinds
(``thermal_storm``, ``deadlock_pressure``) join the same contract one
level down: their fields (``factor``, ``hazard_per_us``,
``horizon_us``, ``heat_c``, ``wait_limit_us``) enter the scenario's
canonical dict *only when set*
(:attr:`~repro.platform.scenario.FaultEvent._CANONICAL_OPTIONAL`), so
every scenario written before those kinds existed canonicalises — and
hashes — to the byte-identical payload it always had, while any event
that does use a v2 field mints a distinct key.

Workload cells (the ``workloads:`` axis) extend the payload with a
``workload`` entry: the
:meth:`~repro.app.workloads.WorkloadSpec.canonical` form of the
declarative spec driving the cell — schema version, name, every task's
explicit v1 fields (service, weight, deadline, edges with fanout, join
flag, arrival shape) — so any change to the task graph or its arrival
curves mints a new key.  Cells running the legacy fork-join application
omit the entry entirely, conserving every pre-workload key byte for
byte; within the entry the canonical-optional rule recurses once more
(``per_task_series`` on the spec, ``service_dist``/``service_spread``
per task join only when set), so specs written before those fields
existed keep their keys too.
"""

from repro.campaign.client import CampaignClient, CampaignStatus, ServeError
from repro.campaign.executor import CampaignReport, run_campaign, shard_of
from repro.campaign.index import StoreIndex
from repro.campaign.serve import CampaignServer
from repro.campaign.spec import CampaignSpec, RunDescriptor
from repro.campaign.store import ResultStore

__all__ = [
    "CampaignClient",
    "CampaignReport",
    "CampaignServer",
    "CampaignSpec",
    "CampaignStatus",
    "ResultStore",
    "RunDescriptor",
    "ServeError",
    "StoreIndex",
    "run_campaign",
    "shard_of",
]
