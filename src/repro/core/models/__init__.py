"""The six division-of-labour model classes of Figure 1.

"Six classes of ant behaviour models are generally used in the literature,
with each one differing in what information source is used by individuals to
determine which task they should be undertaking" (paper §II-A):

1. response threshold,
2. integrated information transfer,
3. self-reinforcement,
4. social inhibition,
5. foraging for work,
6. network task allocation.

The paper's evaluation embeds (5) and (6) — its "Foraging for Work" and
"Network Interaction" intelligence schemes — in the AIMs; the other four are
implemented here over the same stimulus-threshold primitives as extensions
and are exercised by tests and examples.
"""

from repro.core.models.base import (
    FACTORS,
    IntelligenceModel,
)
from repro.core.models.adaptive_ni import AdaptiveNetworkInteractionModel
from repro.core.models.no_intelligence import NoIntelligenceModel
from repro.core.models.network_interaction import NetworkInteractionModel
from repro.core.models.foraging_for_work import ForagingForWorkModel
from repro.core.models.response_threshold import ResponseThresholdModel
from repro.core.models.information_transfer import InformationTransferModel
from repro.core.models.self_reinforcement import SelfReinforcementModel
from repro.core.models.social_inhibition import SocialInhibitionModel
from repro.core.models.registry import MODEL_REGISTRY, create_model

__all__ = [
    "FACTORS",
    "IntelligenceModel",
    "AdaptiveNetworkInteractionModel",
    "NoIntelligenceModel",
    "NetworkInteractionModel",
    "ForagingForWorkModel",
    "ResponseThresholdModel",
    "InformationTransferModel",
    "SelfReinforcementModel",
    "SocialInhibitionModel",
    "MODEL_REGISTRY",
    "create_model",
]
