"""Tests for the run harness (on the small fast config)."""

import pytest

from repro.experiments.runner import (
    RunError,
    default_processes,
    default_seeds,
    iter_runs,
    run_batch,
    run_single,
)
from repro.platform.config import PlatformConfig


@pytest.fixture(scope="module")
def small_config():
    return PlatformConfig.small()


def test_run_single_populates_fields(small_config):
    result = run_single("none", seed=5, config=small_config)
    assert result.model == "none"
    assert result.seed == 5
    assert result.faults == 0
    assert result.settling_time_ms > 0
    assert result.settled_performance >= 0
    assert result.recovery_time_ms == 0.0
    assert result.recovered_performance == result.settled_performance
    assert result.series is not None
    assert result.app_stats["generated"] > 0


def test_run_single_with_faults_measures_recovery(small_config):
    result = run_single("none", seed=5, faults=4, config=small_config)
    assert result.faults == 4
    # Zero means the metric was already inside the post-fault steady band
    # at injection time (the paper's Q1 = 3 ms rows are the same effect).
    assert result.recovery_time_ms >= 0
    assert result.noc_stats["sent"] > 0


def test_run_single_deterministic(small_config):
    a = run_single("ffw", seed=9, config=small_config, keep_series=False)
    b = run_single("ffw", seed=9, config=small_config, keep_series=False)
    assert a.settled_performance == b.settled_performance
    assert a.app_stats == b.app_stats


def test_keep_series_false_drops_series(small_config):
    result = run_single("none", seed=5, config=small_config,
                        keep_series=False)
    assert result.series is None


def test_run_batch_sequential(small_config):
    results = run_batch("none", seeds=[1, 2], config=small_config)
    assert [r.seed for r in results] == [1, 2]
    assert len({r.settled_performance for r in results}) >= 1


def test_run_batch_resolves_alias(small_config):
    (result,) = run_batch("ffw", seeds=[1], config=small_config)
    assert result.model == "foraging_for_work"


def test_as_row_export(small_config):
    result = run_single("none", seed=5, config=small_config)
    row = result.as_row()
    assert row["model"] == "none"
    assert "settled_performance" in row


def test_default_seeds():
    assert default_seeds(3) == [1000, 1001, 1002]
    assert default_seeds(2, base=5) == [5, 6]


def test_default_processes_env(monkeypatch):
    monkeypatch.setenv("REPRO_PROCESSES", "3")
    assert default_processes() == 3
    monkeypatch.delenv("REPRO_PROCESSES")
    assert default_processes() >= 1


def test_run_batch_parallel_matches_sequential(small_config):
    seeds = [1, 2, 3]
    sequential = run_batch("none", seeds, config=small_config)
    parallel = run_batch("none", seeds, config=small_config, processes=2)
    assert [r.as_row() for r in parallel] == [
        r.as_row() for r in sequential
    ]


def test_failing_seed_reports_cell_context(small_config):
    with pytest.raises(RunError) as excinfo:
        run_batch("not_a_model", seeds=[1], faults=3, config=small_config)
    err = excinfo.value
    assert (err.model, err.seed, err.faults) == ("not_a_model", 1, 3)
    assert "not_a_model" in str(err)
    assert "KeyError" in err.details


def test_failing_seed_reports_cell_context_parallel(small_config):
    with pytest.raises(RunError) as excinfo:
        run_batch("not_a_model", seeds=[1, 2], config=small_config,
                  processes=2)
    assert excinfo.value.seed == 1


def test_iter_runs_streams_in_order(small_config):
    jobs = [
        ("none", seed, 0, small_config, "joins", False) for seed in (4, 5)
    ]
    seen = [result.seed for result in iter_runs(jobs, processes=0)]
    assert seen == [4, 5]
