"""Named, seeded random-number streams.

A single ``random.Random`` shared by every subsystem makes results depend on
call *order*, which changes whenever unrelated code adds a random draw.  To
keep the 100-run experiments stable across refactors, each subsystem asks for
its own named stream: the mapping stream, the fault-selection stream and the
service-time jitter stream are independent generators derived from the master
seed and the stream name.
"""

import hashlib
import random


class RngStreams:
    """Factory of independent named PRNG streams from one master seed."""

    def __init__(self, seed):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating on first use) the stream called ``name``.

        The stream's seed is derived from ``(master seed, name)`` through
        SHA-256 so that streams are de-correlated and insensitive to creation
        order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                "{}:{}".format(self.seed, name).encode("utf-8")
            ).digest()
            stream_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(stream_seed)
        return self._streams[name]

    def __contains__(self, name):
        return name in self._streams

    def __repr__(self):
        return "RngStreams(seed={}, streams={})".format(
            self.seed, sorted(self._streams)
        )
