"""Tests for the Figure 4 generator and ASCII rendering."""

import pytest

from repro.experiments.figures import figure4, render_figure4, render_series
from repro.platform.config import PlatformConfig


class TestRenderSeries:
    def test_contains_title_and_extremes(self):
        text = render_series(
            [10.0, 20.0, 30.0], [1, 5, 3], title="demo", height=4, width=12
        )
        assert "demo" in text
        assert "5.0" in text
        assert "1.0" in text

    def test_marker_per_column(self):
        text = render_series([10.0, 20.0], [2, 2], height=3, width=8)
        assert text.count("*") == 8

    def test_empty_series(self):
        assert "empty" in render_series([], [], title="x")

    def test_flat_series_no_crash(self):
        text = render_series([1.0, 2.0, 3.0], [7, 7, 7], height=3, width=6)
        assert "*" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def data(self):
        config = PlatformConfig.small()
        return figure4(
            config=config, seed=3, faults=(2,), models=("none", "ffw")
        )

    def test_structure(self, data):
        assert set(data) == {2}
        assert set(data[2]) == {"none", "ffw"}

    def test_series_kept(self, data):
        result = data[2]["none"]
        assert result.series is not None
        assert len(result.series) > 0

    def test_faults_injected(self, data):
        assert data[2]["none"].faults == 2

    def test_render_figure4(self, data):
        text = render_figure4(data)
        assert "[2 faults]" in text
        assert "census per task" in text
        assert "active_nodes" in text
