"""Threshold decision units (Figure 2b).

"When a counter exceeds its respective threshold then the output knob is set
(either impulse or vector)."  A :class:`ThresholdUnit` couples a
:class:`~repro.core.counters.SaturatingCounter` to a threshold and an output
impulse line: excitatory impulses push the counter up, inhibitory impulses
pull it down, and the moment the counter *exceeds* the threshold the unit
fires its output and (by default) resets — the final decision maker of every
intelligence model in this package.

Thresholds may be changed at runtime (the RCAP path in hardware) and an
optional adaptive rule from the paper's discussion section ("many of the
models feature mechanisms for adaptive thresholds") is provided through
:meth:`adapt`.
"""

from repro.core.counters import SaturatingCounter
from repro.core.spikes import ImpulseLine


class ThresholdUnit:
    """Counter-vs-threshold decision element.

    Parameters
    ----------
    threshold:
        Firing level; the unit fires when the counter value *exceeds* it.
    counter:
        Backing counter; a fresh 0..255 saturating counter by default.
    reset_on_fire:
        Reset the counter to its minimum after firing (the Network
        Interaction model's "task counters are reset" behaviour).
    refractory:
        Minimum number of excitations between two fires; additional
        threshold crossings inside the refractory interval are swallowed,
        which damps pathological flapping.
    name:
        Label for the output line.
    """

    def __init__(self, threshold, counter=None, reset_on_fire=True,
                 refractory=0, name=None):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.counter = counter if counter is not None else SaturatingCounter()
        self.reset_on_fire = reset_on_fire
        self.refractory = refractory
        self.output = ImpulseLine(
            name if name is not None else "threshold({})".format(threshold)
        )
        self.fires = 0
        self._excitations_since_fire = refractory  # armed from the start

    # -- impulse inputs -----------------------------------------------------

    def excite(self, payload=None, amount=1):
        """Excitatory input; may fire the output."""
        self.counter.excite(payload, amount=amount)
        self._excitations_since_fire += 1
        self._evaluate(payload)
        return self.counter.value

    def inhibit(self, payload=None, amount=1):
        """Inhibitory input; can never fire the output."""
        return self.counter.inhibit(payload, amount=amount)

    # -- decision ------------------------------------------------------------

    def _evaluate(self, payload):
        if self.counter.value <= self.threshold:
            return
        if self._excitations_since_fire < self.refractory:
            return
        self.fires += 1
        self._excitations_since_fire = 0
        if self.reset_on_fire:
            self.counter.reset()
        self.output.fire(payload)

    # -- runtime configuration --------------------------------------------------

    def set_threshold(self, threshold):
        """RCAP-style threshold update; takes effect on the next impulse."""
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def adapt(self, delta, minimum=1, maximum=10_000):
        """Adaptive-threshold extension: nudge the threshold by ``delta``.

        Self-reinforcement lowers a task's threshold on success (specialists
        emerge); disuse raises it.  The clamp keeps the unit functional.
        """
        self.threshold = max(minimum, min(maximum, self.threshold + delta))
        return self.threshold

    def reset(self):
        """Reset the backing counter without firing."""
        self.counter.reset()

    @property
    def value(self):
        """Current counter value (monitor view)."""
        return self.counter.value

    @property
    def headroom(self):
        """How far the counter is below the firing level (≥ 0)."""
        return max(0, self.threshold - self.counter.value)

    def __repr__(self):
        return "ThresholdUnit(value={}, threshold={}, fires={})".format(
            self.counter.value, self.threshold, self.fires
        )
