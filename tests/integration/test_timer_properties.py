"""Property tests for timer-mode equivalence (hypothesis).

`test_timer_mode_determinism.py` pins the ticked/event equivalence on a
fixed matrix of cells; here random arm/disarm/fault/recovery schedules
probe the space between them: any composition of transient and permanent
node faults, FFW tunings that arm never/sometimes/always, and any seed
must leave per-node model state, switch counts, metrics series and NoC
statistics identical under both ``timer_mode`` settings.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.platform.centurion import CenturionPlatform
from repro.platform.config import PlatformConfig
from repro.platform.scenario import FaultScenario

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (at_ms, victim count, outage duration_ms or None for permanent).
_EVENT = st.tuples(
    st.integers(min_value=5, max_value=90),
    st.integers(min_value=1, max_value=3),
    st.one_of(st.none(), st.integers(min_value=5, max_value=40)),
)


def _signature(mode, seed, events, margin, timeout):
    """Everything observable about one run, timer machinery included."""
    config = PlatformConfig.small(
        horizon_us=100_000,
        fault_time_us=50_000,
        timer_mode=mode,
        ffw_deadline_margin_us=margin,
        ffw_timeout_us=timeout,
    )
    platform = CenturionPlatform(
        config, model_name="foraging_for_work", seed=seed
    )
    if events:
        platform.inject_scenario(FaultScenario(
            name="prop",
            events=tuple(
                dict(
                    at_us=at_ms * 1000,
                    count=count,
                    **(
                        {"duration_us": duration_ms * 1000}
                        if duration_ms is not None else {}
                    ),
                )
                for at_ms, count, duration_ms in events
            ),
        ))
    series = platform.run()
    per_node = {
        node_id: (
            aim.model.switches_fired,
            aim.model.late_packets_seen,
            aim.model.armed_at,
            aim.model.candidate_task,
        )
        for node_id, aim in platform.aims.items()
    }
    return (
        per_node,
        platform.task_census(),
        dict(platform.network.stats),
        platform.workload.stats(),
        series.as_dict(),
    )


@SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=500),
    events=st.lists(_EVENT, max_size=3),
    margin=st.sampled_from([0, 8_000, 16_000]),
    timeout=st.sampled_from([5_000, 20_000]),
)
def test_random_fault_recovery_schedules_are_mode_invariant(
    seed, events, margin, timeout
):
    ticked = _signature("ticked", seed, events, margin, timeout)
    event = _signature("event", seed, events, margin, timeout)
    assert ticked == event
